"""Distributed and semi-distributed topology helpers (§2, Fig 1(d)-(e)).

The quantitative design-space work happens in :mod:`repro.core` (which plans
distributed networks from real fiber maps) and
:mod:`repro.designs.portmodel` (the closed-form group model); this module
provides the structural pieces both share: pair enumeration and balanced
group partitions.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.exceptions import ReproError
from repro.region.fibermap import pair_key


def full_mesh_pairs(dcs: Sequence[str]) -> list[tuple[str, str]]:
    """All O(n^2) direct DC-DC connections of the extreme distributed design."""
    return [pair_key(a, b) for a, b in itertools.combinations(sorted(dcs), 2)]


def balanced_groups(dcs: Sequence[str], groups: int) -> list[list[str]]:
    """Partition DCs into ``groups`` balanced groups (§2.4's model).

    DCs are assigned round-robin in sorted order; group sizes differ by at
    most one when ``groups`` does not divide the DC count.
    """
    if groups < 1:
        raise ReproError("need at least one group")
    ordered = sorted(dcs)
    if groups > len(ordered):
        raise ReproError(f"cannot split {len(ordered)} DCs into {groups} groups")
    out: list[list[str]] = [[] for _ in range(groups)]
    for i, dc in enumerate(ordered):
        out[i % groups].append(dc)
    return out


def cross_group_pairs(partition: Sequence[Sequence[str]]) -> list[tuple[str, str]]:
    """DC pairs whose endpoints sit in different groups."""
    out = []
    for gi, ga in enumerate(partition):
        for gb in partition[gi + 1 :]:
            for a in ga:
                for b in gb:
                    out.append(pair_key(a, b))
    return sorted(out)


def intra_group_pairs(partition: Sequence[Sequence[str]]) -> list[tuple[str, str]]:
    """DC pairs whose endpoints share a group."""
    out = []
    for group in partition:
        out.extend(full_mesh_pairs(group))
    return sorted(out)
