"""Pure wavelength-switched network machinery (Appendix B).

A wavelength-switched DCI demultiplexes every fiber at switching points and
routes individual wavelengths through OXCs. Appendix B dismisses it for
three reasons, all of which this module makes concrete and testable:

1. **Wavelength continuity / collisions** — without wavelength conversion, a
   signal keeps its colour end-to-end, so no two signals sharing a duct may
   share a colour: a graph-colouring problem
   (:func:`assign_wavelengths`). First-fit colouring works but couples the
   whole region's wavelength plan, unlike Iris's DC-local assignment.
2. **Optical budget** — an OXC costs ~9 dB of the 20 dB run budget (TC4),
   so at most one OXC fits on a path, and paths through it usually need the
   one permitted in-line amplifier just for the OXC
   (:func:`oxc_path_feasible`).
3. **Cost** — the OXC port premium plus the induced amplification exceeds
   the n^2 residual fibers it would save
   (:func:`repro.designs.wavelength.wavelength_vs_fiber_tradeoff`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import PlanningError
from repro.region.fibermap import Duct, FiberMap, duct_key
from repro.units import (
    AMPLIFIER_GAIN_DB,
    FIBER_LOSS_DB_PER_KM,
    OSS_INSERTION_LOSS_DB,
    OXC_INSERTION_LOSS_DB,
)

Pair = tuple[str, str]


@dataclass(frozen=True)
class WavelengthPlan:
    """A collision-free wavelength assignment.

    ``colours`` maps (pair, demand-unit index) -> wavelength index;
    ``duct_usage`` maps duct -> set of wavelengths in use.
    """

    colours: Mapping[tuple[Pair, int], int]
    duct_usage: Mapping[Duct, frozenset[int]]
    wavelengths_per_fiber: int

    @property
    def peak_usage(self) -> int:
        """Most wavelengths in flight on any single duct."""
        if not self.duct_usage:
            return 0
        return max(len(used) for used in self.duct_usage.values())

    def colours_for(self, pair: Pair) -> list[int]:
        """The wavelengths assigned to one DC pair's demand units."""
        return sorted(
            colour for (p, _), colour in self.colours.items() if p == pair
        )

    def validate(self) -> list[str]:
        """Check the continuity/collision invariant explicitly."""
        problems = []
        for duct, used in self.duct_usage.items():
            if len(used) > self.wavelengths_per_fiber:
                problems.append(
                    f"duct {duct}: {len(used)} wavelengths exceed the "
                    f"{self.wavelengths_per_fiber}-channel fiber"
                )
        return problems


def assign_wavelengths(
    paths: Mapping[Pair, Sequence[str]],
    demands: Mapping[Pair, int],
    wavelengths_per_fiber: int,
) -> WavelengthPlan:
    """First-fit wavelength assignment under the continuity constraint.

    Each of a pair's ``demands[pair]`` units gets the lowest colour free on
    *every* duct of the pair's path. Raises :class:`PlanningError` when the
    single-fiber spectrum is exhausted on some duct — the point where a
    wavelength-switched design must light a parallel fiber anyway.
    """
    if wavelengths_per_fiber < 1:
        raise PlanningError("need at least one wavelength per fiber")
    usage: dict[Duct, set[int]] = {}
    colours: dict[tuple[Pair, int], int] = {}

    for pair in demands:
        if pair not in paths:
            raise PlanningError(f"no path for pair {pair}")
    # Longest paths first: they are the hardest to colour.
    ordered = sorted(demands, key=lambda p: (-len(paths[p]), p))
    for pair in ordered:
        count = demands[pair]
        if count < 0:
            raise PlanningError(f"negative demand for {pair}")
        if count == 0:
            continue
        path = paths[pair]
        ducts = [duct_key(u, v) for u, v in zip(path, path[1:])]
        for unit in range(count):
            taken = set()
            for duct in ducts:
                taken |= usage.get(duct, set())
            colour = next(
                (c for c in range(wavelengths_per_fiber) if c not in taken),
                None,
            )
            if colour is None:
                raise PlanningError(
                    f"wavelength exhaustion: no colour free on all ducts of "
                    f"{pair} (unit {unit}); a parallel fiber is required"
                )
            colours[(pair, unit)] = colour
            for duct in ducts:
                usage.setdefault(duct, set()).add(colour)

    return WavelengthPlan(
        colours=colours,
        duct_usage={d: frozenset(u) for d, u in usage.items()},
        wavelengths_per_fiber=wavelengths_per_fiber,
    )


@dataclass(frozen=True)
class OxcFeasibility:
    """Why a path can or cannot host an OXC switching point."""

    feasible: bool
    needs_inline_amp: bool
    reason: str


def oxc_path_feasible(
    fmap: FiberMap,
    path: Sequence[str],
    oxc_node: str,
) -> OxcFeasibility:
    """Can this path afford one OXC at ``oxc_node`` (TC2 + TC4)?

    The OXC's ~9 dB insertion loss counts against the 20 dB per-run budget;
    remaining switching points still cost 1.5 dB each. If a single run
    cannot absorb it, the one permitted in-line amplifier must sit at the
    OXC — if even that fails, the path cannot be wavelength-switched.
    """
    if oxc_node not in path[1:-1]:
        return OxcFeasibility(False, False, "OXC must be an interior node")
    nodes = list(path)
    total_km = fmap.path_length(nodes)
    other_switches = len(nodes) - 1  # every node but the OXC passes an OSS
    loss_unamped = (
        total_km * FIBER_LOSS_DB_PER_KM
        + other_switches * OSS_INSERTION_LOSS_DB
        + OXC_INSERTION_LOSS_DB
    )
    if loss_unamped <= AMPLIFIER_GAIN_DB:
        return OxcFeasibility(True, False, "fits in one run")

    # Amplify at the OXC: split into two runs around it.
    idx = nodes.index(oxc_node)
    first_km = fmap.path_length(nodes[: idx + 1])
    second_km = total_km - first_km
    first_oss = idx + 1  # source OSS + interior switches + OXC entry side
    second_oss = len(nodes) - idx
    run1 = (
        first_km * FIBER_LOSS_DB_PER_KM
        + first_oss * OSS_INSERTION_LOSS_DB
        + OXC_INSERTION_LOSS_DB / 2.0
    )
    run2 = (
        second_km * FIBER_LOSS_DB_PER_KM
        + second_oss * OSS_INSERTION_LOSS_DB
        + OXC_INSERTION_LOSS_DB / 2.0
    )
    if run1 <= AMPLIFIER_GAIN_DB and run2 <= AMPLIFIER_GAIN_DB:
        return OxcFeasibility(
            True, True, "needs the in-line amplifier at the OXC"
        )
    return OxcFeasibility(
        False,
        True,
        f"runs of {run1:.1f}/{run2:.1f} dB exceed the 20 dB budget even "
        "with amplification at the OXC",
    )


def colourable_fraction(
    paths: Mapping[Pair, Sequence[str]],
    demands: Mapping[Pair, int],
    wavelengths_per_fiber: int,
) -> float:
    """Fraction of demand units assignable before spectrum exhaustion.

    A diagnostic for how far single-fiber wavelength switching gets: 1.0
    means everything coloured; below 1.0 the design needs parallel fibers —
    eroding its one advantage over fiber switching.
    """
    total = sum(demands.values())
    if total == 0:
        return 1.0
    assigned = 0
    usage: dict[Duct, set[int]] = {}
    ordered = sorted(demands, key=lambda p: (-len(paths[p]), p))
    for pair in ordered:
        path = paths[pair]
        ducts = [duct_key(u, v) for u, v in zip(path, path[1:])]
        for _ in range(demands[pair]):
            taken = set()
            for duct in ducts:
                taken |= usage.get(duct, set())
            colour = next(
                (c for c in range(wavelengths_per_fiber) if c not in taken),
                None,
            )
            if colour is None:
                continue
            assigned += 1
            for duct in ducts:
                usage.setdefault(duct, set()).add(colour)
    return assigned / total
