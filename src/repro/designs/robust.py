"""METTEOR-style multi-traffic-matrix robust design.

*METTEOR: Robust Multi-Traffic Topology Engineering* argues that instead of
re-optimizing the reconfigurable topology for each traffic matrix (and
paying reconfiguration churn), one should plan a single topology that is
simultaneously feasible for an *ensemble* of representative TMs. This
module is that planning mode for the Iris regional planner:

* sample an ensemble of heavy-tailed DC-DC matrices
  (:class:`TrafficEnsembleSpec`, seeded and reproducible);
* run Algorithm 1's prune + failure-scenario enumeration unchanged;
* size each duct, per scenario, at the **maximum over ensemble members**
  of the traffic it must carry — clamped to the hose envelope, which the
  incremental hose solver (:func:`repro.core.hose.hose_capacity`) prices
  per (duct, scenario) exactly as the iris design does. Each sampled TM
  respects the hose (per-DC shares scale to the DC's fiber count), so the
  robust capacity of every duct is ≤ the iris hose capacity: the ensemble
  buys a cheaper topology, never a larger one.
* complete amplifiers / cut-throughs / residual fibers / validation with
  the stock :class:`~repro.core.planner.IrisPlanner` machinery.

Determinism: ensemble sampling uses one explicit ``random.Random``; duct
loads are computed in sorted (duct, pair) order inside each chunk and
merged by per-duct maximum, so ``jobs=1`` and ``jobs=N`` plans are
byte-identical (``plan_to_json`` equality, parity-tested). With a
``store``, plans are cached under a key that includes the **ensemble
digest** — two different ensembles never collide, identical specs hit.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro import obs
from repro.core.engine import PlanTimings, get_backend, worker_safe
from repro.core.hose import (
    hose_cache_stats,
    hose_capacity,
    oriented_pairs_through_edge,
)
from repro.core.plan import IrisPlan, Pair, TopologyPlan
from repro.core.topology import (
    _used_ducts,
    enumerate_scenario_paths,
    prune_overlong_ducts,
)
from repro.cost.estimator import Inventory
from repro.designs.base import register_design
from repro.exceptions import ReproError, SimulationError
from repro.region.fibermap import Duct, RegionSpec
from repro.simulation.traffic import TrafficMatrix, sample_ensemble
from repro.units import IRIS_MAX_DUCT_KM

if TYPE_CHECKING:
    from repro.store import PlanStore


@dataclass(frozen=True)
class TrafficEnsembleSpec:
    """A reproducible recipe for a robust-planning TM ensemble.

    The spec (not the sampled matrices) is what travels through configs
    and CLI flags; :meth:`build` materializes it for a region's DCs with
    an explicit seeded RNG, so equal specs over equal DC sets yield equal
    ensembles everywhere.
    """

    count: int = 5
    seed: int = 2020
    skew: float = 1.4
    max_change: float | None = 0.5

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SimulationError("ensemble needs at least one matrix")
        if self.skew <= 0:
            raise SimulationError("skew must be positive")
        if self.max_change is not None and self.max_change < 0:
            raise SimulationError("max_change must be non-negative")

    def build(self, dcs: Sequence[str]) -> list[TrafficMatrix]:
        """Sample the ensemble for ``dcs`` (deterministic in the spec)."""
        rng = random.Random(self.seed * 999_983 + 7)
        return sample_ensemble(
            dcs,
            rng,
            count=self.count,
            skew=self.skew,
            max_change=self.max_change,
        )


def ensemble_digest(ensemble: Sequence[TrafficMatrix]) -> str:
    """Content digest of a TM ensemble (for :func:`repro.store.plan_key`).

    Encodes every matrix's full weight table in canonical pair order, so
    any change to any weight of any member changes the robust plan's
    cache key.
    """
    from repro.store.canonical import digest

    return digest(
        [
            {f"{a}|{b}": tm.weights[(a, b)] for a, b in tm.pairs()}
            for tm in ensemble
        ]
    )


def pair_demand_fibers(
    tm: TrafficMatrix, dc_fibers: Mapping[str, int]
) -> dict[Pair, float]:
    """One TM's per-pair demand, in (fractional) fibers.

    The matrix gives traffic *shares*; the absolute operating point scales
    every share by the largest factor at which no DC's total (in + out)
    traffic exceeds its fiber count — i.e. the TM is run as hot as the
    hose allows. At that scale each pair's demand is its weight times the
    scale factor, and every DC's incident demand sum is ≤ its capacity,
    so per-duct robust loads can never exceed the hose envelope.
    """
    scale = math.inf
    for dc, fibers in dc_fibers.items():
        share = tm.dc_load_share(dc)
        if share > 0:
            scale = min(scale, fibers / share)
    if not math.isfinite(scale):
        raise SimulationError("traffic matrix touches no known DC")
    return {pair: w * scale for pair, w in tm.weights.items()}


@worker_safe
def _robust_capacity_chunk(
    shared: tuple[Mapping[str, int], tuple[Mapping[Pair, float], ...]],
    path_sets: list[Mapping[Pair, tuple[str, ...]]],
) -> tuple[dict[Duct, int], int, int, int, int, int, int]:
    """Worker: per-duct robust maxima over one chunk of scenario path sets.

    For each (scenario, used duct): the duct's load under one TM is the
    sum of demands of pairs routed across it; the robust need is the
    ensemble maximum of that load, rounded up to whole fibers and clamped
    to the hose envelope (the hose is the worst case over *all* feasible
    TMs, so no sampled TM can legitimately exceed it — the clamp defends
    against float slop only). Sorted iteration everywhere keeps the sum
    order — hence the float result — identical in any chunking, so the
    per-duct max merge reproduces serial plans exactly.

    Returns (duct -> fibers, cache hits, misses, cold solves, incremental
    solves, duct evaluations, hose clamps applied).
    """
    dc_fibers, demands_per_tm = shared
    before = hose_cache_stats()
    edge_capacity: dict[Duct, int] = {}
    duct_evals = 0
    clamped = 0
    for paths in path_sets:
        for edge in sorted(_used_ducts(paths)):
            oriented = tuple(sorted(oriented_pairs_through_edge(edge, paths)))
            crossing = sorted({tuple(sorted(p)) for p in oriented})
            hose = hose_capacity(oriented, dc_fibers)
            load = 0.0
            for demands in demands_per_tm:
                tm_load = 0.0
                for pair in crossing:
                    tm_load += demands.get(pair, 0.0)
                load = max(load, tm_load)
            need = max(1, math.ceil(load - 1e-9))
            duct_evals += 1
            if need > hose:
                need = hose
                clamped += 1
            if need > edge_capacity.get(edge, 0):
                edge_capacity[edge] = need
    after = hose_cache_stats()
    return (
        edge_capacity,
        after.hits - before.hits,
        after.misses - before.misses,
        after.cold_solves - before.cold_solves,
        after.incremental_solves - before.incremental_solves,
        duct_evals,
        clamped,
    )


def robust_topology(
    region: RegionSpec,
    ensemble: Sequence[TrafficMatrix],
    *,
    prune_enumeration: bool = True,
    jobs: int | None = 1,
    backend: str | None = None,
) -> TopologyPlan:
    """Algorithm 1 with ensemble-robust capacity sizing.

    Identical to :func:`repro.core.topology.plan_topology` through the
    prune and enumeration phases; the capacity phase sizes each duct at
    the ensemble-max traffic load instead of the full hose max-flow (see
    :func:`_robust_capacity_chunk`). Bit-identical across ``jobs``.
    """
    if not ensemble:
        raise SimulationError("robust planning needs a non-empty ensemble")
    tracer = obs.current()
    if tracer is None:
        tracer = obs.Tracer("plan")
    constraints = region.constraints

    demands_per_tm = tuple(
        pair_demand_fibers(tm, region.dc_fibers) for tm in ensemble
    )

    with tracer.span("plan.topology") as top:
        with tracer.span("plan.prune") as span:
            usable_km = min(constraints.max_span_km, IRIS_MAX_DUCT_KM)
            fmap = prune_overlong_ducts(region.fiber_map, usable_km)
            span.incr("prune.ducts_dropped",
                      len(region.fiber_map.ducts) - len(fmap.ducts))

        with get_backend(jobs, backend) as engine_backend:
            with tracer.span("plan.enumerate"):
                scenario_paths, total_raw = enumerate_scenario_paths(
                    fmap,
                    constraints.failure_tolerance,
                    sla_fiber_km=constraints.sla_fiber_km,
                    prune=prune_enumeration,
                    backend=engine_backend,
                )

            with tracer.span("plan.capacity"):
                edge_capacity: dict[Duct, int] = {}
                hits = misses = cold = incremental = 0
                duct_evals = clamps = 0
                path_sets = list(scenario_paths.values())
                chunks = (
                    engine_backend.plan_chunks(path_sets) if path_sets else []
                )
                for (
                    chunk_caps,
                    chunk_hits,
                    chunk_misses,
                    chunk_cold,
                    chunk_incremental,
                    chunk_evals,
                    chunk_clamps,
                ) in engine_backend.run_chunks(
                    _robust_capacity_chunk,
                    (region.dc_fibers, demands_per_tm),
                    chunks,
                ):
                    hits += chunk_hits
                    misses += chunk_misses
                    cold += chunk_cold
                    incremental += chunk_incremental
                    duct_evals += chunk_evals
                    clamps += chunk_clamps
                    for edge, needed in chunk_caps.items():
                        if needed > edge_capacity.get(edge, 0):
                            edge_capacity[edge] = needed

        top.incr("scenarios.evaluated", len(scenario_paths))
        top.incr("hose.cache_hits", hits)
        top.incr("hose.cache_misses", misses)
        top.incr("hose.cold_solves", cold)
        top.incr("hose.incremental_solves", incremental)
        top.incr("robust.tms", len(ensemble))
        top.incr("robust.duct_evals", duct_evals)
        top.incr("robust.clamped", clamps)

    timings = PlanTimings.from_record(
        top.record, backend=engine_backend.name, jobs=engine_backend.jobs
    )
    return TopologyPlan(
        edge_capacity=edge_capacity,
        scenario_paths=scenario_paths,
        scenario_count_total=total_raw,
        timings=timings,
        trace=top.record,
    )


def plan_robust(
    region: RegionSpec,
    *,
    ensemble: Sequence[TrafficMatrix] | None = None,
    traffic: TrafficEnsembleSpec | None = None,
    prune_enumeration: bool = True,
    validate: bool = True,
    jobs: int | None = 1,
    backend: str | None = None,
    store: "PlanStore | None" = None,
) -> IrisPlan:
    """Plan ``region`` robustly against a TM ensemble, end to end.

    Pass either a pre-sampled ``ensemble`` or a ``traffic`` spec to
    sample one (default: :class:`TrafficEnsembleSpec`'s five matrices).
    Returns a full :class:`~repro.core.plan.IrisPlan` — same shape as the
    iris design, so serialization, inventories, and cost estimation work
    unchanged.

    With a ``store``, the plan is cached under
    ``plan_key(design="robust", ...)`` whose config embeds the ensemble
    digest: replanning the same region with the same ensemble is a load,
    any change to any TM weight is a miss.
    """
    from repro.core.planner import IrisPlanner

    if ensemble is None:
        spec = traffic if traffic is not None else TrafficEnsembleSpec()
        ensemble = spec.build(region.dcs)
    ensemble = list(ensemble)

    def fresh() -> IrisPlan:
        topology = robust_topology(
            region,
            ensemble,
            prune_enumeration=prune_enumeration,
            jobs=jobs,
            backend=backend,
        )
        planner = IrisPlanner(
            region,
            prune_enumeration=prune_enumeration,
            validate=validate,
            jobs=jobs,
            backend=backend,
        )
        return planner.plan_from_topology(topology)

    if store is None:
        return fresh()

    from repro.serialize import plan_from_dict, plan_to_dict
    from repro.store import plan_key

    key = plan_key(
        design="robust",
        region=region,
        config={
            "prune_enumeration": prune_enumeration,
            "validate": validate,
            "tm_count": len(ensemble),
            "tm_ensemble": ensemble_digest(ensemble),
        },
    )
    cached = store.get(key)
    if cached is not None:
        try:
            return plan_from_dict(cached)
        except ReproError:
            pass  # stale payload: fall through and replan
    plan = fresh()
    store.put(key, plan_to_dict(plan, full=True), kind="plan")
    return plan


@register_design("robust")
@dataclass(frozen=True)
class RobustDesign:
    """The multi-TM robust design, registered as ``"robust"``.

    ``traffic`` configures the ensemble recipe; ``jobs``/``backend``/
    ``store`` mirror the other planner-backed designs.
    """

    jobs: int | None = 1
    backend: str | None = None
    store: "PlanStore | None" = None
    traffic: TrafficEnsembleSpec = TrafficEnsembleSpec()

    name = "robust"

    def plan(self, region: RegionSpec) -> Inventory:
        return plan_robust(
            region,
            traffic=self.traffic,
            jobs=self.jobs,
            backend=self.backend,
            store=self.store,
        ).inventory()
