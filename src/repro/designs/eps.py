"""The electrical packet-switched (EPS) realization (§4.2).

Given Algorithm 1's topology & capacity plan, an EPS fabric deploys
electrical switching at the DCs and at every hut where paths actually
branch; each of the lambda wavelengths per fiber terminates in a transceiver
and a switch port at both ends of every *link*. Links are point-to-point
optical segments (Fig 8): a fiber passing a degree-2 hut is spliced through,
not terminated — but a segment longer than TC1's 80 km reach must be
electrically regenerated at an intermediate hut (EPS has no in-line
amplification chain to manage).

This is the paper's cost baseline — "the key impairment of this approach is
its cost": the transceiver count is proportional to terminated capacity.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.core.plan import TopologyPlan
from repro.cost.estimator import Inventory
from repro.exceptions import PlanningError
from repro.region.fibermap import RegionSpec, duct_key
from repro.units import MAX_SPAN_KM


def eps_segments(
    region: RegionSpec, topology: TopologyPlan
) -> list[tuple[int, float, int]]:
    """The point-to-point links of the EPS build.

    Returns (fiber_pairs, length_km, termination_pairs) per segment, where a
    segment is a maximal chain of used ducts through degree-2 huts, and
    ``termination_pairs`` counts the electrical terminations (>= 2; more
    when TC1 reach forces mid-segment regeneration).
    """
    used = nx.Graph()
    for (u, v), cap in topology.edge_capacity.items():
        if cap > 0:
            used.add_edge(u, v, capacity=cap, length=region.fiber_map.duct_length(u, v))

    dcs = set(region.fiber_map.dcs)
    switching = {
        n for n in used.nodes if n in dcs or used.degree(n) != 2
    }
    # Degenerate case: a pure cycle of huts has no switching node; pick one.
    if not switching and used.number_of_nodes():
        switching = {sorted(used.nodes)[0]}

    segments: list[tuple[int, float, int]] = []
    visited: set[tuple[str, str]] = set()
    for start in sorted(switching):
        for neighbor in sorted(used.neighbors(start)):
            if duct_key(start, neighbor) in visited:
                continue
            # Walk the chain until the next switching node.
            chain = [start, neighbor]
            length = used.edges[start, neighbor]["length"]
            capacity = used.edges[start, neighbor]["capacity"]
            visited.add(duct_key(start, neighbor))
            prev, node = start, neighbor
            while node not in switching:
                nxt = [n for n in used.neighbors(node) if n != prev]
                if len(nxt) != 1:
                    raise PlanningError(
                        f"chain walk broke at {node}: degree "
                        f"{used.degree(node)}"
                    )
                prev, node = node, nxt[0]
                visited.add(duct_key(prev, node))
                length += used.edges[prev, node]["length"]
                # All ducts of a degree-2 chain carry the same path set,
                # hence the same capacity; keep the max defensively.
                capacity = max(capacity, used.edges[prev, node]["capacity"])
                chain.append(node)
            # Electrical regeneration splits segments beyond TC1 reach.
            pieces = max(1, math.ceil(length / MAX_SPAN_KM))
            segments.append((capacity, length, 2 * pieces))
    return segments


def eps_inventory(region: RegionSpec, topology: TopologyPlan) -> Inventory:
    """Equipment counts for the EPS realization of ``topology``.

    * Transceivers: lambda per fiber-pair per termination (both ends of
      every point-to-point link, §3.4's ``T_E = 2 F lambda`` — with F
      counted per link, not per duct).
    * Electrical switch ports: one backing each transceiver.
    * Amplifiers: the terminal pair of each link (Fig 8), per fiber-pair.
    * Fiber: the per-duct (fiber-pair, span) leases of the base plan; EPS
      needs no residual fibers (wavelength-granularity switching packs
      fractional demands perfectly).

    The DC/in-network split follows the paper's accounting: the
    capacity-facing f x lambda transceivers at each DC are "DC ports",
    everything else is in-network.
    """
    lam = region.wavelengths_per_fiber
    segments = eps_segments(region, topology)
    total_transceivers = lam * sum(
        pairs * terminations for pairs, _, terminations in segments
    )
    dc_transceivers = sum(region.fibers(dc) * lam for dc in region.dcs)
    if total_transceivers < dc_transceivers:
        raise PlanningError(
            "topology terminates less capacity than the DCs offer; "
            "was the plan produced for this region?"
        )
    innetwork_transceivers = total_transceivers - dc_transceivers
    amplifiers = sum(
        pairs * terminations for pairs, _, terminations in segments
    )

    return Inventory(
        dc_transceivers=dc_transceivers,
        dc_electrical_ports=dc_transceivers,
        innetwork_transceivers=innetwork_transceivers,
        innetwork_electrical_ports=innetwork_transceivers,
        oss_ports=0,
        oxc_ports=0,
        amplifiers=amplifiers,
        fiber_pair_spans=topology.fiber_pair_spans(),
        dc_oss_ports=0,
    )


def eps_inventory_from_plan(region: RegionSpec, topology: TopologyPlan) -> Inventory:
    """Alias kept for symmetry with the Iris plan's ``inventory()``."""
    return eps_inventory(region, topology)
