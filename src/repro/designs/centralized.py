"""The centralized hub-and-spoke design (§2, Fig 1(c)).

Every DC connects its full capacity to one or two hub huts, which provide a
non-blocking "big switch" abstraction. This is the design Azure uses today
and the reference point for the paper's latency (Fig 3), siting-flexibility
(Figs 4-6), and cost comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
import networkx as nx

from repro.cost.estimator import Inventory
from repro.exceptions import InfeasibleRegionError, RegionError
from repro.region.fibermap import Duct, RegionSpec, duct_key
from repro.units import rtt_ms


@dataclass(frozen=True)
class CentralizedDesign:
    """A hub-and-spoke realization of a region.

    ``hubs``
        One or two hut names. Two hubs (the operational norm) give failure
        resilience; each DC connects full capacity to *each* hub. Cost
        accounting can optionally consider only the primary hub to match
        the §2.4 port model's single-hub arithmetic.
    """

    region: RegionSpec
    hubs: tuple[str, ...]

    #: Registry identifier (the class satisfies :class:`repro.designs.Design`).
    name = "centralized"

    def plan(self, region: RegionSpec) -> Inventory:
        """The unified :class:`~repro.designs.Design` entry point.

        Re-binds this design's hubs to ``region`` and returns the
        resulting equipment inventory.
        """
        from dataclasses import replace

        design = self if region is self.region else replace(self, region=region)
        return design.inventory()

    def __post_init__(self) -> None:
        if not (1 <= len(self.hubs) <= 2):
            raise RegionError("centralized designs use one or two hubs")
        fmap = self.region.fiber_map
        for hub in self.hubs:
            if hub not in fmap:
                raise RegionError(f"hub {hub!r} is not on the fiber map")

    # -- routing -----------------------------------------------------------------

    def spoke_paths(self) -> dict[tuple[str, str], tuple[str, ...]]:
        """(dc, hub) -> shortest path for every DC-hub spoke."""
        fmap = self.region.fiber_map
        out: dict[tuple[str, str], tuple[str, ...]] = {}
        for hub in self.hubs:
            lengths, routes = nx.single_source_dijkstra(
                fmap.graph, hub, weight="length_km"
            )
            for dc in self.region.dcs:
                if dc not in lengths:
                    raise InfeasibleRegionError(
                        f"DC {dc} cannot reach hub {hub}", pair=(dc, hub)
                    )
                out[(dc, hub)] = tuple(reversed(routes[dc]))
        return out

    def spoke_length_km(self, dc: str, hub: str) -> float:
        """Fiber distance of one DC-hub spoke."""
        return self.region.fiber_map.fiber_distance(dc, hub)

    def pair_distance_km(self, a: str, b: str) -> float:
        """DC-hub-DC fiber distance, via the better hub."""
        return min(
            self.spoke_length_km(a, hub) + self.spoke_length_km(hub, b)
            for hub in self.hubs
        )

    def pair_rtt_ms(self, a: str, b: str) -> float:
        """Round-trip propagation latency via the better hub."""
        return rtt_ms(self.pair_distance_km(a, b))

    def max_pair_distance_km(self) -> float:
        """The worst DC-hub-DC fiber distance (the SLA-relevant figure)."""
        return max(
            self.pair_distance_km(a, b) for a, b in self.region.iter_pairs()
        )

    def meets_sla(self) -> bool:
        """Whether every DC-hub-DC distance fits the latency SLA (OC1)."""
        return (
            self.max_pair_distance_km()
            <= self.region.constraints.sla_fiber_km + 1e-9
        )

    # -- provisioning ----------------------------------------------------------------

    def duct_capacity(self, redundant: bool = True) -> dict[Duct, int]:
        """Leased fiber-pairs per duct: each DC's full capacity per spoke.

        With ``redundant`` (default), capacity is provisioned to both hubs.
        """
        hubs = self.hubs if redundant else self.hubs[:1]
        paths = self.spoke_paths()
        out: dict[Duct, int] = {}
        for hub in hubs:
            for dc in self.region.dcs:
                fibers = self.region.fibers(dc)
                path = paths[(dc, hub)]
                for u, v in zip(path, path[1:]):
                    key = duct_key(u, v)
                    out[key] = out.get(key, 0) + fibers
        return out

    def inventory(self, redundant: bool = False) -> Inventory:
        """EPS equipment for the hub-and-spoke design.

        Default ``redundant=False`` reproduces the §2.4 single-hub port
        arithmetic (2 N P ports); pass ``True`` for the dual-hub deployment.
        """
        lam = self.region.wavelengths_per_fiber
        duct_caps = self.duct_capacity(redundant)
        fiber_pair_spans = sum(duct_caps.values())
        hub_count = len(self.hubs) if redundant else 1

        # Spokes are point-to-point optical links (Fig 8): transceivers sit
        # only at the DC and the hub, however many ducts the spoke crosses.
        spoke_pairs = hub_count * sum(
            self.region.fibers(dc) for dc in self.region.dcs
        )
        dc_transceivers = spoke_pairs * lam  # DC end of each spoke
        hub_transceivers = spoke_pairs * lam  # hub end (the "big switch")
        return Inventory(
            dc_transceivers=dc_transceivers,
            dc_electrical_ports=dc_transceivers,
            innetwork_transceivers=hub_transceivers,
            innetwork_electrical_ports=hub_transceivers,
            amplifiers=2 * spoke_pairs,
            fiber_pair_spans=fiber_pair_spans,
        )
