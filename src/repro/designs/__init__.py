"""Design-space alternatives and baselines (§2.4, §4.2, §4.4, App. B).

All designers are reachable through the unified :class:`Design` API::

    from repro.designs import get_design
    inventory = get_design("eps").plan(region)

See :mod:`repro.designs.base` for the protocol and registry.
"""

from repro.designs.base import (
    CentralizedDesigner,
    Design,
    EPSDesign,
    HybridDesign,
    IrisDesign,
    SemiDistributedDesigner,
    available_designs,
    get_design,
    register_design,
)
from repro.designs.portmodel import PortModel, PortModelPoint
from repro.designs.eps import eps_inventory, eps_inventory_from_plan
from repro.designs.centralized import CentralizedDesign
from repro.designs.distributed import balanced_groups, full_mesh_pairs
from repro.designs.wavelength import (
    combinable_residual_fibers,
    worst_case_residual_wavelengths,
    wavelength_vs_fiber_tradeoff,
)
from repro.designs.hybrid import HybridPlan, hybridize
from repro.designs.robust import (
    RobustDesign,
    TrafficEnsembleSpec,
    ensemble_digest,
    plan_robust,
)
from repro.designs.semidistributed import SemiDistributedDesign, Zone, cluster_zones
from repro.designs.wavelength_network import (
    WavelengthPlan,
    assign_wavelengths,
    colourable_fraction,
    oxc_path_feasible,
)

__all__ = [
    "Design",
    "get_design",
    "register_design",
    "available_designs",
    "IrisDesign",
    "EPSDesign",
    "HybridDesign",
    "CentralizedDesigner",
    "SemiDistributedDesigner",
    "PortModel",
    "PortModelPoint",
    "eps_inventory",
    "eps_inventory_from_plan",
    "CentralizedDesign",
    "balanced_groups",
    "full_mesh_pairs",
    "combinable_residual_fibers",
    "worst_case_residual_wavelengths",
    "wavelength_vs_fiber_tradeoff",
    "HybridPlan",
    "hybridize",
    "RobustDesign",
    "TrafficEnsembleSpec",
    "ensemble_digest",
    "plan_robust",
    "SemiDistributedDesign",
    "Zone",
    "cluster_zones",
    "WavelengthPlan",
    "assign_wavelengths",
    "colourable_fraction",
    "oxc_path_feasible",
]
