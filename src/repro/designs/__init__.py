"""Design-space alternatives and baselines (§2.4, §4.2, §4.4, App. B)."""

from repro.designs.portmodel import PortModel, PortModelPoint
from repro.designs.eps import eps_inventory, eps_inventory_from_plan
from repro.designs.centralized import CentralizedDesign
from repro.designs.distributed import balanced_groups, full_mesh_pairs
from repro.designs.wavelength import (
    combinable_residual_fibers,
    worst_case_residual_wavelengths,
    wavelength_vs_fiber_tradeoff,
)
from repro.designs.hybrid import HybridPlan, hybridize
from repro.designs.semidistributed import SemiDistributedDesign, Zone, cluster_zones
from repro.designs.wavelength_network import (
    WavelengthPlan,
    assign_wavelengths,
    colourable_fraction,
    oxc_path_feasible,
)

__all__ = [
    "PortModel",
    "PortModelPoint",
    "eps_inventory",
    "eps_inventory_from_plan",
    "CentralizedDesign",
    "balanced_groups",
    "full_mesh_pairs",
    "combinable_residual_fibers",
    "worst_case_residual_wavelengths",
    "wavelength_vs_fiber_tradeoff",
    "HybridPlan",
    "hybridize",
    "SemiDistributedDesign",
    "Zone",
    "cluster_zones",
    "WavelengthPlan",
    "assign_wavelengths",
    "colourable_fraction",
    "oxc_path_feasible",
]
