"""The §2.4 analytic port model (Fig 7).

``N`` DCs of capacity ``P`` ports each are organized into ``G`` balanced
groups; DCs within a group interconnect through a group-local hub, groups
interconnect all-pairs. ``G = 1`` is the fully centralized hub-and-spoke,
``G = N`` the fully distributed mesh.

Port arithmetic (from the paper):

* group-internal: 2 * P * N/G ports per group (DC side + hub downstream);
* each hub also carries (G-1)/G * N * P ports upstream to other groups,
  for exactly N*P ports per hub regardless of G;
* total: (G + 1) * N * P ports.

Fig 7 prices three realizations of this port count: electrical (every port
has a DCI transceiver), electrical with short-reach transceivers for
group-internal links (optimistic: needs <=2 km hub distances), and optical
(in-network transceivers replaced by reconfigurable optical ports).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.pricebook import PriceBook
from repro.exceptions import ReproError


@dataclass(frozen=True)
class PortModelPoint:
    """Port counts and costs of one (N, P, G) configuration."""

    n_dcs: int
    ports_per_dc: int
    groups: int
    total_ports: int
    dc_ports: int
    hub_ports: int
    group_internal_ports: int
    cross_group_ports: int
    cost_electrical: float
    cost_electrical_sr: float
    cost_optical: float


@dataclass(frozen=True)
class PortModel:
    """Closed-form §2.4 model over the centralized-to-distributed spectrum."""

    n_dcs: int = 16
    ports_per_dc: int = 1
    prices: PriceBook = PriceBook.default()

    def __post_init__(self) -> None:
        if self.n_dcs < 1 or self.ports_per_dc < 1:
            raise ReproError("N and P must be positive")

    def valid_groups(self) -> list[int]:
        """Group counts that divide N evenly (balanced groups)."""
        return [g for g in range(1, self.n_dcs + 1) if self.n_dcs % g == 0]

    def point(self, groups: int) -> PortModelPoint:
        """Evaluate the model at ``groups`` groups."""
        n, p, g = self.n_dcs, self.ports_per_dc, groups
        if not (1 <= g <= n):
            raise ReproError(f"groups must be in 1..{n}")
        if n % g != 0:
            raise ReproError(f"{g} groups do not divide {n} DCs evenly")

        total_ports = (g + 1) * n * p
        dc_ports = n * p
        hub_ports = g * n * p  # N*P per hub, G hubs
        group_internal = 2 * n * p  # DC side + hub downstream, summed over groups
        cross_group = (g - 1) * n * p  # zero when fully centralized

        pr = self.prices
        per_port_dci = pr.electrical_port + pr.transceiver_dci
        per_port_sr = pr.electrical_port + pr.transceiver_sr

        cost_electrical = total_ports * per_port_dci
        # SR optimistic variant: group-internal links (2NP ports) at SR
        # prices; cross-group links keep DCI reach. A single region-wide
        # "group" (G=1) cannot sit within SR's <=2 km reach, so the SR
        # variant degenerates to plain electrical there.
        if g == 1:
            cost_electrical_sr = cost_electrical
        else:
            cost_electrical_sr = (
                group_internal * per_port_sr + cross_group * per_port_dci
            )
        # Optical: the N*P capacity-facing DC ports keep their DCI
        # transceivers; every in-network port becomes a reconfigurable
        # optical (OSS) port.
        in_network = total_ports - dc_ports
        cost_optical = dc_ports * per_port_dci + in_network * pr.oss_port

        return PortModelPoint(
            n_dcs=n,
            ports_per_dc=p,
            groups=g,
            total_ports=total_ports,
            dc_ports=dc_ports,
            hub_ports=hub_ports,
            group_internal_ports=group_internal,
            cross_group_ports=cross_group,
            cost_electrical=cost_electrical,
            cost_electrical_sr=cost_electrical_sr,
            cost_optical=cost_optical,
        )

    def sweep(self) -> list[PortModelPoint]:
        """The Fig 7 sweep over all balanced group counts."""
        return [self.point(g) for g in self.valid_groups()]

    def mesh_vs_centralized_ratio(self) -> float:
        """Electrical cost of the full mesh relative to hub-and-spoke.

        Closed form (N+1)/2: "roughly 7x" in the paper's 16-DC example.
        """
        return self.point(self.n_dcs).cost_electrical / self.point(1).cost_electrical
