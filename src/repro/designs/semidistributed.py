"""Semi-distributed (availability-zone) designs (Fig 1(e), footnote 2).

Between hub-and-spoke and full mesh sits the AZ-style design: DCs cluster
into groups, each group interconnects through a group-local hub, and group
hubs connect to each other. The paper notes (footnote 2) that
"inter-connecting DCs within Availability Zones may alleviate some of this
latency inflation of centralized topologies", and AWS "broadly uses this
approach".

This module builds such designs on a fiber map: geographic clustering of
DCs into zones, per-zone hub selection (the hut minimizing worst spoke
distance), and the resulting latency and provisioning picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.cost.estimator import Inventory
from repro.exceptions import RegionError
from repro.region.fibermap import Duct, RegionSpec, duct_key
from repro.units import rtt_ms


@dataclass(frozen=True)
class Zone:
    """One availability zone: its DCs and the hub hut serving them."""

    name: str
    dcs: tuple[str, ...]
    hub: str


@dataclass(frozen=True)
class SemiDistributedDesign:
    """An AZ-style region: per-zone hubs, hub-to-hub core."""

    region: RegionSpec
    zones: tuple[Zone, ...]

    #: Registry identifier (the class satisfies :class:`repro.designs.Design`).
    name = "semidistributed"

    def plan(self, region: RegionSpec) -> Inventory:
        """The unified :class:`~repro.designs.Design` entry point.

        Re-binds this design's zones to ``region`` (the zones must still
        partition the region's DCs) and returns the inventory.
        """
        from dataclasses import replace

        design = self if region is self.region else replace(self, region=region)
        return design.inventory()

    def __post_init__(self) -> None:
        covered = [dc for z in self.zones for dc in z.dcs]
        if sorted(covered) != self.region.dcs:
            raise RegionError("zones must partition the region's DCs exactly")

    # -- routing -----------------------------------------------------------------

    def zone_of(self, dc: str) -> Zone:
        """The zone hosting ``dc``."""
        for zone in self.zones:
            if dc in zone.dcs:
                return zone
        raise RegionError(f"DC {dc!r} not in any zone")

    def pair_distance_km(self, a: str, b: str) -> float:
        """Fiber distance: via the shared zone hub, or hub-to-hub."""
        fmap = self.region.fiber_map
        za, zb = self.zone_of(a), self.zone_of(b)
        if za.name == zb.name:
            return fmap.fiber_distance(a, za.hub) + fmap.fiber_distance(za.hub, b)
        return (
            fmap.fiber_distance(a, za.hub)
            + fmap.fiber_distance(za.hub, zb.hub)
            + fmap.fiber_distance(zb.hub, b)
        )

    def pair_rtt_ms(self, a: str, b: str) -> float:
        """Round-trip latency between two DCs."""
        return rtt_ms(self.pair_distance_km(a, b))

    def max_pair_distance_km(self) -> float:
        """Worst DC-DC fiber distance (the SLA-relevant figure)."""
        return max(
            self.pair_distance_km(a, b) for a, b in self.region.iter_pairs()
        )

    def meets_sla(self) -> bool:
        """Whether every pair distance fits the latency SLA."""
        return (
            self.max_pair_distance_km()
            <= self.region.constraints.sla_fiber_km + 1e-9
        )

    # -- provisioning --------------------------------------------------------------

    def duct_capacity(self) -> dict[Duct, int]:
        """Fiber-pairs per duct: full capacity per spoke; hose cross-zone
        capacity on hub-hub routes (§2: the Fig 1(e) arithmetic)."""
        fmap = self.region.fiber_map
        out: dict[Duct, int] = {}

        def add_path(u: str, v: str, fibers: int) -> None:
            _, path = fmap.shortest_path(u, v)
            for x, y in zip(path, path[1:]):
                key = duct_key(x, y)
                out[key] = out.get(key, 0) + fibers

        for zone in self.zones:
            for dc in zone.dcs:
                add_path(dc, zone.hub, self.region.fibers(dc))
        for i, za in enumerate(self.zones):
            cap_a = sum(self.region.fibers(dc) for dc in za.dcs)
            for zb in self.zones[i + 1 :]:
                cap_b = sum(self.region.fibers(dc) for dc in zb.dcs)
                add_path(za.hub, zb.hub, min(cap_a, cap_b))
        return out

    def inventory(self) -> Inventory:
        """EPS equipment for the AZ design (transceivers at every spoke and
        hub-trunk termination)."""
        lam = self.region.wavelengths_per_fiber
        spoke_pairs = sum(self.region.fibers(dc) for dc in self.region.dcs)
        trunk_pairs = 0
        for i, za in enumerate(self.zones):
            cap_a = sum(self.region.fibers(dc) for dc in za.dcs)
            for zb in self.zones[i + 1 :]:
                cap_b = sum(self.region.fibers(dc) for dc in zb.dcs)
                trunk_pairs += min(cap_a, cap_b)
        dc_transceivers = spoke_pairs * lam
        innetwork = spoke_pairs * lam + 2 * trunk_pairs * lam
        return Inventory(
            dc_transceivers=dc_transceivers,
            dc_electrical_ports=dc_transceivers,
            innetwork_transceivers=innetwork,
            innetwork_electrical_ports=innetwork,
            amplifiers=2 * (spoke_pairs + trunk_pairs),
            fiber_pair_spans=sum(self.duct_capacity().values()),
        )


def cluster_zones(
    region: RegionSpec, zone_count: int, seed: int = 0
) -> SemiDistributedDesign:
    """Geographic k-clustering of DCs into zones with per-zone hub huts.

    Deterministic Lloyd-style clustering on DC coordinates (farthest-point
    initialization), then each zone's hub is the hut minimizing the worst
    spoke fiber distance.
    """
    dcs = region.dcs
    if not (1 <= zone_count <= len(dcs)):
        raise RegionError(f"zone count must be in 1..{len(dcs)}")
    fmap = region.fiber_map
    positions = {dc: fmap.position(dc) for dc in dcs}

    # Farthest-point initialization (deterministic).
    centers = [min(dcs)]
    while len(centers) < zone_count:
        farthest = max(
            (dc for dc in dcs if dc not in centers),
            key=lambda dc: (
                min(positions[dc].distance_to(positions[c]) for c in centers),
                dc,
            ),
        )
        centers.append(farthest)

    # Lloyd iterations on membership (positions stay at member centroids).
    members = {c: [c] for c in centers}
    for _ in range(8):
        new_members: dict[str, list[str]] = {c: [] for c in centers}
        centroids = {
            c: (
                sum(positions[m].x for m in ms) / len(ms),
                sum(positions[m].y for m in ms) / len(ms),
            )
            for c, ms in members.items()
            if ms
        }
        for dc in dcs:
            best = min(
                centroids,
                key=lambda c: (
                    (positions[dc].x - centroids[c][0]) ** 2
                    + (positions[dc].y - centroids[c][1]) ** 2,
                    c,
                ),
            )
            new_members[best].append(dc)
        if all(sorted(new_members[c]) == sorted(members[c]) for c in centers):
            break
        members = {c: ms for c, ms in new_members.items() if ms}
        centers = sorted(members)

    zones = []
    for i, center in enumerate(sorted(members)):
        zone_dcs = tuple(sorted(members[center]))
        hub = _best_hub(region, zone_dcs)
        zones.append(Zone(name=f"AZ{i + 1}", dcs=zone_dcs, hub=hub))
    return SemiDistributedDesign(region=region, zones=tuple(zones))


def _best_hub(region: RegionSpec, zone_dcs: Sequence[str]) -> str:
    """The hut minimizing the worst spoke fiber distance for a zone."""
    fmap = region.fiber_map
    dist_maps = {
        dc: nx.single_source_dijkstra_path_length(
            fmap.graph, dc, weight="length_km"
        )
        for dc in zone_dcs
    }
    best_hub, best_score = None, None
    for hut in fmap.huts:
        worst = 0.0
        reachable = True
        for dc in zone_dcs:
            d = dist_maps[dc].get(hut)
            if d is None:
                reachable = False
                break
            worst = max(worst, d)
        if not reachable:
            continue
        if best_score is None or (worst, hut) < (best_score, best_hub):
            best_hub, best_score = hut, worst
    if best_hub is None:
        raise RegionError(f"no hut reaches all of zone {list(zone_dcs)}")
    return best_hub
