"""Pure wavelength-switched network analysis (Appendix B).

Would demultiplexing every fiber and switching individual wavelengths (via
OXCs) beat Iris's coarse fiber switching? The paper's answer is no: with at
most one OXC per path (TC4) and one amplifier (TC2), the flexibility cannot
be exploited widely, a graph-coloring problem appears, and — decisive — the
wavelength-switching components cost more than the n^2 residual fibers they
would save. This module provides the Appendix B arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.plan import IrisPlan
from repro.cost.pricebook import PriceBook
from repro.exceptions import ReproError


def worst_case_residual_wavelengths(
    total_demand_wavelengths: float, n_destinations: int, lam: int
) -> float:
    """Worst-case wavelengths relegated to residual fibers (Appendix B).

    A DC with aggregate demand ``D`` wavelengths toward ``n`` destinations
    has base capacity floor(D / lam) full fibers; residual links carry the
    rest. Spreading demand evenly maximizes the residual share at
    ``(n - D/lam) * D/n``, which peaks at ``lam * n / 4`` for
    ``D = lam * n / 2``.
    """
    d, n = total_demand_wavelengths, n_destinations
    if n < 1 or lam < 1:
        raise ReproError("need at least one destination and one wavelength")
    if not (0 <= d <= lam * n):
        raise ReproError("demand must be within 0..lam*n wavelengths")
    return (n - d / lam) * d / n


def max_worst_case_residual_wavelengths(n_destinations: int, lam: int) -> float:
    """The peak of :func:`worst_case_residual_wavelengths` over demand."""
    return lam * n_destinations / 4.0


def combinable_residual_fibers(n_residual: int) -> int:
    """Observation 2: n residual fibers combine into ceil(n/4) fibers."""
    if n_residual < 0:
        raise ReproError("residual fiber count must be non-negative")
    return math.ceil(n_residual / 4)


@dataclass(frozen=True)
class WavelengthTradeoff:
    """Appendix B's cost comparison for one planned region."""

    residual_fiber_cost: float
    oxc_port_premium: float
    extra_amplifier_cost: float

    @property
    def oxc_upgrade_cost(self) -> float:
        """Everything the wavelength-switched design adds."""
        return self.oxc_port_premium + self.extra_amplifier_cost

    @property
    def fiber_switching_wins(self) -> bool:
        """True when the n^2 residual fibers are cheaper than OXC gear."""
        return self.residual_fiber_cost <= self.oxc_upgrade_cost


def wavelength_vs_fiber_tradeoff(
    plan: IrisPlan,
    prices: PriceBook | None = None,
    amplified_fraction: float = 0.5,
) -> WavelengthTradeoff:
    """Compare Iris's residual fibers with a wavelength-switched upgrade.

    The wavelength-switched design would drop the residual fibers but must
    (a) replace every in-network fiber-termination OSS port with an OXC
    port (de/mux + space switching), and (b) pay for the OXC's ~9 dB
    insertion loss (TC4): with only 20 dB of amplifier budget per run, a
    path through an OXC usually needs amplification it did not need before.
    ``amplified_fraction`` is the (conservative) share of fiber-pairs whose
    path acquires one extra amplifier this way — the appendix notes that
    with at most one OXC and one amplifier per path, "it is not feasible to
    benefit from wavelength switching in many settings" at all.

    At §3.3 prices the upgrade outweighs the residual fiber lease,
    reproducing the Appendix B conclusion.
    """
    prices = prices or PriceBook.default()
    residual_cost = plan.residual_fiber_pairs() * prices.fiber_pair_span
    base_pairs = plan.topology.total_fiber_pairs()
    oss_ports = 4 * base_pairs
    port_premium = oss_ports * (prices.oxc_port - prices.oss_port)
    extra_amps = amplified_fraction * base_pairs * prices.amplifier
    return WavelengthTradeoff(
        residual_fiber_cost=residual_cost,
        oxc_port_premium=port_premium,
        extra_amplifier_cost=extra_amps,
    )
