"""The hybrid fiber + wavelength-switched design (Appendix B, Fig 15).

The hybrid keeps Iris's fiber switching for base capacity but combines
*residual* fibers — which only ever carry fractional demand — using
wavelength switching: residual capacity from one DC toward several
destinations shares one fiber up to a hut on all their shortest paths, where
a wavelength-switching device splits it onto per-destination fibers (and
mirrored on the destination side).

Rules from the appendix:

* any n residual fibers with a common source (or destination) combine into
  ceil(n/4) fibers (Observation 2);
* at most one wavelength-switching device per path (the de/mux loss budget),
  so each residual fiber participates in at most one merge;
* merging requires a genuinely shared subpath — with unique shortest paths,
  passing through the same hut implies sharing the whole prefix.

The greedy placement mirrors the appendix: score every (endpoint, hut)
merge by net saving, apply the best, repeat while anything positive remains.
The paper reports ~50% residual-fiber reduction, judged not worth the extra
device class at current prices — which the cost benches reproduce.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.plan import IrisPlan, Pair
from repro.cost.estimator import Inventory
from repro.designs.wavelength import combinable_residual_fibers
from repro.exceptions import ReproError


@dataclass(frozen=True)
class ResidualMerge:
    """One wavelength-switched combination of residual fibers.

    ``endpoint``
        The DC whose residual fibers are combined.
    ``hut``
        Where the wavelength-switching device splits/joins them.
    ``pairs``
        The DC pairs whose residual fibers participate.
    ``shared_spans``
        Ducts on the shared endpoint->hut prefix.
    """

    endpoint: str
    hut: str
    pairs: tuple[Pair, ...]
    shared_spans: int

    @property
    def fibers_before(self) -> int:
        """Residual fibers entering the merge."""
        return len(self.pairs)

    @property
    def fibers_after(self) -> int:
        """Trunk fibers after combining (ceil(n/4))."""
        return combinable_residual_fibers(len(self.pairs))

    @property
    def spans_saved(self) -> int:
        """(fiber-pair, span) leases removed on the shared prefix."""
        return self.shared_spans * (self.fibers_before - self.fibers_after)

    @property
    def oxc_ports(self) -> int:
        """Device ports at the hut: per direction, k split-side fibers plus
        ceil(k/4) trunk-side fibers."""
        return 2 * (self.fibers_before + self.fibers_after)


@dataclass(frozen=True)
class HybridPlan:
    """An Iris plan with wavelength-switched residual combining applied."""

    base: IrisPlan
    merges: tuple[ResidualMerge, ...]

    @property
    def residual_spans_before(self) -> int:
        """Residual (fiber-pair, span) leases before combining."""
        return self.base.residual_fiber_pairs()

    @property
    def residual_spans_saved(self) -> int:
        """Leases removed by all merges."""
        return sum(m.spans_saved for m in self.merges)

    @property
    def residual_reduction(self) -> float:
        """Fraction of residual (fiber-pair, span) leases removed."""
        before = self.residual_spans_before
        if before == 0:
            return 0.0
        return self.residual_spans_saved / before

    def inventory(self) -> Inventory:
        """Iris inventory minus saved fiber, plus the wavelength devices."""
        inv = self.base.inventory()
        saved = self.residual_spans_saved
        oxc = sum(m.oxc_ports for m in self.merges)
        # Residual fibers removed also give up their duct OSS terminations.
        oss_removed = 4 * sum(
            m.fibers_before - m.fibers_after for m in self.merges
        )
        return Inventory(
            dc_transceivers=inv.dc_transceivers,
            dc_electrical_ports=inv.dc_electrical_ports,
            innetwork_transceivers=inv.innetwork_transceivers,
            innetwork_electrical_ports=inv.innetwork_electrical_ports,
            oss_ports=max(0, inv.oss_ports - oss_removed),
            oxc_ports=inv.oxc_ports + oxc,
            amplifiers=inv.amplifiers,
            fiber_pair_spans=inv.fiber_pair_spans - saved,
            dc_oss_ports=inv.dc_oss_ports,
        )


def hybridize(plan: IrisPlan, max_combine: int = 4) -> HybridPlan:
    """Greedily combine residual fibers with wavelength switching.

    ``max_combine`` caps how many residual fibers share one trunk (4 per
    Observation 2's worst case). The greedy maximizes fiber-span savings,
    per Appendix B; device costs appear only in the final bill.
    """
    if max_combine < 2:
        raise ReproError("combining fewer than 2 fibers is a no-op")
    base_paths = plan.topology.base_paths

    merged: set[Pair] = set()
    merges: list[ResidualMerge] = []

    while True:
        # endpoint -> hut -> (pairs passing through, prefix span count).
        groups: dict[tuple[str, str], list[Pair]] = defaultdict(list)
        prefix_spans: dict[tuple[str, str], int] = {}
        for pair, path in base_paths.items():
            if pair in merged:
                continue
            for endpoint, ordered in ((path[0], path), (path[-1], tuple(reversed(path)))):
                for depth, node in enumerate(ordered[1:-1], start=1):
                    key = (endpoint, node)
                    groups[key].append(pair)
                    prefix_spans[key] = depth

        best_gain = 0.0
        best: ResidualMerge | None = None
        for (endpoint, hut), pairs in groups.items():
            if len(pairs) < 2:
                continue
            chosen = tuple(sorted(pairs)[:max_combine])
            merge = ResidualMerge(
                endpoint=endpoint,
                hut=hut,
                pairs=chosen,
                shared_spans=prefix_spans[(endpoint, hut)],
            )
            # Appendix B scores candidates by potential fiber saving and
            # repeats "as long as any fiber saving can be achieved"; the
            # device cost shows up in the final bill, not the greedy.
            gain = float(merge.spans_saved)
            if gain > best_gain + 1e-9:
                best_gain, best = gain, merge

        if best is None:
            break
        merges.append(best)
        merged.update(best.pairs)

    return HybridPlan(base=plan, merges=tuple(merges))
