"""The unified Design API: one entry point over every region designer.

Historically each baseline had its own calling convention — hub-and-spoke
wanted hubs, the AZ design wanted zones, EPS wanted a pre-planned topology,
hybrid wanted a full Iris plan. The :class:`Design` protocol unifies them:
a design has a ``name`` and turns a region into an equipment
:class:`~repro.cost.estimator.Inventory` via ``plan(region)``. The registry
(:func:`get_design`) resolves designs by kind::

    from repro.designs import get_design
    inventory = get_design("eps").plan(region)
    inventory = get_design("centralized", hubs=("T00", "T42")).plan(region)

The concrete designer classes here are thin, picklable adapters that fill
in sensible defaults (auto-selected hubs, zone clustering, serial planning)
and delegate to the underlying modules; the original free functions and
classes remain available for callers that need full control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.cost.estimator import Inventory
from repro.exceptions import ReproError
from repro.region.fibermap import RegionSpec

if TYPE_CHECKING:
    from repro.store import PlanStore


@runtime_checkable
class Design(Protocol):
    """Anything that can turn a region into an equipment inventory.

    ``name``
        Stable registry identifier (``"iris"``, ``"eps"``, ...).
    ``plan(region)``
        Design the region and return its :class:`Inventory`.
    """

    name: str

    def plan(self, region: RegionSpec) -> Inventory: ...


_REGISTRY: dict[str, Callable[..., Design]] = {}


def register_design(kind: str) -> Callable:
    """Class decorator: register a designer factory under ``kind``."""

    def decorate(factory: Callable[..., Design]) -> Callable[..., Design]:
        if kind in _REGISTRY:
            raise ReproError(f"design kind {kind!r} already registered")
        _REGISTRY[kind] = factory
        return factory

    return decorate


def get_design(kind: str, **options) -> Design:
    """A designer of the given ``kind``, configured with ``options``.

    ``options`` are forwarded to the designer's constructor (e.g.
    ``hubs=`` for ``"centralized"``, ``zone_count=`` for
    ``"semidistributed"``, ``jobs=``, ``backend=``, and ``store=`` for
    the planner-backed kinds).
    """
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        raise ReproError(
            f"unknown design kind {kind!r}; available: "
            f"{', '.join(available_designs())}"
        ) from None
    return factory(**options)


def available_designs() -> list[str]:
    """All registered design kinds, sorted."""
    return sorted(_REGISTRY)


def _default_hubs(region: RegionSpec) -> tuple[str, ...]:
    """The hut minimizing the worst DC spoke distance (the §2.4 hub)."""
    from repro.designs.semidistributed import _best_hub

    return (_best_hub(region, region.dcs),)


@register_design("iris")
@dataclass(frozen=True)
class IrisDesign:
    """The paper's all-optical fiber-switched design (§4), fully planned.

    An optional ``store`` checkpoints the underlying Iris plan in a
    :class:`~repro.store.PlanStore`, so replanning the same region is a
    load instead of a recompute (see :mod:`repro.store`).
    """

    jobs: int | None = 1
    backend: str | None = None
    store: "PlanStore | None" = None

    name = "iris"

    def plan(self, region: RegionSpec) -> Inventory:
        from repro.core.planner import _plan_region

        return _plan_region(
            region, jobs=self.jobs, backend=self.backend, store=self.store
        ).inventory()


@register_design("eps")
@dataclass(frozen=True)
class EPSDesign:
    """The electrical packet-switched realization of Algorithm 1 (§4.2).

    EPS shares Algorithm 1 with Iris but realizes it electrically, so the
    cacheable artifact is the bare topology: with a ``store``, the planned
    :class:`~repro.core.plan.TopologyPlan` is keyed under
    ``design="eps"`` and loaded back bit-identically on later runs.
    """

    jobs: int | None = 1
    backend: str | None = None
    store: "PlanStore | None" = None

    name = "eps"

    def plan(self, region: RegionSpec) -> Inventory:
        from repro.core.topology import plan_topology
        from repro.designs.eps import eps_inventory

        if self.store is None:
            return eps_inventory(
                region,
                plan_topology(region, jobs=self.jobs, backend=self.backend),
            )

        from repro.serialize import topology_from_dict, topology_to_dict
        from repro.store import plan_key

        key = plan_key(design="eps", region=region)
        cached = self.store.get(key)
        if cached is not None:
            try:
                return eps_inventory(region, topology_from_dict(cached))
            except ReproError:
                pass  # stale payload: fall through and replan
        topology = plan_topology(region, jobs=self.jobs, backend=self.backend)
        self.store.put(key, topology_to_dict(topology), kind="topology")
        return eps_inventory(region, topology)


@register_design("hybrid")
@dataclass(frozen=True)
class HybridDesign:
    """Iris with wavelength-switched residual combining (Appendix B)."""

    jobs: int | None = 1
    max_combine: int = 4
    backend: str | None = None
    store: "PlanStore | None" = None

    name = "hybrid"

    def plan(self, region: RegionSpec) -> Inventory:
        from repro.core.planner import _plan_region
        from repro.designs.hybrid import hybridize

        plan = _plan_region(
            region, jobs=self.jobs, backend=self.backend, store=self.store
        )
        return hybridize(plan, max_combine=self.max_combine).inventory()


@register_design("centralized")
@dataclass(frozen=True)
class CentralizedDesigner:
    """Hub-and-spoke (§2, Fig 1(c)) with auto-selected hubs by default.

    ``hubs=None`` picks the hut minimizing the worst DC spoke distance;
    ``redundant`` mirrors :meth:`CentralizedDesign.inventory`'s single- vs
    dual-hub accounting.
    """

    hubs: tuple[str, ...] | None = None
    redundant: bool = False

    name = "centralized"

    def plan(self, region: RegionSpec) -> Inventory:
        from repro.designs.centralized import CentralizedDesign

        hubs = tuple(self.hubs) if self.hubs else _default_hubs(region)
        return CentralizedDesign(region, hubs).inventory(
            redundant=self.redundant
        )


@register_design("semidistributed")
@dataclass(frozen=True)
class SemiDistributedDesigner:
    """The AZ-style design (Fig 1(e)): clustered zones with per-zone hubs."""

    zone_count: int = 2
    seed: int = 0

    name = "semidistributed"

    def plan(self, region: RegionSpec) -> Inventory:
        from repro.designs.semidistributed import cluster_zones

        return cluster_zones(region, self.zone_count, self.seed).inventory()
