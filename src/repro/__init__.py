"""repro: reproduction of the SIGCOMM 2020 Iris regional DCI architecture.

The package implements the full system from "Beyond the mega-data center:
networking multi-data center regions" (Dukic et al., SIGCOMM 2020):

* :mod:`repro.region` — regional fiber-map substrate (synthetic Azure-like
  regions, DC placement, siting-flexibility analysis).
* :mod:`repro.optics` — physical-layer substrate (link budgets, cascaded
  amplifier OSNR, DP-16QAM BER, C-band spectrum management).
* :mod:`repro.core` — the Iris planner (Algorithm 1 topology & capacity,
  Algorithm 2 amplifier placement, cut-through links, residual fibers).
* :mod:`repro.designs` — baselines: electrical packet switching, the analytic
  port model, centralized/distributed designers, hybrid wavelength switching.
* :mod:`repro.cost` — the §3.3 cost model and itemized network cost estimator.
* :mod:`repro.control` — the Iris control plane over simulated devices.
* :mod:`repro.testbed` — emulation of the paper's optical testbed (§6.2).
* :mod:`repro.simulation` — the flow-level simulator used in §6.3.
* :mod:`repro.analysis` — the per-figure analyses of the evaluation.
* :mod:`repro.obs` — structured observability: hierarchical spans,
  counters, and exporters threaded through the planner, engine, simulator,
  and control plane (off by default; see ``obs.tracing``).
* :mod:`repro.service` — the planner service: ``iris serve`` daemon with
  single-flight request coalescing, cache-aside over :mod:`repro.store`,
  and incremental replanning under :class:`repro.region.RegionDelta`
  (byte-identical to a cold replan, typically ~an order of magnitude
  faster).
"""

from repro import api, obs
from repro.api import PlannerConfig, plan, simulate, sweep
from repro.region.fibermap import (
    FiberMap,
    NodeKind,
    OperationalConstraints,
    RegionSpec,
    duct_key,
)
from repro.core.engine import PlanTimings
from repro.core.planner import IrisPlanner, plan_region
from repro.cost.pricebook import PriceBook
from repro.cost.estimator import estimate_cost
from repro.designs.base import Design, available_designs, get_design
from repro.obs import SpanRecord, profile_plan

__version__ = "1.10.0"

__all__ = [
    "api",
    "obs",
    "PlannerConfig",
    "plan",
    "simulate",
    "sweep",
    "SpanRecord",
    "profile_plan",
    "FiberMap",
    "NodeKind",
    "OperationalConstraints",
    "RegionSpec",
    "duct_key",
    "IrisPlanner",
    "PlanTimings",
    "plan_region",
    "Design",
    "get_design",
    "available_designs",
    "PriceBook",
    "estimate_cost",
    "__version__",
]
