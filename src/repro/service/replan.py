"""Incremental replanning: patch a plan under a delta, byte-identical to cold.

:func:`apply_delta` takes an existing :class:`~repro.core.plan.IrisPlan`
and a :class:`~repro.region.delta.RegionDelta` and produces the plan of
the *mutated* region while recomputing only the failure scenarios the
delta actually touches. The hard guarantee — enforced by property tests
and checkable at runtime with ``verify=True`` — is::

    plan_to_json(apply_delta(plan, delta), full=True)
        == plan_to_json(cold_replan(delta.apply_to_region(plan.region)), full=True)

byte for byte. That is a much stronger bar than "same capacities": every
shortest path, including Dijkstra tie-breaks, must match what a from-
scratch run would compute.

The mechanism is a :class:`DeltaPathOracle` plugged into Algorithm 1's
scenario evaluation (``paths_oracle=`` on
:func:`repro.core.topology.plan_topology`). The planner still enumerates
the mutated region's scenario set itself — enumeration is driven by the
path sets, so reuse cannot skew *which* scenarios exist — and the oracle
answers each scenario from the old plan only when one of three
**execution-identity** rules proves the old answer is what Dijkstra would
compute on the mutated map:

``identity``
    The TC1-pruned maps of the old and new regions are equal (capacity
    and price deltas; duct deltas beyond point-to-point reach). Every
    scenario's evaluation graph is unchanged, so every old path set is
    reused outright.

``cut`` (pruned maps differ by exactly one *removed* duct ``d``)
    A new-region scenario ``S`` evaluates on ``M' - S = M - (S ∪ {d})``
    — exactly the graph the old plan's scenario ``S ∪ {d}`` evaluated
    on (same edges, same adjacency order), so ``old[S ∪ {d}]`` is reused
    *as is* when enumerated. Failing that, ``old[S]`` is reused iff the
    strict-bypass check below proves ``d`` irrelevant under ``S``.

``add`` (pruned maps differ by exactly one *added* duct ``d``)
    The mirror image: when ``d ∈ S``, the evaluation graph equals the
    old ``S - {d}`` graph, so ``old[S - {d}]`` is reused. When
    ``d ∉ S``, ``old[S]`` is reused iff the strict-bypass check proves
    adding ``d`` changes nothing.

The strict-bypass check is the one sufficient condition under which
Dijkstra's *output* (distances, paths, and tie-breaks) is provably
unchanged by the presence of edge ``d = (u, v)``::

    dist_{G without d}(u, v) < length(d)      (strictly)

Every label relaxed through ``d`` is then strictly worse than the true
distance (triangle inequality through the shorter u-v route), so such
labels are transient: they are strictly overwritten before any node is
finalized, the pop/relaxation sequence of all other entries is unchanged
(heap tie-breaks are by insertion counter, and extra strictly-worse
entries never reorder the rest), and the returned paths are identical.
Equality is deliberately *excluded* — an equal-length alternative could
win a tie — and a float tolerance pads the comparison, so uncertainty
always falls back to an honest cold evaluation. The check itself is one
cutoff-bounded single-pair Dijkstra, far cheaper than the full
all-pairs evaluation it saves.

Everything the oracle declines is recomputed cold by the normal backend
fan-out; the capacity phase then runs unmodified over the (identical)
path sets, served by the per-process hose cache — which the old plan's
run left warm for exactly these instances, and whose residual states
repair the few genuinely new flows incrementally (the PR 6 machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro import obs
from repro.core.engine import CancelToken
from repro.core.failures import Scenario
from repro.core.hose import invalidate_hose_dcs
from repro.core.plan import IrisPlan, Pair, TopologyPlan
from repro.core.planner import IrisPlanner
from repro.core.topology import plan_topology, prune_overlong_ducts
from repro.exceptions import PlanningError
from repro.region.delta import RegionDelta
from repro.region.fibermap import Duct, FiberMap, RegionSpec
from repro.units import IRIS_MAX_DUCT_KM

#: Strictness pad for the bypass check: a shorter route must beat the
#: candidate duct by more than this to count as *strictly* shorter.
#: Matches the planner's own length tolerance (SLA/pruning comparisons).
_STRICT_EPS = 1e-9


@dataclass
class DeltaStats:
    """How much work :func:`apply_delta` actually reused vs recomputed.

    ``reused``
        Scenarios answered from the old plan (either execution-identity
        rule).
    ``checked``
        Scenarios that needed the strict-bypass Dijkstra check (subset of
        ``reused + computed``).
    ``computed``
        Scenarios evaluated cold by the backend.
    ``mode``
        Which oracle mode ran: ``"identity"``, ``"cut"``, ``"add"``, or
        ``"cold"`` (no oracle applicable — e.g. DC attach/detach).
    """

    reused: int = 0
    checked: int = 0
    computed: int = 0
    mode: str = "cold"
    #: ``"reused"`` when the optical realization (amplifiers, cut-throughs,
    #: residual) was carried over wholesale, ``"recomputed"`` otherwise.
    realization: str = "recomputed"


class DeltaPathOracle:
    """A :class:`repro.core.topology.PathsOracle` over one plan's paths.

    Holds the old plan's scenario -> paths table plus the single-duct
    difference between the old and new pruned maps, and answers lookups
    by the execution-identity rules in the module docstring. Instances
    are single-use and not thread-safe (one ``apply_delta`` call each).
    """

    def __init__(
        self,
        old_paths: dict[Scenario, dict[Pair, tuple[str, ...]]],
        mode: str,
        duct: Duct | None = None,
        length_km: float | None = None,
        check_map: FiberMap | None = None,
    ) -> None:
        self.old_paths = old_paths
        self.mode = mode
        self.duct = duct
        self.length_km = length_km
        #: The d-less pruned map the strict-bypass check runs on: the
        #: *new* map for ``cut`` (d already absent), the *old* map for
        #: ``add`` (d not yet present).
        self.check_map = check_map
        self.stats = DeltaStats(mode=mode)

    def lookup(self, scenario: Scenario) -> dict[Pair, tuple[str, ...]] | None:
        if self.mode == "identity":
            paths = self.old_paths.get(scenario)
            if paths is not None:
                self.stats.reused += 1
                return paths
            self.stats.computed += 1
            return None

        assert self.duct is not None
        if self.mode == "cut":
            # The new scenario S evaluates on the same graph — same edge
            # set, same adjacency iteration order — as the old S ∪ {d}.
            paths = self.old_paths.get(scenario | {self.duct})
            if paths is not None:
                self.stats.reused += 1
                return paths
        else:  # "add"
            if self.duct in scenario:
                paths = self.old_paths.get(scenario - {self.duct})
                if paths is not None:
                    self.stats.reused += 1
                    return paths
                self.stats.computed += 1
                return None

        # Fall back to the old plan's own entry for S, valid only when
        # the strict-bypass check proves d cannot appear in (or perturb)
        # any shortest path under this scenario.
        paths = self.old_paths.get(scenario)
        if paths is not None and self._d_is_irrelevant(scenario):
            self.stats.reused += 1
            return paths
        self.stats.computed += 1
        return None

    def _d_is_irrelevant(self, scenario: Scenario) -> bool:
        """Whether ``dist(u, v) < length(d)`` strictly, without ``d``."""
        assert self.duct is not None and self.check_map is not None
        assert self.length_km is not None
        self.stats.checked += 1
        u, v = self.duct
        graph = self.check_map.subgraph_without(scenario)
        try:
            dist = nx.dijkstra_path_length(
                graph, u, v, weight="length_km"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return False
        return dist < self.length_km - _STRICT_EPS


def _pruned_ducts(fmap: FiberMap) -> dict[Duct, float]:
    """Duct -> length of the TC1-pruned map (the evaluation substrate)."""
    return {duct: fmap.duct_length(*duct) for duct in fmap.ducts}


def _build_oracle(
    plan: IrisPlan, old_region: RegionSpec, new_region: RegionSpec
) -> DeltaPathOracle | None:
    """The reuse oracle for this old-plan/new-region pair, if any applies.

    Returns ``None`` when no execution-identity argument covers the
    difference (node set changed, or more than one duct differs after
    pruning) — the caller then plans cold, still profiting from the warm
    hose cache.
    """
    if old_region.fiber_map.nodes != new_region.fiber_map.nodes:
        return None
    usable_old = min(old_region.constraints.max_span_km, IRIS_MAX_DUCT_KM)
    usable_new = min(new_region.constraints.max_span_km, IRIS_MAX_DUCT_KM)
    # Exact inequality is the conservative direction here: any difference
    # in the pruning threshold, even ULP-level, must force a cold plan
    # (isclose could reuse paths pruned under a different substrate).
    if usable_old != usable_new:  # repro: noqa-R003
        return None
    old_pruned = prune_overlong_ducts(old_region.fiber_map, usable_old)
    new_pruned = prune_overlong_ducts(new_region.fiber_map, usable_new)
    old_ducts = _pruned_ducts(old_pruned)
    new_ducts = _pruned_ducts(new_pruned)

    old_paths = dict(plan.topology.scenario_paths)
    if old_ducts == new_ducts:
        return DeltaPathOracle(old_paths, "identity")

    removed = [d for d in old_ducts if d not in new_ducts]
    added = [d for d in new_ducts if d not in old_ducts]
    changed = [
        d
        for d in old_ducts
        if d in new_ducts and old_ducts[d] != new_ducts[d]
    ]
    if changed or len(removed) + len(added) != 1:
        return None
    if removed:
        duct = removed[0]
        return DeltaPathOracle(
            old_paths,
            "cut",
            duct=duct,
            length_km=old_ducts[duct],
            check_map=new_pruned,
        )
    duct = added[0]
    return DeltaPathOracle(
        old_paths,
        "add",
        duct=duct,
        length_km=new_ducts[duct],
        check_map=old_pruned,
    )


def _realization_reusable(
    plan: IrisPlan,
    old_region: RegionSpec,
    new_region: RegionSpec,
    topology: "TopologyPlan",
) -> bool:
    """Whether the old plan's optical realization equals the cold one.

    ``plan_from_topology``'s phases (amplifier placement, the cut-through
    greedy, residual fibers, validation) read their inputs exclusively
    through: every scenario's paths, the per-duct base capacities, duct
    lengths *along those paths*, ``dc_fibers``, and the operational
    constraints. This predicate checks all of them for equality between
    the old plan and the fresh topology (path-duct lengths are equal by
    construction: the oracle modes admit at most one differing duct, and
    path equality proves no path crosses it). When it holds, the cold
    realization would receive byte-equal inputs in the same iteration
    order — scenario order is the enumeration order, which equal path
    sets reproduce — so reusing the old outputs is exact, not heuristic.
    """
    return (
        old_region.dc_fibers == new_region.dc_fibers
        and old_region.constraints == new_region.constraints
        and old_region.wavelengths_per_fiber == new_region.wavelengths_per_fiber
        and old_region.gbps_per_wavelength == new_region.gbps_per_wavelength
        and plan.topology.edge_capacity == topology.edge_capacity
        and plan.topology.scenario_paths == topology.scenario_paths
    )


def apply_delta(
    plan: IrisPlan,
    delta: RegionDelta,
    *,
    jobs: int | None = 1,
    backend: str | None = None,
    prune_enumeration: bool = True,
    validate: bool = True,
    cancel_token: CancelToken | None = None,
    verify: bool = False,
    stats: DeltaStats | None = None,
) -> IrisPlan:
    """Replan ``plan``'s region under ``delta``, reusing untouched work.

    Returns the plan of ``delta.apply_to_region(plan.region)``,
    guaranteed ``plan_to_json``-byte-identical (``full=True`` included)
    to a cold replan of that mutated region. ``price_changed`` deltas
    return ``plan`` itself — prices are not plan inputs.

    ``prune_enumeration``/``validate``/``jobs``/``backend`` mirror
    :class:`~repro.core.planner.IrisPlanner`; parity holds whatever the
    backend, since reuse happens above the chunk fan-out.

    ``verify=True`` additionally runs the cold replan and raises
    :class:`~repro.exceptions.PlanningError` on any byte difference —
    the belt-and-braces mode for tests and benchmarks (it obviously
    forfeits the speedup). ``stats``, when given, is filled in place
    with the reuse/recompute breakdown.
    """
    from repro.serialize import plan_to_json

    out_stats = stats if stats is not None else DeltaStats()
    if delta.kind == "price_changed":
        out_stats.mode = "price"
        out_stats.reused = len(plan.topology.scenario_paths)
        return plan

    new_region = delta.apply_to_region(plan.region)
    # Memory hygiene: a detached/resized DC's old-capacity hose entries
    # can never be requested again (capacities are part of the key).
    invalidate_hose_dcs(delta.touched_dcs())

    oracle = _build_oracle(plan, plan.region, new_region)
    with obs.span("service.apply_delta") as span:
        topology = plan_topology(
            new_region,
            prune_enumeration=prune_enumeration,
            jobs=jobs,
            backend=backend,
            paths_oracle=oracle,
            cancel_token=cancel_token,
        )
        if oracle is not None and _realization_reusable(
            plan, plan.region, new_region, topology
        ):
            # The optical realization (amplifiers, cut-throughs, residual,
            # effective paths) is a pure function of inputs it reads only
            # through the scenario paths, the per-duct capacities, the DC
            # capacities, and the constraints — all just proven equal — so
            # the old plan's realization IS what a cold run would compute.
            # Only the topology object itself (scenario totals shift with
            # the duct count) is taken from the fresh run.
            patched = IrisPlan(
                region=new_region,
                topology=topology,
                amplifiers=plan.amplifiers,
                cut_throughs=plan.cut_throughs,
                residual=plan.residual,
                effective_paths=plan.effective_paths,
            )
            out_stats.realization = "reused"
            span.incr("delta.realization_reused", 1)
        else:
            patched = IrisPlanner(
                new_region,
                prune_enumeration=prune_enumeration,
                validate=validate,
                jobs=jobs,
                backend=backend,
                cancel_token=cancel_token,
            ).plan_from_topology(topology)
        if oracle is not None:
            out_stats.reused = oracle.stats.reused
            out_stats.checked = oracle.stats.checked
            out_stats.computed = oracle.stats.computed
            out_stats.mode = oracle.stats.mode
        else:
            out_stats.mode = "cold"
            out_stats.computed = len(topology.scenario_paths)
        span.incr("delta.scenarios_reused", out_stats.reused)
        span.incr("delta.scenarios_computed", out_stats.computed)
        span.incr("delta.bypass_checks", out_stats.checked)

    if verify:
        cold = IrisPlanner(
            new_region,
            prune_enumeration=prune_enumeration,
            validate=validate,
            jobs=jobs,
            backend=backend,
        ).plan()
        patched_json = plan_to_json(patched, full=True)
        cold_json = plan_to_json(cold, full=True)
        if patched_json != cold_json:
            raise PlanningError(
                f"apply_delta parity violation for {delta.kind} delta: "
                "patched plan differs from cold replan"
            )
    return patched
