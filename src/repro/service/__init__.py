"""The planner service: a long-lived daemon over the batch planner.

Layers (each usable on its own):

* :mod:`repro.service.replan` — :func:`apply_delta`: incremental
  replanning under a :class:`~repro.region.delta.RegionDelta`, byte-
  identical to a cold replan of the mutated region.
* :mod:`repro.service.protocol` — the newline-delimited JSON request/
  response encoding shared by daemon and client.
* :mod:`repro.service.daemon` — :class:`PlannerService`: bounded request
  queue, worker threads over the engine backends, single-flight request
  coalescing, cache-aside over :mod:`repro.store`, graceful drain.
* :mod:`repro.service.client` — :class:`ServiceClient`: the thin
  blocking client the ``iris submit`` / ``iris jobs`` commands wrap.
"""

from repro.service.replan import DeltaPathOracle, DeltaStats, apply_delta

__all__ = [
    "DeltaPathOracle",
    "DeltaStats",
    "apply_delta",
    "PlannerService",
    "ServiceConfig",
    "ServiceClient",
]


def __getattr__(name: str):
    # Lazy: the daemon/client pull in socket/threading machinery that
    # pure apply_delta users (and the planner's import graph) never need.
    if name in ("PlannerService", "ServiceConfig"):
        from repro.service import daemon

        return getattr(daemon, name)
    if name == "ServiceClient":
        from repro.service import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
