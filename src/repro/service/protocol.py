"""The planner service wire protocol: newline-delimited JSON over TCP.

Deliberately stdlib-only and trivial to speak by hand::

    $ printf '{"op": "ping", "protocol_version": 1}\n' | nc 127.0.0.1 9770
    {"ok": true, "op": "ping", ...}

One JSON object per line in each direction; a connection may carry any
number of request/response exchanges (responses come back in request
order). Requests carry ``op`` plus op-specific fields; responses carry
``ok`` (with ``error`` when false) plus op-specific fields. Response
payloads that embed a plan carry it as the *canonical* compact JSON
string produced by the daemon (see :mod:`repro.service.daemon`), so two
clients receiving the same plan receive identical bytes whatever the
transport framing did.

Ops: ``ping``, ``submit``, ``status``, ``result``, ``jobs``, ``stats``,
``shutdown``. See :class:`repro.service.daemon.PlannerService.handle`
for the authoritative field-by-field semantics.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from repro.exceptions import ServiceError

#: Bump on any incompatible change to request/response shapes. Both ends
#: send it; both ends reject mismatches loudly.
PROTOCOL_VERSION = 1

#: Cap on one encoded message line; guards the daemon against unbounded
#: buffering on a hostile or confused peer. Plans on paper-scale regions
#: encode well under this.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def encode_message(message: dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True)
    return data.encode("utf-8") + b"\n"


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """The next protocol message from ``stream``; ``None`` on clean EOF.

    Raises :class:`~repro.exceptions.ServiceError` on oversized lines,
    undecodable JSON, or a non-object payload.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"protocol message exceeds {MAX_MESSAGE_BYTES} bytes"
        )
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"undecodable protocol message: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def check_protocol_version(message: dict[str, Any]) -> None:
    """Reject a message advertising an incompatible protocol version."""
    version = message.get("protocol_version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
