"""The thin blocking client for the planner daemon.

``iris submit`` / ``iris jobs`` wrap this; library callers use it
directly::

    from repro.service import ServiceClient

    with ServiceClient(("127.0.0.1", 9770)) as client:
        job_id = client.submit(region)["job_id"]
        plan = client.plan(job_id, timeout_s=120.0)

One TCP connection per client, request/response in lockstep (the
protocol is newline-delimited JSON; see :mod:`repro.service.protocol`).
Error responses raise :class:`~repro.exceptions.ServiceError` from every
method except :meth:`request`, which returns them raw.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.core.plan import IrisPlan
from repro.exceptions import ServiceError
from repro.region.delta import RegionDelta
from repro.region.fibermap import RegionSpec
from repro.serialize import plan_from_dict, region_to_dict
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    read_message,
)


class ServiceClient:
    """A blocking client for one :class:`~repro.service.daemon.PlannerService`.

    ``connect_timeout_s`` bounds the TCP connect; per-request blocking
    (e.g. waiting on a result) is bounded by the ``timeout_s`` argument
    of the individual call, enforced server-side, plus a grace margin on
    the socket itself so a wedged daemon can't hang the client forever.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        connect_timeout_s: float = 10.0,
    ) -> None:
        self.address = address
        self._sock: socket.socket | None = None
        self._stream: Any = None
        try:
            sock = socket.create_connection(
                address, timeout=connect_timeout_s
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach planner service at {address[0]}:{address[1]}: "
                f"{exc}"
            ) from exc
        self._sock = sock
        try:
            self._stream = self._sock.makefile("rb")
        except OSError:
            # Half-opened: the TCP connect succeeded but the stream did
            # not. Without this, the instance is never handed to the
            # caller and the connected socket leaks until GC.
            self._sock = None
            sock.close()
            raise

    # ------------------------------------------------------------------

    def request(
        self, message: dict[str, Any], *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """One raw request/response exchange (error responses returned as-is).

        ``timeout_s`` sets the socket read timeout for this exchange
        (``None`` waits indefinitely).
        """
        message = {"protocol_version": PROTOCOL_VERSION, **message}
        if self._sock is None or self._stream is None:
            raise ServiceError("client is closed")
        self._sock.settimeout(timeout_s)
        try:
            self._sock.sendall(encode_message(message))
            response = read_message(self._stream)
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"planner service at {self.address} unreachable: {exc}"
            ) from exc
        if response is None:
            raise ServiceError(
                f"planner service at {self.address} closed the connection"
            )
        return response

    def _checked(
        self, message: dict[str, Any], *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        response = self.request(message, timeout_s=timeout_s)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "planner service error"))
        return response

    # ------------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Liveness + version check."""
        return self._checked({"op": "ping"}, timeout_s=10.0)

    def submit(
        self, region: RegionSpec, *, delta: RegionDelta | None = None
    ) -> dict[str, Any]:
        """Submit a planning job; returns ``{"job_id", "coalesced", ...}``.

        With ``delta``, ``region`` is the *base* region and the job plans
        ``delta.apply_to_region(region)`` — incrementally when the base
        plan is warm on the daemon.
        """
        message: dict[str, Any] = {
            "op": "submit",
            "region": region_to_dict(region),
        }
        if delta is not None:
            message["delta"] = delta.to_dict()
        return self._checked(message, timeout_s=30.0)

    def status(self, job_id: str) -> dict[str, Any]:
        """Non-blocking job state."""
        return self._checked(
            {"op": "status", "job_id": job_id}, timeout_s=10.0
        )

    def result(
        self, job_id: str, *, timeout_s: float | None = 60.0
    ) -> dict[str, Any]:
        """Block until the job finishes; the plan arrives as canonical JSON
        text under ``"plan"`` (see :meth:`plan` for the decoded form)."""
        grace = None if timeout_s is None else timeout_s + 30.0
        return self._checked(
            {"op": "result", "job_id": job_id, "timeout_s": timeout_s},
            timeout_s=grace,
        )

    def plan(
        self, job_id: str, *, timeout_s: float | None = 60.0
    ) -> IrisPlan:
        """The finished job's plan, decoded."""
        response = self.result(job_id, timeout_s=timeout_s)
        return plan_from_dict(json.loads(response["plan"]))

    def jobs(self) -> list[dict[str, Any]]:
        """Summaries of every job the daemon still remembers."""
        return self._checked({"op": "jobs"}, timeout_s=10.0)["jobs"]

    def stats(self) -> dict[str, Any]:
        """Daemon counters + queue depth."""
        return self._checked({"op": "stats"}, timeout_s=10.0)

    def shutdown(self, *, timeout_s: float = 30.0) -> dict[str, Any]:
        """Ask the daemon to drain and exit (returns immediately)."""
        return self._checked(
            {"op": "shutdown", "timeout_s": timeout_s}, timeout_s=10.0
        )

    def close(self) -> None:
        """Release the connection. Idempotent, and safe on a client whose
        construction only half-completed: each handle is detached before
        it is closed, so a second ``close()`` (or an ``__exit__`` racing
        an explicit close) finds nothing left to do."""
        stream = self._stream
        self._stream = None
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass
        sock = self._sock
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
