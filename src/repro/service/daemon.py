"""The planner daemon: a long-lived JSON-over-TCP service over the planner.

``iris serve`` wraps :class:`PlannerService`: an acceptor thread feeds a
*bounded* request queue drained by a small pool of worker threads, each of
which runs one planning job at a time through the ordinary
:mod:`repro.core.engine` backends (``jobs=N`` inside a job fans out to
worker processes exactly as in batch mode). The service adds three things
the batch planner doesn't have:

**Cache-aside over the store.** Every job is keyed with
:func:`repro.store.keys.service_request_key` — the same function the
batch planner's ``store=`` path uses — so a warm
:class:`~repro.store.PlanStore` answers repeat requests without planning,
and plans the daemon computes are checkpointed for the CLI to reuse.

**Single-flight coalescing.** Concurrent submissions with the same key
collapse onto one in-flight job: followers get the *same* job id back
(``coalesced: true``) and read the same canonical result bytes. N clients
asking for one uncached plan cost exactly one cold plan.

**Incremental replanning.** A submission may carry a
:class:`~repro.region.delta.RegionDelta`; when the *base* region's plan
is available (in-memory or in the store) the job runs
:func:`repro.service.apply_delta` instead of a cold plan — byte-identical
output, typically ~an order of magnitude faster (``outcome: "patched"``).

Every job outcome is counted (``queued``/``coalesced``/``store``/
``patched``/``cold``/``rejected``/``completed``/``failed``/``timeouts``)
and mirrored into :mod:`repro.obs` under ``service.*``, so the stampede
and smoke tests can assert "exactly one cold plan" from the counters.

Result payloads are normalized once per job —
``json.dumps(plan_dict, sort_keys=True, separators=(",", ":"))`` over the
``full=True`` plan encoding — and fanned out verbatim, so coalesced
clients receive bit-identical bytes by construction.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro import __version__, obs
from repro.core.engine import CancelToken
from repro.core.plan import IrisPlan
from repro.core.planner import IrisPlanner
from repro.exceptions import JobCancelled, ReproError, ServiceError
from repro.region.delta import RegionDelta, delta_from_dict
from repro.region.fibermap import RegionSpec
from repro.serialize import plan_from_dict, plan_to_dict, region_from_dict
from repro.service.protocol import (
    PROTOCOL_VERSION,
    check_protocol_version,
    encode_message,
    read_message,
)
from repro.service.replan import DeltaStats, apply_delta
from repro.store import PlanStore
from repro.store.keys import service_request_key

#: Counter names the service maintains (all mirrored as ``service.<name>``
#: into the active obs tracer, if any).
COUNTER_NAMES = (
    "queued",
    "coalesced",
    "rejected",
    "completed",
    "failed",
    "timeouts",
    "store_hits",
    "patched",
    "cold",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one :class:`PlannerService`.

    ``port=0`` binds an ephemeral port (read it back from ``.address``).
    ``queue_size`` bounds admission — submissions beyond it are rejected,
    never buffered without limit. ``jobs``/``backend`` configure the
    engine backend *inside* each job (serial by default; the service's
    own concurrency comes from ``workers`` threads). ``job_timeout_s``
    arms a per-job :class:`~repro.core.engine.CancelToken` deadline.
    ``keep_results`` bounds both the finished-job table and the
    in-memory plan cache that seeds delta jobs.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_size: int = 16
    jobs: int | None = 1
    backend: str | None = None
    job_timeout_s: float | None = None
    keep_results: int = 64
    prune_enumeration: bool = True
    validate: bool = True


class _Job:
    """One submitted planning job (shared by all coalesced submitters)."""

    __slots__ = (
        "job_id",
        "key",
        "state",
        "outcome",
        "error",
        "result_json",
        "delta_stats",
        "region",
        "base_region",
        "delta",
        "token",
        "done",
        "waiters",
    )

    def __init__(
        self,
        job_id: str,
        key: str,
        region: RegionSpec,
        base_region: RegionSpec | None,
        delta: RegionDelta | None,
    ) -> None:
        self.job_id = job_id
        self.key = key
        self.state = "queued"  # queued | running | done | failed
        self.outcome: str | None = None  # store | patched | cold
        self.error: str | None = None
        self.result_json: str | None = None
        self.delta_stats: dict[str, Any] | None = None
        self.region = region
        self.base_region = base_region
        self.delta = delta
        self.token: CancelToken | None = None
        self.done = threading.Event()
        self.waiters = 1  # submissions coalesced onto this job

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "outcome": self.outcome,
            "waiters": self.waiters,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


def _canonical(payload: dict[str, Any]) -> str:
    """The one result encoding: compact, sorted, bit-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class PlannerService:
    """The daemon behind ``iris serve``. See the module docstring.

    Usable fully in-process (``handle()`` is a pure request->response
    dispatch; the stampede tests drive it without sockets) or over TCP
    via :meth:`start` + :class:`repro.service.client.ServiceClient`.
    """

    def __init__(
        self, config: ServiceConfig | None = None, store: PlanStore | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = store
        self._lock = threading.Lock()
        self._queue: queue.Queue[_Job | None] = queue.Queue(
            maxsize=max(1, self.config.queue_size)
        )
        self._jobs: OrderedDict[str, _Job] = OrderedDict()
        self._inflight: dict[str, _Job] = {}
        self._plans: OrderedDict[str, IrisPlan] = OrderedDict()
        self._counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self._job_seq = 0
        self._draining = False
        self._closed = threading.Event()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._worker_threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "PlannerService":
        """Bind the listener and start acceptor + worker threads."""
        if self._listener is not None:
            raise ServiceError("service already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(128)
        except OSError:
            # bind/listen failure (port in use, bad host) must not leak
            # the half-configured socket: nothing owns it yet.
            listener.close()
            raise
        self._listener = listener
        self._start_workers()
        acceptor = threading.Thread(
            target=self._accept_loop, name="iris-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def _start_workers(self) -> None:
        if self._worker_threads:
            return
        for i in range(max(1, self.config.workers)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"iris-worker-{i}", daemon=True
            )
            worker.start()
            self._worker_threads.append(worker)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        if self._listener is None:
            raise ServiceError("service not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting work, finish in-flight jobs, then close.

        Returns ``True`` if everything finished inside the deadline;
        jobs still running at the deadline are cancelled via their
        tokens (they fail with a ``cancelled`` error, they don't leak).
        Idempotent; also the SIGTERM path of ``iris serve``.
        """
        with self._lock:
            self._draining = True
            pending = [
                job
                for job in self._jobs.values()
                if job.state in ("queued", "running")
            ]
        deadline = time.monotonic() + timeout_s
        clean = True
        for job in pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not job.done.wait(timeout=remaining):
                clean = False
                if job.token is not None:
                    job.token.cancel("drain deadline")
        if not clean:
            # One more bounded wait for the cancellations to unwind.
            for job in pending:
                job.done.wait(timeout=5.0)
        self.close()
        return clean

    def close(self) -> None:
        """Tear down immediately: cancel jobs, stop workers, close sockets."""
        with self._lock:
            self._draining = True
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.token is not None and job.state == "running":
                job.token.cancel("service closed")
        for _ in self._worker_threads:
            try:
                # Blocking put: a full queue drains as workers finish the
                # jobs ahead of the sentinel.
                self._queue.put(None, timeout=10.0)
            except queue.Full:
                break
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for worker in self._worker_threads:
            worker.join(timeout=5.0)
        self._worker_threads = []
        self._closed.set()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until :meth:`close` has completed (the ``serve`` loop)."""
        return self._closed.wait(timeout=timeout)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # counters

    def _incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
        obs.incr(f"service.{name}", amount)

    def counters(self) -> dict[str, int]:
        """A snapshot of the service counters."""
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------
    # request handling (pure dispatch, no sockets)

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one protocol request; never raises, errors become
        ``{"ok": false, "error": ...}`` responses."""
        try:
            check_protocol_version(request)
            op = request.get("op")
            if op == "ping":
                return {
                    "ok": True,
                    "op": "ping",
                    "protocol_version": PROTOCOL_VERSION,
                    "version": __version__,
                }
            if op == "submit":
                return self._handle_submit(request)
            if op == "status":
                return self._handle_status(request)
            if op == "result":
                return self._handle_result(request)
            if op == "jobs":
                with self._lock:
                    summaries = [job.summary() for job in self._jobs.values()]
                return {"ok": True, "op": "jobs", "jobs": summaries}
            if op == "stats":
                with self._lock:
                    counters = dict(self._counters)
                    depth = sum(
                        1 for j in self._jobs.values() if j.state == "queued"
                    )
                    draining = self._draining
                return {
                    "ok": True,
                    "op": "stats",
                    "counters": counters,
                    "queue_depth": depth,
                    "workers": self.config.workers,
                    "draining": draining,
                }
            if op == "shutdown":
                timeout_s = float(request.get("timeout_s", 30.0))
                threading.Thread(
                    target=self.drain,
                    args=(timeout_s,),
                    name="iris-drain",
                    daemon=True,
                ).start()
                return {"ok": True, "op": "shutdown", "draining": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _handle_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        region_data = request.get("region")
        if not isinstance(region_data, dict):
            raise ServiceError("submit requires a 'region' object")
        base_region = region_from_dict(region_data)
        delta: RegionDelta | None = None
        target = base_region
        if request.get("delta") is not None:
            delta_data = request["delta"]
            if not isinstance(delta_data, dict):
                raise ServiceError("submit 'delta' must be an object")
            delta = delta_from_dict(delta_data)
            target = delta.apply_to_region(base_region)
        key = service_request_key(
            design="iris",
            region=target,
            config={
                "prune_enumeration": self.config.prune_enumeration,
                "validate": self.config.validate,
            },
        )
        with self._lock:
            if self._draining:
                return {"ok": False, "error": "service is draining", "rejected": True}
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.waiters += 1
                coalesced = True
                job = inflight
            else:
                coalesced = False
                self._job_seq += 1
                job = _Job(
                    "job-%06d" % self._job_seq,
                    key,
                    target,
                    base_region if delta is not None else None,
                    delta,
                )
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    self._job_seq -= 1
                    self._counters["rejected"] += 1
                    obs.incr("service.rejected", 1)
                    return {
                        "ok": False,
                        "error": "request queue is full",
                        "rejected": True,
                    }
                self._jobs[job.job_id] = job
                self._inflight[key] = job
                self._evict_jobs_locked()
        self._incr("coalesced" if coalesced else "queued")
        return {
            "ok": True,
            "op": "submit",
            "job_id": job.job_id,
            "state": job.state,
            "coalesced": coalesced,
            "key": key,
        }

    def _handle_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._get_job(request)
        return {"ok": True, "op": "status", **job.summary()}

    def _handle_result(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._get_job(request)
        timeout_s = request.get("timeout_s")
        finished = job.done.wait(
            timeout=float(timeout_s) if timeout_s is not None else None
        )
        if not finished:
            return {
                "ok": False,
                "error": f"timed out waiting for {job.job_id}",
                "job_id": job.job_id,
                "state": job.state,
            }
        if job.state != "done":
            return {
                "ok": False,
                "error": job.error or f"{job.job_id} {job.state}",
                "job_id": job.job_id,
                "state": job.state,
            }
        response: dict[str, Any] = {
            "ok": True,
            "op": "result",
            "job_id": job.job_id,
            "state": job.state,
            "outcome": job.outcome,
            "plan": job.result_json,
        }
        if job.delta_stats is not None:
            response["delta_stats"] = job.delta_stats
        return response

    def _get_job(self, request: dict[str, Any]) -> _Job:
        job_id = request.get("job_id")
        if not isinstance(job_id, str):
            raise ServiceError("request requires a 'job_id' string")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def _evict_jobs_locked(self) -> None:
        # Finished jobs beyond keep_results age out oldest-first; queued
        # and running jobs are never evicted.
        while len(self._jobs) > max(1, self.config.keep_results):
            evicted = None
            for job_id, job in self._jobs.items():
                if job.state in ("done", "failed"):
                    evicted = job_id
                    break
            if evicted is None:
                break
            del self._jobs[evicted]

    # ------------------------------------------------------------------
    # workers

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: _Job) -> None:
        job.state = "running"
        job.token = CancelToken(self.config.job_timeout_s)
        try:
            plan, outcome, stats = self._resolve(job)
            job.result_json = _canonical(plan_to_dict(plan, full=True))
            job.outcome = outcome
            if stats is not None:
                job.delta_stats = {
                    "mode": stats.mode,
                    "realization": stats.realization,
                    "scenarios_reused": stats.reused,
                    "bypass_checks": stats.checked,
                    "scenarios_computed": stats.computed,
                }
            with self._lock:
                self._plans[job.key] = plan
                while len(self._plans) > max(1, self.config.keep_results):
                    self._plans.popitem(last=False)
            if self.store is not None and outcome != "store":
                self.store.put(
                    job.key, plan_to_dict(plan, full=True), kind="plan"
                )
            job.state = "done"
            if outcome in ("patched", "cold"):
                self._incr(outcome)  # "store" was counted in _resolve
            self._incr("completed")
        except JobCancelled as exc:
            job.error = str(exc)
            job.state = "failed"
            if job.token is not None and job.token.reason == "timeout":
                self._incr("timeouts")
            self._incr("failed")
        except ReproError as exc:
            job.error = str(exc)
            job.state = "failed"
            self._incr("failed")
        except Exception as exc:  # pragma: no cover - defensive
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            self._incr("failed")
        finally:
            with self._lock:
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
            job.done.set()

    def _resolve(
        self, job: _Job
    ) -> tuple[IrisPlan, str, DeltaStats | None]:
        """Cheapest correct source for the job's plan: store, patch, cold."""
        config = self.config
        if self.store is not None:
            cached = self.store.get(job.key)
            if cached is not None:
                try:
                    plan = plan_from_dict(cached)
                except ReproError:
                    plan = None  # stale payload: fall through and heal
                if plan is not None:
                    self._incr("store_hits")
                    return plan, "store", None
        if job.delta is not None:
            base_plan = self._base_plan(job)
            if base_plan is not None:
                stats = DeltaStats()
                plan = apply_delta(
                    base_plan,
                    job.delta,
                    jobs=config.jobs,
                    backend=config.backend,
                    prune_enumeration=config.prune_enumeration,
                    validate=config.validate,
                    cancel_token=job.token,
                    stats=stats,
                )
                return plan, "patched", stats
        plan = IrisPlanner(
            job.region,
            prune_enumeration=config.prune_enumeration,
            validate=config.validate,
            jobs=config.jobs,
            backend=config.backend,
            cancel_token=job.token,
        ).plan()
        return plan, "cold", None

    def _base_plan(self, job: _Job) -> IrisPlan | None:
        """The base region's plan for a delta job, if already available.

        In-memory first (plans this daemon produced), then the store.
        ``None`` sends the job down the cold path — correctness never
        depends on the base plan being warm.
        """
        if job.base_region is None:
            return None
        base_key = service_request_key(
            design="iris",
            region=job.base_region,
            config={
                "prune_enumeration": self.config.prune_enumeration,
                "validate": self.config.validate,
            },
        )
        with self._lock:
            plan = self._plans.get(base_key)
        if plan is not None:
            return plan
        if self.store is not None:
            cached = self.store.get(base_key)
            if cached is not None:
                try:
                    return plan_from_dict(cached)
                except ReproError:
                    return None
        return None

    # ------------------------------------------------------------------
    # sockets

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: service shutting down
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="iris-conn",
                daemon=True,
            )
            thread.start()
            listener = self._listener

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            stream = conn.makefile("rb")
            try:
                while True:
                    try:
                        request = read_message(stream)
                    except ServiceError as exc:
                        conn.sendall(
                            encode_message({"ok": False, "error": str(exc)})
                        )
                        return
                    if request is None:
                        return
                    response = self.handle(request)
                    try:
                        conn.sendall(encode_message(response))
                    except OSError:
                        return
            finally:
                stream.close()
