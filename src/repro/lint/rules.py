"""The reprolint domain rules (R001-R014).

Each rule guards one invariant the planner's correctness rests on — the
properties the parity, golden-count, and serialization-determinism tests
probe dynamically, enforced here at review time instead of as flaky test
failures:

=====  ==========================================================
R001   no global RNG state (seeded instances only)
R002   no wall-clock reads outside ``repro.obs``
R003   no float ``==``/``!=`` on unit-tagged quantities
R004   no iteration over unordered collections without ``sorted()``
R005   no module-level mutable state outside the whitelist
R006   public planner entry points keep config params keyword-only
R007   no arithmetic/comparison mixing different unit tags
R008   no non-atomic file writes inside ``repro.store``
R009   no unordered value reaching a serialization/store-key sink
R010   function return unit matches its ``_km``/``_db`` name suffix
R011   obs spans entered via the facade; counter keys deterministic
R012   pool-submitted callables are picklable (no lambdas/nested defs)
R013   pool-submitted callables are deterministic (``@worker_safe`` held)
R014   pool chunk functions perform no hidden I/O or unordered iteration
=====  ==========================================================

Since v2 the rules are *flow-sensitive*: the driver's pass 1
(:mod:`repro.lint.flow`) propagates unit and orderedness tags through
assignments, branches, comprehensions, and returns, so
``s = set(...); for x in s`` is just as visible to R004 as the literal
form, and R007 catches ``x = span_km; y = x + loss_db`` through the
alias.

Since v3 they are also *interprocedural*: the project pipeline
(:mod:`repro.lint.project`) resolves calls across the whole lint set and
closes determinism effects transitively over the call graph
(:mod:`repro.lint.summaries`), so R001/R002/R004/R005 fire at a call
site whose callee reaches the violation three calls deep — the finding
quotes the full chain ("via ``helper()`` at line N → ...") back to the
root cause. R007/R010 see unit tags through resolved return summaries,
and R012-R014 check every callable submitted to the execution backends.
Findings that are intentional carry a ``# repro: noqa-RXXX``
suppression, which matches anywhere in the flagged statement's line
span; a suppressed (blessed) origin also stops its effect from
propagating to callers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import function_id
from repro.lint.findings import Finding, TextEdit
from repro.lint.flow import (
    AbstractValue,
    Orderedness,
    unit_dimension,
    unit_suffix,
)
from repro.lint.registry import FileContext, rule
from repro.lint.summaries import (
    DATETIME_WALL,
    EFFECT_LABELS,
    NP_RANDOM_OK,
    RANDOM_OK,
    TIME_WALL,
    FunctionSummary,
    chain_text,
)


def _dotted_root(node: ast.expr) -> str | None:
    """The leftmost name of a dotted attribute chain, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# --- v3 interprocedural helpers ------------------------------------------------

#: Rule id -> the propagated effect whose presence it reports at call sites.
_RULE_EFFECTS = {
    "R001": "global_rng",
    "R002": "wall_clock",
    "R004": "unordered_iter",
    "R005": "module_state",
}


def _call_effect_findings(
    node: ast.Call, ctx: FileContext, rule_id: str
) -> Iterator[Finding]:
    """Call-site finding when the callee transitively has the rule's effect.

    This is how R001/R002/R004/R005 fire at the entry point even when the
    violation is three calls deep: the effect closure carries the origin
    and the chain of calls it travelled, which the message quotes.
    """
    if ctx.project is None:
        return
    resolved = ctx.resolve_call(node)
    if resolved is None:
        return
    fid, label = resolved
    origin = ctx.project.effects_of(fid).get(_RULE_EFFECTS[rule_id])
    if origin is None:
        return
    yield ctx.finding(
        node,
        rule_id,
        f"call to `{label}()` reaches code that "
        f"{EFFECT_LABELS[origin.effect]} ({chain_text(origin)}); fix or "
        "bless the origin — every caller inherits the nondeterminism",
    )


#: Origin markers that prove a flow value really is a set (not merely a
#: container tainted by one), making a ``sorted(...)`` wrap meaning-safe.
_SET_ORIGIN_MARKERS = (
    "set literal",
    "set comprehension",
    "set(...)",
    "frozenset(...)",
    "set iteration",
    "parameter annotated",
)


def _sorted_wrap_fix(
    expr: ast.expr, value: AbstractValue, ctx: FileContext
) -> TextEdit | None:
    """A ``sorted(...)`` wrap for ``expr``, when provably meaning-safe.

    Conservative on purpose: only offered when the expression is a set by
    shape or by flow origin. A container merely *tainted* by a set (a
    dict holding sets, say) stays fix-less — wrapping it in ``sorted``
    would change what the program iterates, not just the order.
    """
    safe = _syntactically_unordered(expr) or any(
        marker in (value.origin or "") for marker in _SET_ORIGIN_MARKERS
    )
    if not safe:
        return None
    span = ctx.span_of(expr)
    if span is None:
        return None
    start, end = span
    return TextEdit(start, end, f"sorted({ctx.source[start:end]})")


# --- R001: global RNG state ---------------------------------------------------

# The attribute whitelists are shared with the summary extractor so the
# intra-procedural rules and the interprocedural effect pass can never
# disagree about what counts as global RNG state or a wall-clock read.
_RANDOM_OK = RANDOM_OK
_NP_RANDOM_OK = NP_RANDOM_OK


@rule(
    "R001",
    title="no global RNG state",
    invariant=(
        "scenario enumeration and synthetic regions must replay bit-identically "
        "from an explicit seed; the shared module RNG is mutated by anyone"
    ),
    nodes=(ast.Attribute, ast.ImportFrom, ast.Call),
)
def no_global_rng(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.Call):
        yield from _call_effect_findings(node, ctx, "R001")
        return
    if isinstance(node, ast.ImportFrom):
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    yield ctx.finding(
                        node,
                        "R001",
                        f"'from random import {alias.name}' exposes the shared "
                        "module RNG; instantiate a seeded random.Random instead",
                    )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    yield ctx.finding(
                        node,
                        "R001",
                        f"'from numpy.random import {alias.name}' uses numpy's "
                        "global RNG; use numpy.random.default_rng(seed)",
                    )
        return
    assert isinstance(node, ast.Attribute)
    value = node.value
    if (
        isinstance(value, ast.Name)
        and value.id == "random"
        and node.attr not in _RANDOM_OK
    ):
        yield ctx.finding(
            node,
            "R001",
            f"random.{node.attr} mutates the shared module RNG; "
            "use a seeded random.Random instance",
        )
    elif (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
        and node.attr not in _NP_RANDOM_OK
    ):
        yield ctx.finding(
            node,
            "R001",
            f"{value.value.id}.random.{node.attr} mutates numpy's global RNG; "
            "use numpy.random.default_rng(seed)",
        )


# --- R002: wall-clock reads ---------------------------------------------------

_TIME_WALL = TIME_WALL
_DATETIME_WALL = DATETIME_WALL


@rule(
    "R002",
    title="no wall-clock reads",
    invariant=(
        "plan serialization is environment-invariant and all durations come "
        "from the monotonic clock owned by repro.obs; wall-clock reads leak "
        "the run environment into outputs and go backwards under NTP steps"
    ),
    nodes=(ast.Attribute, ast.ImportFrom, ast.Call),
    exempt=("repro/obs/",),
)
def no_wall_clock(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.Call):
        yield from _call_effect_findings(node, ctx, "R002")
        return
    if isinstance(node, ast.ImportFrom):
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_WALL:
                    yield ctx.finding(
                        node,
                        "R002",
                        f"'from time import {alias.name}' reads the wall clock; "
                        "use time.monotonic()/perf_counter() (repro.obs owns timing)",
                    )
        return
    assert isinstance(node, ast.Attribute)
    if (
        isinstance(node.value, ast.Name)
        and node.value.id == "time"
        and node.attr in _TIME_WALL
    ):
        yield ctx.finding(
            node,
            "R002",
            f"time.{node.attr} reads the wall clock; use "
            "time.monotonic()/perf_counter() (repro.obs owns timing)",
        )
    elif node.attr in _DATETIME_WALL and _dotted_root(node) in ("datetime", "date"):
        yield ctx.finding(
            node,
            "R002",
            f"{_dotted_root(node)}.{node.attr} reads the wall clock; planner "
            "outputs must not depend on when they were produced",
        )


# --- R003: float equality on quantities --------------------------------------


def _quantity_leaves(node: ast.expr) -> Iterator[ast.expr]:
    """Leaf operands of an arithmetic expression (through BinOp/UnaryOp)."""
    if isinstance(node, ast.BinOp):
        yield from _quantity_leaves(node.left)
        yield from _quantity_leaves(node.right)
    elif isinstance(node, ast.UnaryOp):
        yield from _quantity_leaves(node.operand)
    else:
        yield node


def _quantity_label(leaf: ast.expr) -> str:
    if isinstance(leaf, ast.Name):
        return leaf.id
    if isinstance(leaf, ast.Attribute):
        return leaf.attr
    if isinstance(leaf, ast.Constant):
        return repr(leaf.value)
    return ast.unparse(leaf)


def _is_float_quantity(leaf: ast.expr, ctx: FileContext) -> bool:
    """A float literal, a unit-suffixed name, or a flow-tagged quantity."""
    if isinstance(leaf, ast.Constant):
        return isinstance(leaf.value, float)
    if isinstance(leaf, ast.Name) and unit_suffix(leaf.id) is not None:
        return True
    if isinstance(leaf, ast.Attribute) and unit_suffix(leaf.attr) is not None:
        return True
    # Flow-sensitive: an alias of a quantity is a quantity.
    return ctx.value_of(leaf).unit is not None


@rule(
    "R003",
    title="no float equality on quantities",
    invariant=(
        "capacity/length comparisons must be tolerance-based (math.isclose) "
        "or integer-valued; float == breaks under the engine's chunked "
        "re-association and makes plans differ across platforms"
    ),
    nodes=(ast.Compare,),
)
def no_float_equality(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Compare)
    if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
        return
    operands = [node.left, *node.comparators]
    for operand in operands:
        for leaf in _quantity_leaves(operand):
            if _is_float_quantity(leaf, ctx):
                value = ctx.value_of(leaf)
                yield ctx.finding(
                    node,
                    "R003",
                    f"float equality on quantity {_quantity_label(leaf)!r}"
                    f"{value.describe()}; use math.isclose or an integer "
                    "unit (fibers, wavelengths)",
                )
                return


# --- R004: unordered iteration ------------------------------------------------

_SET_ALGEBRA_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Builtins whose result order follows the iteration order of their input.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Consumers for which input order provably cannot matter.
_ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
}


def _syntactically_unordered(expr: ast.expr) -> bool:
    """Whether ``expr`` is an unordered set by shape alone (no flow)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _syntactically_unordered(func.value)
        ):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_ALGEBRA_OPS):
        return _syntactically_unordered(expr.left) or _syntactically_unordered(
            expr.right
        )
    return False


def _unordered_value(expr: ast.expr, ctx: FileContext) -> AbstractValue | None:
    """The expression's abstract value if it may iterate nondeterministically.

    Flow-sensitive: ``s = set(...); for x in s`` resolves through the
    symbol table; the syntactic shapes remain as a fallback so the rule
    keeps working even on expressions the flow pass did not reach.
    """
    value = ctx.value_of(expr)
    if value.is_unordered:
        return value
    if _syntactically_unordered(expr):
        return AbstractValue(ordered=Orderedness.UNORDERED)
    return None


def _consumed_order_insensitively(node: ast.AST, ctx: FileContext) -> bool:
    """Whether ``node``'s enclosing expression discards iteration order."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE_CALLS
    )


_R004_MSG = (
    "iteration order of an unordered collection is undefined across "
    "processes and runs; wrap in sorted(...) before it reaches "
    "serialization or scenario enumeration"
)


def _r004_finding(
    node: ast.AST, value: AbstractValue, ctx: FileContext
) -> Finding:
    fix = _sorted_wrap_fix(node, value, ctx) if isinstance(node, ast.expr) else None
    return ctx.finding(node, "R004", _R004_MSG + value.describe(), fix=fix)


def _r004_argument_findings(
    node: ast.Call, ctx: FileContext
) -> Iterator[Finding]:
    """Unordered values passed into parameters the callee iterates.

    The callee's summary records which of its parameters it iterates
    order-sensitively while their orderedness is still the caller's to
    decide; handing such a parameter a set is the same bug as iterating
    the set here, just one call later.
    """
    if ctx.project is None:
        return
    resolved = ctx.resolve_call(node)
    if resolved is None:
        return
    fid, label = resolved
    summary = ctx.project.summary_of(fid)
    info = ctx.project.function(fid)
    if summary is None or info is None or not summary.iterated_params:
        return
    params = list(info.params)
    bound_method = (
        info.class_name is not None
        and isinstance(node.func, ast.Attribute)
        and bool(params)
        and params[0] in ("self", "cls")
    )
    offset = 1 if bound_method else 0
    pairs: list[tuple[str, ast.expr]] = []
    for position, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            break
        index = position + offset
        if index >= len(params):
            break
        pairs.append((params[index], arg))
    for keyword in node.keywords:
        if keyword.arg is not None:
            pairs.append((keyword.arg, keyword.value))
    for name, arg in pairs:
        if name not in summary.iterated_params:
            continue
        value = _unordered_value(arg, ctx)
        if value is None:
            continue
        yield ctx.finding(
            arg,
            "R004",
            f"unordered value passed as {name!r} to `{label}()`, which "
            f"iterates it order-sensitively{value.describe()}; sort it "
            "before the call",
            fix=_sorted_wrap_fix(arg, value, ctx),
        )


@rule(
    "R004",
    title="no unordered iteration",
    invariant=(
        "serialized plans and enumerated scenarios are byte-identical across "
        "runs, worker counts, and PYTHONHASHSEED; set iteration order is none "
        "of those — even through an alias"
    ),
    nodes=(ast.For, ast.AsyncFor, ast.comprehension, ast.Call),
)
def no_unordered_iteration(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        value = _unordered_value(node.iter, ctx)
        if value is not None:
            yield _r004_finding(node.iter, value, ctx)
        return
    if isinstance(node, ast.comprehension):
        value = _unordered_value(node.iter, ctx)
        if value is None:
            return
        # The enclosing comprehension decides whether order can matter: a
        # SetComp's own result is unordered (flagged where *it* is consumed),
        # and a generator fed straight into sorted()/sum()/... is fine.
        enclosing = ctx.parent(node)
        if isinstance(enclosing, ast.SetComp):
            return
        if isinstance(enclosing, ast.GeneratorExp) and _consumed_order_insensitively(
            enclosing, ctx
        ):
            return
        yield _r004_finding(node.iter, value, ctx)
        return
    assert isinstance(node, ast.Call)
    yield from _call_effect_findings(node, ctx, "R004")
    yield from _r004_argument_findings(node, ctx)
    func = node.func
    arg = node.args[0] if node.args else None
    if arg is None:
        return
    value = _unordered_value(arg, ctx)
    if value is None:
        return
    is_conversion = isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS
    is_join = isinstance(func, ast.Attribute) and func.attr == "join"
    if (is_conversion or is_join) and not _consumed_order_insensitively(node, ctx):
        yield _r004_finding(arg, value, ctx)


# --- R005: module-level mutable state -----------------------------------------

#: Files allowed to rebind module globals: the PID-pinned hose cache (built
#: to detect and survive process-pool forks) and the obs tracer facade
#: (explicitly per-process; worker traces cross the pool via capture/attach).
_R005_WHITELIST = ("repro/core/hose.py", "repro/obs/tracer.py")


@rule(
    "R005",
    title="no module-level mutable state",
    invariant=(
        "worker processes must not inherit or race on module state; the "
        "PID-pinned hose cache is the only blessed module-level cache and "
        "the obs tracer facade the only blessed process-local singleton"
    ),
    nodes=(ast.Global, ast.Call),
    exempt=_R005_WHITELIST,
)
def no_module_state(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.Call):
        yield from _call_effect_findings(node, ctx, "R005")
        return
    assert isinstance(node, ast.Global)
    for name in node.names:
        yield ctx.finding(
            node,
            "R005",
            f"rebinding module-level {name!r} breaks process-pool isolation; "
            "only the PID-pinned hose cache (repro.core.hose) and the obs "
            "tracer facade may hold module state",
        )


# --- R006: keyword-only config params ----------------------------------------

#: Entry-point names whose defaulted parameters must be keyword-only.
_R006_NAMES = {"get_design", "register_design"}


@rule(
    "R006",
    title="planner config params keyword-only",
    invariant=(
        "public plan_*/design-registry signatures grow options over time; "
        "keyword-only config keeps call sites unambiguous and lets params "
        "reorder without silently changing meaning"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def keyword_only_config(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    name = node.name
    if name.startswith("_"):
        return
    if not (name.startswith("plan_") or name in _R006_NAMES):
        return
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    defaulted = positional[len(positional) - len(args.defaults) :]
    # The autofix inserts "*, " before the first defaulted parameter. Only
    # safe when no *args / positional-only / existing keyword-only params
    # complicate the signature — anything fancier needs a human.
    fixable = (
        args.vararg is None and not args.posonlyargs and not args.kwonlyargs
    )
    for index, param in enumerate(defaulted):
        fix = None
        if fixable and index == 0:
            anchor = ctx.offset_of(param.lineno, param.col_offset)
            fix = TextEdit(anchor, anchor, "*, ")
        yield ctx.finding(
            param,
            "R006",
            f"config parameter {param.arg!r} of public entry point {name}() "
            "must be keyword-only (move it after '*')",
            fix=fix,
        )


# --- R007: unit-suffix mixing -------------------------------------------------

#: Unit pairs whose +/- arithmetic is the legitimate link-budget idiom:
#: absolute power (dBm) shifted by a relative gain/loss (dB).
_LINK_BUDGET_PAIR = frozenset({"db", "dbm"})


def _operand_unit(expr: ast.expr, ctx: FileContext) -> str | None:
    """The unit tag of an operand: declared suffix first, then flow."""
    if isinstance(expr, ast.Name):
        suffix = unit_suffix(expr.id)
        if suffix is not None:
            return suffix
    elif isinstance(expr, ast.Attribute):
        suffix = unit_suffix(expr.attr)
        if suffix is not None:
            return suffix
    return ctx.value_of(expr).unit


def _unit_origin_note(expr: ast.expr, expr_unit: str, ctx: FileContext) -> str | None:
    """Where an operand's unit tag came from, when it crossed a call.

    ``dist_km() + loss_db`` flags like any other mix, but the resolved
    return summary knows the km came out of ``dist_km()`` — quoting that
    saves the reader a hop when the operand is an alias or a call chain.
    """
    value = ctx.value_of(expr)
    if value.unit == expr_unit and value.origin and value.origin.startswith("via "):
        return f"'_{expr_unit}' {value.origin}"
    return None


def _mixing_message(left_unit: str, right_unit: str) -> str:
    left_dim = unit_dimension(left_unit)
    right_dim = unit_dimension(right_unit)
    if left_dim != right_dim:
        scale = f"{left_dim} with {right_dim} never makes sense"
    else:
        scale = "convert through repro.units first"
    return (
        f"mixing unit tags '_{left_unit}' and '_{right_unit}' in one "
        f"expression; {scale}"
    )


@rule(
    "R007",
    title="no unit-tag mixing",
    invariant=(
        "distances are km, times are seconds, rates are Gbps, powers are "
        "dBm throughout; adding or comparing quantities with different "
        "unit tags — directly or through an alias — bypasses the "
        "repro.units conversion helpers"
    ),
    nodes=(ast.BinOp, ast.Compare),
)
def no_unit_mixing(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        operand_pairs = [(node.left, node.right)]
        link_budget_ok = True
    else:
        assert isinstance(node, ast.Compare)
        chain = [node.left, *node.comparators]
        operand_pairs = list(zip(chain, chain[1:]))
        # Comparing a relative dB level against an absolute dBm power is
        # a bug even though their +/- arithmetic is the budget idiom.
        link_budget_ok = False
    for left, right in operand_pairs:
        left_unit = _operand_unit(left, ctx)
        right_unit = _operand_unit(right, ctx)
        if not left_unit or not right_unit or left_unit == right_unit:
            continue
        if link_budget_ok and {left_unit, right_unit} == _LINK_BUDGET_PAIR:
            continue
        message = _mixing_message(left_unit, right_unit)
        notes = [
            note
            for operand, operand_unit in ((left, left_unit), (right, right_unit))
            if (note := _unit_origin_note(operand, operand_unit, ctx)) is not None
        ]
        if notes:
            message += " (" + "; ".join(notes) + ")"
        yield ctx.finding(node, "R007", message)


# --- R008: atomic writes in repro.store ---------------------------------------

#: ``open()`` mode characters that make a call a write.
_WRITE_MODE_CHARS = set("wax+")

#: Method names that write a file in one call.
_WRITE_METHODS = {"write_text", "write_bytes"}


def _iter_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``scope`` that belong to its own function scope.

    Nested function bodies are skipped — they are dispatched to the rule
    as scopes of their own — while classes and other compound statements
    are traversed.
    """
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _iter_scope(child)


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call, or None if absent/dynamic."""
    mode: ast.expr | None = call.args[1] if len(call.args) >= 2 else None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule(
    "R008",
    title="atomic writes in repro.store",
    invariant=(
        "every artifact-store write lands via a same-directory tmp file "
        "published with os.replace, so concurrent readers observe either "
        "the old file or the complete new one — never a torn blob"
    ),
    nodes=(ast.Module, ast.FunctionDef, ast.AsyncFunctionDef),
)
def atomic_store_writes(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if "repro/store" not in ctx.module_path:
        return
    writes: list[tuple[ast.Call, str]] = []
    for child in _iter_scope(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(child)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                writes.append((child, f"open(..., {mode!r})"))
        elif isinstance(func, ast.Attribute):
            if func.attr in _WRITE_METHODS:
                writes.append((child, f".{func.attr}(...)"))
            elif func.attr == "replace" and _dotted_root(func) == "os":
                # The scope publishes through os.replace: its tmp-file
                # writes are the atomic idiom, not torn-write hazards.
                return
    for call, label in writes:
        yield ctx.finding(
            call,
            "R008",
            f"{label} in repro.store without os.replace in the same scope; "
            "write a same-directory tmp file and publish it with os.replace",
        )


# --- R009: unordered data escaping into serialization --------------------------

#: Callables whose output bytes depend on input iteration order: the
#: store's canonical encoding and key construction (repro.store.canonical
#: / repro.store.keys), lossless plan serialization, and raw json.dumps.
#: canonical_json sorts *dict keys* but a set value crashes it and a
#: list-built-from-a-set silently changes the digest run to run.
_SERIALIZATION_SINKS = frozenset(
    {
        "canonical_json",
        "digest",
        "sha256_hex",
        "artifact_key",
        "plan_key",
        "plan_to_dict",
        "plan_to_json",
        "topology_to_dict",
        "dumps",
    }
)


@rule(
    "R009",
    title="no unordered data into serialization",
    invariant=(
        "cache keys and serialized artifacts are byte-identical across "
        "runs and PYTHONHASHSEED; any set — even buried in a dict passed "
        "through an alias — that reaches canonical_json/digest/plan_key "
        "makes the same plan hash differently on the next run"
    ),
    nodes=(ast.Call,),
)
def no_unordered_serialization(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    fname = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    if fname not in _SERIALIZATION_SINKS:
        return
    arguments = [*node.args, *(kw.value for kw in node.keywords)]
    for arg in arguments:
        value = _unordered_value(arg, ctx)
        if value is not None:
            yield ctx.finding(
                arg,
                "R009",
                f"unordered value reaches serialization sink {fname}()"
                f"{value.describe()}; its iteration order would leak into "
                "canonical bytes — sort it into a list first",
                fix=_sorted_wrap_fix(arg, value, ctx),
            )


# --- R010: return unit consistent with the function's name suffix --------------


@rule(
    "R010",
    title="return unit matches name suffix",
    invariant=(
        "a function named *_km returns kilometres — callers convert based "
        "on the suffix alone, so a body that returns a value tagged with a "
        "different unit silently corrupts every downstream computation"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def return_unit_matches_suffix(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    declared = unit_suffix(node.name)
    if declared is None:
        return
    for return_stmt, value in ctx.returns_of(node):
        if value.unit is None or value.unit == declared:
            continue
        yield ctx.finding(
            return_stmt,
            "R010",
            f"{node.name}() is suffixed '_{declared}' but this return is "
            f"tagged '_{value.unit}'; convert through repro.units or "
            "rename the function",
        )


# --- R011: obs span/counter discipline ------------------------------------------

#: Span types that must never be constructed directly outside repro.obs:
#: hand-built records bypass the tracer's nesting stack and the disabled-
#: tracing NULL_SPAN fast path.
_SPAN_TYPES = frozenset({"Span", "SpanRecord"})


@rule(
    "R011",
    title="obs span/counter discipline",
    invariant=(
        "trace trees are well-nested and counter namespaces deterministic: "
        "spans come from tracer.span()/obs.span() and are entered with "
        "'with'; counter keys never embed unordered iteration, or shard "
        "merges stop being comparable across runs"
    ),
    nodes=(ast.Call,),
    exempt=("repro/obs/",),
)
def obs_span_discipline(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    fname = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    if fname in _SPAN_TYPES:
        yield ctx.finding(
            node,
            "R011",
            f"direct {fname}(...) construction bypasses the tracer facade; "
            "open spans with obs.span()/tracer.span() so nesting and the "
            "disabled fast path hold",
        )
        return
    if fname == "span":
        # A span statement that is never entered records nothing: the
        # duration only exists between __enter__ and __exit__.
        parent = ctx.parent(node)
        if isinstance(parent, ast.Expr):
            yield ctx.finding(
                node,
                "R011",
                "span(...) is never entered, so it records nothing; use "
                "'with ... span(...):' around the timed block",
            )
        return
    if fname == "incr" and node.args:
        key = node.args[0]
        value = _unordered_value(key, ctx)
        if value is not None:
            yield ctx.finding(
                key,
                "R011",
                f"counter key built from unordered iteration{value.describe()};"
                " keys must be deterministic or shard merges diverge run to "
                "run",
            )


# --- R012-R014: pool-submitted callable safety ----------------------------------

#: Backend method names that submit their first argument to a worker pool.
_SUBMIT_METHODS = {"run_chunks": 0, "iter_chunks": 0, "submit": 0}

#: Free functions that submit one of their arguments to a worker pool.
_SUBMIT_FUNCS = {"map_in_chunks": 1}

#: The engine owns the pool: it forwards already-checked callables into
#: ``pool.submit`` and wraps them for tracing, which is not a submission
#: decision of its own.
_POOL_EXEMPT = ("repro/core/engine.py",)

#: Effects that make pool work nondeterministic per chunk (R013).
_POOL_DETERMINISM = ("global_rng", "wall_clock", "module_state")

#: Effects that make a chunk function impure (R014).
_POOL_PURITY = ("io", "unordered_iter")


def _unwrap_partial(expr: ast.expr) -> ast.expr:
    """The callable inside ``functools.partial(fn, ...)``, else ``expr``."""
    if isinstance(expr, ast.Call):
        func = expr.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == "partial" and expr.args:
            return _unwrap_partial(expr.args[0])
    return expr


def _submitted_callable(node: ast.Call) -> tuple[ast.expr, str] | None:
    """(callable expr, submit-site label) when this call feeds a pool.

    Matches the repo's submission shapes — ``backend.run_chunks(fn, ...)``,
    ``backend.iter_chunks(fn, ...)``, ``pool.submit(fn, ...)``, and
    ``map_in_chunks(backend, fn, ...)`` — and unwraps ``functools.partial``
    so a partially-applied chunk function is still checked.
    """
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
        index = _SUBMIT_METHODS[func.attr]
        label = f".{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in _SUBMIT_FUNCS:
        index = _SUBMIT_FUNCS[func.id]
        label = f"{func.id}()"
    else:
        return None
    if index >= len(node.args) or any(
        isinstance(arg, ast.Starred) for arg in node.args[: index + 1]
    ):
        return None
    return _unwrap_partial(node.args[index]), label


def _submitted_summary(
    expr: ast.expr, ctx: FileContext
) -> tuple[str, FunctionSummary] | None:
    """(fid, summary) of a project function passed by reference, if any."""
    if ctx.project is None or ctx.syntax is None:
        return None
    fid = ctx.resolve_callable(expr, ctx.scope_qualname(expr))
    if fid is None:
        return None
    summary = ctx.project.summary_of(fid)
    if summary is None:
        return None
    return fid, summary


def _worker_safe_findings(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    ctx: FileContext,
    effect_names: tuple[str, ...],
    rule_id: str,
) -> Iterator[Finding]:
    """``@worker_safe`` declarations are verified, not trusted.

    The decorator is the author's claim that a function may run in pool
    workers; the transitive effect closure is the proof obligation.
    """
    if ctx.project is None or ctx.syntax is None:
        return
    qualname = ctx.syntax.node_qualnames.get(node)
    if qualname is None:
        return
    fid = function_id(ctx.syntax.path, qualname)
    summary = ctx.project.summary_of(fid)
    if summary is None or not summary.worker_safe:
        return
    for effect in effect_names:
        origin = ctx.project.effects_of(fid).get(effect)
        if origin is None:
            continue
        yield ctx.finding(
            node,
            rule_id,
            f"`{node.name}()` is declared @worker_safe but "
            f"{EFFECT_LABELS[effect]} ({chain_text(origin)}); fix the "
            "effect or drop the decorator",
        )


@rule(
    "R012",
    title="pool submissions picklable",
    invariant=(
        "the process-pool backends pickle the submitted callable into "
        "spawned workers; a lambda or nested function fails at pickle "
        "time — inside the pool, far from the call site — so it is "
        "rejected at review time instead"
    ),
    nodes=(ast.Call,),
    exempt=_POOL_EXEMPT,
)
def pool_picklable(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    submitted = _submitted_callable(node)
    if submitted is None:
        return
    expr, label = submitted
    if isinstance(expr, ast.Lambda):
        yield ctx.finding(
            expr,
            "R012",
            f"lambda submitted to {label} cannot be pickled into spawned "
            "pool workers; define a module-level function",
        )
        return
    resolved = _submitted_summary(expr, ctx)
    if resolved is not None and resolved[1].is_nested:
        yield ctx.finding(
            expr,
            "R012",
            f"nested function `{resolved[1].name}()` submitted to {label} "
            "cannot be pickled into spawned pool workers; move it to "
            "module level",
        )


@rule(
    "R013",
    title="pool submissions deterministic",
    invariant=(
        "chunked execution must produce the same plan at every worker "
        "count; a submitted callable that reaches global RNG state, the "
        "wall clock, or module state makes chunk results depend on which "
        "worker ran them and in what order"
    ),
    nodes=(ast.Call, ast.FunctionDef, ast.AsyncFunctionDef),
    exempt=_POOL_EXEMPT,
)
def pool_deterministic(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield from _worker_safe_findings(node, ctx, _POOL_DETERMINISM, "R013")
        return
    assert isinstance(node, ast.Call)
    submitted = _submitted_callable(node)
    if submitted is None or ctx.project is None:
        return
    expr, label = submitted
    resolved = _submitted_summary(expr, ctx)
    if resolved is None:
        return
    fid, summary = resolved
    for effect in _POOL_DETERMINISM:
        origin = ctx.project.effects_of(fid).get(effect)
        if origin is None:
            continue
        yield ctx.finding(
            expr,
            "R013",
            f"`{summary.name}()` submitted to {label} "
            f"{EFFECT_LABELS[effect]} ({chain_text(origin)}); pool work "
            "must be deterministic per chunk",
        )


@rule(
    "R014",
    title="pool chunk functions pure",
    invariant=(
        "chunk functions run concurrently in spawned workers; hidden "
        "filesystem I/O races between workers, and unordered iteration "
        "inside a chunk ties the merged plan to each worker's hash "
        "seeding"
    ),
    nodes=(ast.Call, ast.FunctionDef, ast.AsyncFunctionDef),
    exempt=_POOL_EXEMPT,
)
def pool_pure(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield from _worker_safe_findings(node, ctx, _POOL_PURITY, "R014")
        return
    assert isinstance(node, ast.Call)
    submitted = _submitted_callable(node)
    if submitted is None or ctx.project is None:
        return
    expr, label = submitted
    resolved = _submitted_summary(expr, ctx)
    if resolved is None:
        return
    fid, summary = resolved
    for effect in _POOL_PURITY:
        origin = ctx.project.effects_of(fid).get(effect)
        if origin is None:
            continue
        yield ctx.finding(
            expr,
            "R014",
            f"`{summary.name}()` submitted to {label} "
            f"{EFFECT_LABELS[effect]} ({chain_text(origin)}); chunk "
            "functions must not touch the filesystem or iterate "
            "unordered data",
        )
