"""The reprolint domain rules (R001-R011).

Each rule guards one invariant the planner's correctness rests on — the
properties the parity, golden-count, and serialization-determinism tests
probe dynamically, enforced here at review time instead of as flaky test
failures:

=====  ==========================================================
R001   no global RNG state (seeded instances only)
R002   no wall-clock reads outside ``repro.obs``
R003   no float ``==``/``!=`` on unit-tagged quantities
R004   no iteration over unordered collections without ``sorted()``
R005   no module-level mutable state outside the whitelist
R006   public planner entry points keep config params keyword-only
R007   no arithmetic/comparison mixing different unit tags
R008   no non-atomic file writes inside ``repro.store``
R009   no unordered value reaching a serialization/store-key sink
R010   function return unit matches its ``_km``/``_db`` name suffix
R011   obs spans entered via the facade; counter keys deterministic
=====  ==========================================================

Since v2 the rules are *flow-sensitive*: the driver's pass 1
(:mod:`repro.lint.flow`) propagates unit and orderedness tags through
assignments, branches, comprehensions, and returns, so
``s = set(...); for x in s`` is just as visible to R004 as the literal
form, and R007 catches ``x = span_km; y = x + loss_db`` through the
alias. The analysis stays intra-procedural — values crossing function
boundaries reset to unknown — which keeps it one walk per file and makes
every finding explainable by code within the flagged function. Findings
that are intentional carry a ``# repro: noqa-RXXX`` suppression, which
matches anywhere in the flagged statement's line span.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.flow import (
    AbstractValue,
    Orderedness,
    unit_dimension,
    unit_suffix,
)
from repro.lint.registry import FileContext, rule


def _dotted_root(node: ast.expr) -> str | None:
    """The leftmost name of a dotted attribute chain, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# --- R001: global RNG state ---------------------------------------------------

#: ``random`` module attributes that do NOT touch the shared module RNG.
_RANDOM_OK = {"Random"}

#: ``numpy.random`` attributes that construct seeded, instance-local state.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


@rule(
    "R001",
    title="no global RNG state",
    invariant=(
        "scenario enumeration and synthetic regions must replay bit-identically "
        "from an explicit seed; the shared module RNG is mutated by anyone"
    ),
    nodes=(ast.Attribute, ast.ImportFrom),
)
def no_global_rng(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.ImportFrom):
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_OK:
                    yield ctx.finding(
                        node,
                        "R001",
                        f"'from random import {alias.name}' exposes the shared "
                        "module RNG; instantiate a seeded random.Random instead",
                    )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    yield ctx.finding(
                        node,
                        "R001",
                        f"'from numpy.random import {alias.name}' uses numpy's "
                        "global RNG; use numpy.random.default_rng(seed)",
                    )
        return
    assert isinstance(node, ast.Attribute)
    value = node.value
    if (
        isinstance(value, ast.Name)
        and value.id == "random"
        and node.attr not in _RANDOM_OK
    ):
        yield ctx.finding(
            node,
            "R001",
            f"random.{node.attr} mutates the shared module RNG; "
            "use a seeded random.Random instance",
        )
    elif (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
        and node.attr not in _NP_RANDOM_OK
    ):
        yield ctx.finding(
            node,
            "R001",
            f"{value.value.id}.random.{node.attr} mutates numpy's global RNG; "
            "use numpy.random.default_rng(seed)",
        )


# --- R002: wall-clock reads ---------------------------------------------------

#: ``time`` module functions that read the wall clock.
_TIME_WALL = {"time", "time_ns", "ctime", "localtime", "gmtime", "asctime"}

#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_WALL = {"now", "utcnow", "today"}


@rule(
    "R002",
    title="no wall-clock reads",
    invariant=(
        "plan serialization is environment-invariant and all durations come "
        "from the monotonic clock owned by repro.obs; wall-clock reads leak "
        "the run environment into outputs and go backwards under NTP steps"
    ),
    nodes=(ast.Attribute, ast.ImportFrom),
    exempt=("repro/obs/",),
)
def no_wall_clock(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.ImportFrom):
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_WALL:
                    yield ctx.finding(
                        node,
                        "R002",
                        f"'from time import {alias.name}' reads the wall clock; "
                        "use time.monotonic()/perf_counter() (repro.obs owns timing)",
                    )
        return
    assert isinstance(node, ast.Attribute)
    if (
        isinstance(node.value, ast.Name)
        and node.value.id == "time"
        and node.attr in _TIME_WALL
    ):
        yield ctx.finding(
            node,
            "R002",
            f"time.{node.attr} reads the wall clock; use "
            "time.monotonic()/perf_counter() (repro.obs owns timing)",
        )
    elif node.attr in _DATETIME_WALL and _dotted_root(node) in ("datetime", "date"):
        yield ctx.finding(
            node,
            "R002",
            f"{_dotted_root(node)}.{node.attr} reads the wall clock; planner "
            "outputs must not depend on when they were produced",
        )


# --- R003: float equality on quantities --------------------------------------


def _quantity_leaves(node: ast.expr) -> Iterator[ast.expr]:
    """Leaf operands of an arithmetic expression (through BinOp/UnaryOp)."""
    if isinstance(node, ast.BinOp):
        yield from _quantity_leaves(node.left)
        yield from _quantity_leaves(node.right)
    elif isinstance(node, ast.UnaryOp):
        yield from _quantity_leaves(node.operand)
    else:
        yield node


def _quantity_label(leaf: ast.expr) -> str:
    if isinstance(leaf, ast.Name):
        return leaf.id
    if isinstance(leaf, ast.Attribute):
        return leaf.attr
    if isinstance(leaf, ast.Constant):
        return repr(leaf.value)
    return ast.unparse(leaf)


def _is_float_quantity(leaf: ast.expr, ctx: FileContext) -> bool:
    """A float literal, a unit-suffixed name, or a flow-tagged quantity."""
    if isinstance(leaf, ast.Constant):
        return isinstance(leaf.value, float)
    if isinstance(leaf, ast.Name) and unit_suffix(leaf.id) is not None:
        return True
    if isinstance(leaf, ast.Attribute) and unit_suffix(leaf.attr) is not None:
        return True
    # Flow-sensitive: an alias of a quantity is a quantity.
    return ctx.value_of(leaf).unit is not None


@rule(
    "R003",
    title="no float equality on quantities",
    invariant=(
        "capacity/length comparisons must be tolerance-based (math.isclose) "
        "or integer-valued; float == breaks under the engine's chunked "
        "re-association and makes plans differ across platforms"
    ),
    nodes=(ast.Compare,),
)
def no_float_equality(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Compare)
    if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
        return
    operands = [node.left, *node.comparators]
    for operand in operands:
        for leaf in _quantity_leaves(operand):
            if _is_float_quantity(leaf, ctx):
                value = ctx.value_of(leaf)
                yield ctx.finding(
                    node,
                    "R003",
                    f"float equality on quantity {_quantity_label(leaf)!r}"
                    f"{value.describe()}; use math.isclose or an integer "
                    "unit (fibers, wavelengths)",
                )
                return


# --- R004: unordered iteration ------------------------------------------------

_SET_ALGEBRA_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: Builtins whose result order follows the iteration order of their input.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Consumers for which input order provably cannot matter.
_ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
}


def _syntactically_unordered(expr: ast.expr) -> bool:
    """Whether ``expr`` is an unordered set by shape alone (no flow)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _syntactically_unordered(func.value)
        ):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_ALGEBRA_OPS):
        return _syntactically_unordered(expr.left) or _syntactically_unordered(
            expr.right
        )
    return False


def _unordered_value(expr: ast.expr, ctx: FileContext) -> AbstractValue | None:
    """The expression's abstract value if it may iterate nondeterministically.

    Flow-sensitive: ``s = set(...); for x in s`` resolves through the
    symbol table; the syntactic shapes remain as a fallback so the rule
    keeps working even on expressions the flow pass did not reach.
    """
    value = ctx.value_of(expr)
    if value.is_unordered:
        return value
    if _syntactically_unordered(expr):
        return AbstractValue(ordered=Orderedness.UNORDERED)
    return None


def _consumed_order_insensitively(node: ast.AST, ctx: FileContext) -> bool:
    """Whether ``node``'s enclosing expression discards iteration order."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE_CALLS
    )


_R004_MSG = (
    "iteration order of an unordered collection is undefined across "
    "processes and runs; wrap in sorted(...) before it reaches "
    "serialization or scenario enumeration"
)


def _r004_finding(
    node: ast.AST, value: AbstractValue, ctx: FileContext
) -> Finding:
    return ctx.finding(node, "R004", _R004_MSG + value.describe())


@rule(
    "R004",
    title="no unordered iteration",
    invariant=(
        "serialized plans and enumerated scenarios are byte-identical across "
        "runs, worker counts, and PYTHONHASHSEED; set iteration order is none "
        "of those — even through an alias"
    ),
    nodes=(ast.For, ast.AsyncFor, ast.comprehension, ast.Call),
)
def no_unordered_iteration(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        value = _unordered_value(node.iter, ctx)
        if value is not None:
            yield _r004_finding(node.iter, value, ctx)
        return
    if isinstance(node, ast.comprehension):
        value = _unordered_value(node.iter, ctx)
        if value is None:
            return
        # The enclosing comprehension decides whether order can matter: a
        # SetComp's own result is unordered (flagged where *it* is consumed),
        # and a generator fed straight into sorted()/sum()/... is fine.
        enclosing = ctx.parent(node)
        if isinstance(enclosing, ast.SetComp):
            return
        if isinstance(enclosing, ast.GeneratorExp) and _consumed_order_insensitively(
            enclosing, ctx
        ):
            return
        yield _r004_finding(node.iter, value, ctx)
        return
    assert isinstance(node, ast.Call)
    func = node.func
    arg = node.args[0] if node.args else None
    if arg is None:
        return
    value = _unordered_value(arg, ctx)
    if value is None:
        return
    is_conversion = isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS
    is_join = isinstance(func, ast.Attribute) and func.attr == "join"
    if (is_conversion or is_join) and not _consumed_order_insensitively(node, ctx):
        yield _r004_finding(arg, value, ctx)


# --- R005: module-level mutable state -----------------------------------------

#: Files allowed to rebind module globals: the PID-pinned hose cache (built
#: to detect and survive process-pool forks) and the obs tracer facade
#: (explicitly per-process; worker traces cross the pool via capture/attach).
_R005_WHITELIST = ("repro/core/hose.py", "repro/obs/tracer.py")


@rule(
    "R005",
    title="no module-level mutable state",
    invariant=(
        "worker processes must not inherit or race on module state; the "
        "PID-pinned hose cache is the only blessed module-level cache and "
        "the obs tracer facade the only blessed process-local singleton"
    ),
    nodes=(ast.Global,),
    exempt=_R005_WHITELIST,
)
def no_module_state(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Global)
    for name in node.names:
        yield ctx.finding(
            node,
            "R005",
            f"rebinding module-level {name!r} breaks process-pool isolation; "
            "only the PID-pinned hose cache (repro.core.hose) and the obs "
            "tracer facade may hold module state",
        )


# --- R006: keyword-only config params ----------------------------------------

#: Entry-point names whose defaulted parameters must be keyword-only.
_R006_NAMES = {"get_design", "register_design"}


@rule(
    "R006",
    title="planner config params keyword-only",
    invariant=(
        "public plan_*/design-registry signatures grow options over time; "
        "keyword-only config keeps call sites unambiguous and lets params "
        "reorder without silently changing meaning"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def keyword_only_config(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    name = node.name
    if name.startswith("_"):
        return
    if not (name.startswith("plan_") or name in _R006_NAMES):
        return
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    defaulted = positional[len(positional) - len(args.defaults) :]
    for param in defaulted:
        yield ctx.finding(
            param,
            "R006",
            f"config parameter {param.arg!r} of public entry point {name}() "
            "must be keyword-only (move it after '*')",
        )


# --- R007: unit-suffix mixing -------------------------------------------------

#: Unit pairs whose +/- arithmetic is the legitimate link-budget idiom:
#: absolute power (dBm) shifted by a relative gain/loss (dB).
_LINK_BUDGET_PAIR = frozenset({"db", "dbm"})


def _operand_unit(expr: ast.expr, ctx: FileContext) -> str | None:
    """The unit tag of an operand: declared suffix first, then flow."""
    if isinstance(expr, ast.Name):
        suffix = unit_suffix(expr.id)
        if suffix is not None:
            return suffix
    elif isinstance(expr, ast.Attribute):
        suffix = unit_suffix(expr.attr)
        if suffix is not None:
            return suffix
    return ctx.value_of(expr).unit


def _mixing_message(left_unit: str, right_unit: str) -> str:
    left_dim = unit_dimension(left_unit)
    right_dim = unit_dimension(right_unit)
    if left_dim != right_dim:
        scale = f"{left_dim} with {right_dim} never makes sense"
    else:
        scale = "convert through repro.units first"
    return (
        f"mixing unit tags '_{left_unit}' and '_{right_unit}' in one "
        f"expression; {scale}"
    )


@rule(
    "R007",
    title="no unit-tag mixing",
    invariant=(
        "distances are km, times are seconds, rates are Gbps, powers are "
        "dBm throughout; adding or comparing quantities with different "
        "unit tags — directly or through an alias — bypasses the "
        "repro.units conversion helpers"
    ),
    nodes=(ast.BinOp, ast.Compare),
)
def no_unit_mixing(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        operand_pairs = [(node.left, node.right)]
        link_budget_ok = True
    else:
        assert isinstance(node, ast.Compare)
        chain = [node.left, *node.comparators]
        operand_pairs = list(zip(chain, chain[1:]))
        # Comparing a relative dB level against an absolute dBm power is
        # a bug even though their +/- arithmetic is the budget idiom.
        link_budget_ok = False
    for left, right in operand_pairs:
        left_unit = _operand_unit(left, ctx)
        right_unit = _operand_unit(right, ctx)
        if not left_unit or not right_unit or left_unit == right_unit:
            continue
        if link_budget_ok and {left_unit, right_unit} == _LINK_BUDGET_PAIR:
            continue
        yield ctx.finding(node, "R007", _mixing_message(left_unit, right_unit))


# --- R008: atomic writes in repro.store ---------------------------------------

#: ``open()`` mode characters that make a call a write.
_WRITE_MODE_CHARS = set("wax+")

#: Method names that write a file in one call.
_WRITE_METHODS = {"write_text", "write_bytes"}


def _iter_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``scope`` that belong to its own function scope.

    Nested function bodies are skipped — they are dispatched to the rule
    as scopes of their own — while classes and other compound statements
    are traversed.
    """
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _iter_scope(child)


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call, or None if absent/dynamic."""
    mode: ast.expr | None = call.args[1] if len(call.args) >= 2 else None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule(
    "R008",
    title="atomic writes in repro.store",
    invariant=(
        "every artifact-store write lands via a same-directory tmp file "
        "published with os.replace, so concurrent readers observe either "
        "the old file or the complete new one — never a torn blob"
    ),
    nodes=(ast.Module, ast.FunctionDef, ast.AsyncFunctionDef),
)
def atomic_store_writes(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    if "repro/store" not in ctx.module_path:
        return
    writes: list[tuple[ast.Call, str]] = []
    for child in _iter_scope(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(child)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                writes.append((child, f"open(..., {mode!r})"))
        elif isinstance(func, ast.Attribute):
            if func.attr in _WRITE_METHODS:
                writes.append((child, f".{func.attr}(...)"))
            elif func.attr == "replace" and _dotted_root(func) == "os":
                # The scope publishes through os.replace: its tmp-file
                # writes are the atomic idiom, not torn-write hazards.
                return
    for call, label in writes:
        yield ctx.finding(
            call,
            "R008",
            f"{label} in repro.store without os.replace in the same scope; "
            "write a same-directory tmp file and publish it with os.replace",
        )


# --- R009: unordered data escaping into serialization --------------------------

#: Callables whose output bytes depend on input iteration order: the
#: store's canonical encoding and key construction (repro.store.canonical
#: / repro.store.keys), lossless plan serialization, and raw json.dumps.
#: canonical_json sorts *dict keys* but a set value crashes it and a
#: list-built-from-a-set silently changes the digest run to run.
_SERIALIZATION_SINKS = frozenset(
    {
        "canonical_json",
        "digest",
        "sha256_hex",
        "artifact_key",
        "plan_key",
        "plan_to_dict",
        "plan_to_json",
        "topology_to_dict",
        "dumps",
    }
)


@rule(
    "R009",
    title="no unordered data into serialization",
    invariant=(
        "cache keys and serialized artifacts are byte-identical across "
        "runs and PYTHONHASHSEED; any set — even buried in a dict passed "
        "through an alias — that reaches canonical_json/digest/plan_key "
        "makes the same plan hash differently on the next run"
    ),
    nodes=(ast.Call,),
)
def no_unordered_serialization(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    fname = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    if fname not in _SERIALIZATION_SINKS:
        return
    arguments = [*node.args, *(kw.value for kw in node.keywords)]
    for arg in arguments:
        value = _unordered_value(arg, ctx)
        if value is not None:
            yield ctx.finding(
                arg,
                "R009",
                f"unordered value reaches serialization sink {fname}()"
                f"{value.describe()}; its iteration order would leak into "
                "canonical bytes — sort it into a list first",
            )


# --- R010: return unit consistent with the function's name suffix --------------


@rule(
    "R010",
    title="return unit matches name suffix",
    invariant=(
        "a function named *_km returns kilometres — callers convert based "
        "on the suffix alone, so a body that returns a value tagged with a "
        "different unit silently corrupts every downstream computation"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def return_unit_matches_suffix(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    declared = unit_suffix(node.name)
    if declared is None:
        return
    for return_stmt, value in ctx.returns_of(node):
        if value.unit is None or value.unit == declared:
            continue
        yield ctx.finding(
            return_stmt,
            "R010",
            f"{node.name}() is suffixed '_{declared}' but this return is "
            f"tagged '_{value.unit}'; convert through repro.units or "
            "rename the function",
        )


# --- R011: obs span/counter discipline ------------------------------------------

#: Span types that must never be constructed directly outside repro.obs:
#: hand-built records bypass the tracer's nesting stack and the disabled-
#: tracing NULL_SPAN fast path.
_SPAN_TYPES = frozenset({"Span", "SpanRecord"})


@rule(
    "R011",
    title="obs span/counter discipline",
    invariant=(
        "trace trees are well-nested and counter namespaces deterministic: "
        "spans come from tracer.span()/obs.span() and are entered with "
        "'with'; counter keys never embed unordered iteration, or shard "
        "merges stop being comparable across runs"
    ),
    nodes=(ast.Call,),
    exempt=("repro/obs/",),
)
def obs_span_discipline(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    func = node.func
    fname = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else None
    )
    if fname in _SPAN_TYPES:
        yield ctx.finding(
            node,
            "R011",
            f"direct {fname}(...) construction bypasses the tracer facade; "
            "open spans with obs.span()/tracer.span() so nesting and the "
            "disabled fast path hold",
        )
        return
    if fname == "span":
        # A span statement that is never entered records nothing: the
        # duration only exists between __enter__ and __exit__.
        parent = ctx.parent(node)
        if isinstance(parent, ast.Expr):
            yield ctx.finding(
                node,
                "R011",
                "span(...) is never entered, so it records nothing; use "
                "'with ... span(...):' around the timed block",
            )
        return
    if fname == "incr" and node.args:
        key = node.args[0]
        value = _unordered_value(key, ctx)
        if value is not None:
            yield ctx.finding(
                key,
                "R011",
                f"counter key built from unordered iteration{value.describe()};"
                " keys must be deterministic or shard merges diverge run to "
                "run",
            )
