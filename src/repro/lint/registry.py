"""Rule registry and per-file analysis context for reprolint.

A rule is a generator function registered for specific AST node types; the
driver (:mod:`repro.lint.driver`) walks each file's tree once and dispatches
every node to the rules interested in its type. Rules therefore stay O(1)
per node and a full-repo pass stays well under the bench budget.

Rules may declare ``exempt`` path fragments: files whose normalized path
contains any fragment are skipped for that rule (e.g. ``repro/obs/`` owns
the wall clock, so R002 does not apply there).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lint.findings import Finding, TextEdit
from repro.lint.flow import UNKNOWN_VALUE, AbstractValue, FlowInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.callgraph import FileSyntax
    from repro.lint.project import ProjectContext

#: A rule body: yields findings for one dispatched node.
CheckFn = Callable[[ast.AST, "FileContext"], Iterator[Finding]]


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    #: Display path, as given by the caller (used in findings).
    path: str
    #: Posix-normalized path used for rule exemption matching.
    module_path: str
    #: Raw source text of the file.
    source: str
    #: Child node -> parent node, for rules that need enclosing context.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: Flow facts from the driver's pass 1 (:mod:`repro.lint.flow`).
    flow: FlowInfo | None = None
    #: This file's call-graph syntax (v3; live-parsed instance).
    syntax: "FileSyntax | None" = None
    #: Whole-project summaries/effects (v3; None in per-file-only runs).
    project: "ProjectContext | None" = None
    #: Lazy char-offset table for building :class:`TextEdit` fixes.
    _line_starts: list[int] | None = field(default=None, repr=False)

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        *,
        fix: TextEdit | None = None,
    ) -> Finding:
        """A finding anchored at ``node``'s position in this file."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(self.path, line, col, rule_id, message, fix=fix)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (None at module level)."""
        return self.parents.get(node)

    def value_of(self, node: ast.AST) -> AbstractValue:
        """The flow-inferred abstract value of an expression."""
        if self.flow is None:
            return UNKNOWN_VALUE
        return self.flow.value_of(node)

    def returns_of(self, func: ast.AST) -> tuple[tuple[ast.Return, AbstractValue], ...]:
        """Flow-collected ``return`` statements of a function scope."""
        if self.flow is None:
            return ()
        return self.flow.returns_of(func)

    def is_exempt(self, fragments: Iterable[str]) -> bool:
        """Whether this file matches any exemption path fragment."""
        return any(fragment in self.module_path for fragment in fragments)

    # -- v3: interprocedural context ---------------------------------------

    def scope_qualname(self, node: ast.AST) -> str | None:
        """Qualname of the function scope enclosing ``node`` (None = module).

        Climbs the parent map to the nearest enclosing function def known
        to the file's call-graph syntax.
        """
        if self.syntax is None:
            return None
        current: ast.AST | None = node
        while current is not None:
            qualname = self.syntax.node_qualnames.get(current)
            if qualname is not None and current is not node:
                return qualname
            current = self.parents.get(current)
        return None

    def resolve_call(self, call: ast.Call) -> tuple[str, str] | None:
        """(function id, display label) a call dispatches to, if resolvable."""
        if self.syntax is None or self.project is None:
            return None
        scope = self.scope_qualname(call)
        resolved = self.syntax.resolve_call_expr(call.func, scope)
        if resolved is None:
            return None
        target, label = resolved
        fid = self.project.resolve_symbolic(self.syntax, target)
        if fid is None:
            return None
        return fid, label

    def resolve_callable(self, expr: ast.expr, scope: str | None) -> str | None:
        """Project function id a callable *reference* names, if resolvable.

        Unlike :meth:`resolve_call` this takes the expression of a
        function passed by value (``backend.run_chunks(fn, ...)``).
        """
        if self.syntax is None or self.project is None:
            return None
        target: str | None = None
        if isinstance(expr, ast.Name):
            target = self.syntax.resolve_name(expr.id, scope)
        elif isinstance(expr, ast.Attribute):
            resolved = self.syntax.resolve_call_expr(expr, scope)
            target = resolved[0] if resolved is not None else None
        if target is None:
            return None
        return self.project.resolve_symbolic(self.syntax, target)

    # -- v3: source offsets for autofix edits ------------------------------

    def offset_of(self, line: int, col: int) -> int:
        """Char offset of a (1-based line, 0-based col) source position."""
        if self._line_starts is None:
            starts = [0]
            for text_line in self.source.splitlines(keepends=True):
                starts.append(starts[-1] + len(text_line))
            self._line_starts = starts
        starts = self._line_starts
        assert starts is not None
        index = min(max(line - 1, 0), len(starts) - 1)
        return starts[index] + col

    def span_of(self, node: ast.AST) -> tuple[int, int] | None:
        """(start, end) char offsets of ``node``, if position info exists."""
        lineno = getattr(node, "lineno", None)
        end_lineno = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if lineno is None or end_lineno is None or end_col is None:
            return None
        start = self.offset_of(lineno, getattr(node, "col_offset", 0))
        end = self.offset_of(end_lineno, end_col)
        return start, end


@dataclass(frozen=True)
class Rule:
    """A registered reprolint rule."""

    rule_id: str
    title: str
    invariant: str
    node_types: tuple[type, ...]
    check: CheckFn
    exempt: tuple[str, ...] = ()


_RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    title: str,
    invariant: str,
    nodes: Iterable[type],
    exempt: Iterable[str] = (),
) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the body of rule ``rule_id``.

    ``title`` is the short human name shown by ``iris lint --list-rules``;
    ``invariant`` states the planner property the rule protects (it feeds
    the docs); ``nodes`` are the AST node types the driver dispatches to
    the rule; ``exempt`` are path fragments where the rule does not apply.
    """

    def decorate(fn: CheckFn) -> CheckFn:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id} registered twice")
        _RULES[rule_id] = Rule(
            rule_id=rule_id,
            title=title,
            invariant=invariant,
            node_types=tuple(nodes),
            check=fn,
            exempt=tuple(exempt),
        )
        return fn

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by rule id."""
    return tuple(_RULES[rid] for rid in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError if unknown)."""
    return _RULES[rule_id]
