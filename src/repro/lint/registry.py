"""Rule registry and per-file analysis context for reprolint.

A rule is a generator function registered for specific AST node types; the
driver (:mod:`repro.lint.driver`) walks each file's tree once and dispatches
every node to the rules interested in its type. Rules therefore stay O(1)
per node and a full-repo pass stays well under the bench budget.

Rules may declare ``exempt`` path fragments: files whose normalized path
contains any fragment are skipped for that rule (e.g. ``repro/obs/`` owns
the wall clock, so R002 does not apply there).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.lint.findings import Finding
from repro.lint.flow import UNKNOWN_VALUE, AbstractValue, FlowInfo

#: A rule body: yields findings for one dispatched node.
CheckFn = Callable[[ast.AST, "FileContext"], Iterator[Finding]]


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    #: Display path, as given by the caller (used in findings).
    path: str
    #: Posix-normalized path used for rule exemption matching.
    module_path: str
    #: Raw source text of the file.
    source: str
    #: Child node -> parent node, for rules that need enclosing context.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: Flow facts from the driver's pass 1 (:mod:`repro.lint.flow`).
    flow: FlowInfo | None = None

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """A finding anchored at ``node``'s position in this file."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(self.path, line, col, rule_id, message)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (None at module level)."""
        return self.parents.get(node)

    def value_of(self, node: ast.AST) -> AbstractValue:
        """The flow-inferred abstract value of an expression."""
        if self.flow is None:
            return UNKNOWN_VALUE
        return self.flow.value_of(node)

    def returns_of(self, func: ast.AST) -> tuple[tuple[ast.Return, AbstractValue], ...]:
        """Flow-collected ``return`` statements of a function scope."""
        if self.flow is None:
            return ()
        return self.flow.returns_of(func)

    def is_exempt(self, fragments: Iterable[str]) -> bool:
        """Whether this file matches any exemption path fragment."""
        return any(fragment in self.module_path for fragment in fragments)


@dataclass(frozen=True)
class Rule:
    """A registered reprolint rule."""

    rule_id: str
    title: str
    invariant: str
    node_types: tuple[type, ...]
    check: CheckFn
    exempt: tuple[str, ...] = ()


_RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    title: str,
    invariant: str,
    nodes: Iterable[type],
    exempt: Iterable[str] = (),
) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the body of rule ``rule_id``.

    ``title`` is the short human name shown by ``iris lint --list-rules``;
    ``invariant`` states the planner property the rule protects (it feeds
    the docs); ``nodes`` are the AST node types the driver dispatches to
    the rule; ``exempt`` are path fragments where the rule does not apply.
    """

    def decorate(fn: CheckFn) -> CheckFn:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id} registered twice")
        _RULES[rule_id] = Rule(
            rule_id=rule_id,
            title=title,
            invariant=invariant,
            node_types=tuple(nodes),
            check=fn,
            exempt=tuple(exempt),
        )
        return fn

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by rule id."""
    return tuple(_RULES[rid] for rid in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (KeyError if unknown)."""
    return _RULES[rule_id]
