"""repro.lint.flow — flow-sensitive value analysis under the rule layer.

The v1 rules were purely syntactic: ``for x in set(items)`` was visible,
``s = set(items); for x in s`` was not. This module closes that gap with an
intra-procedural, flow-sensitive pass that runs once per file *before* rule
dispatch (the driver's pass 1) and leaves behind a :class:`FlowInfo` the
rules query by AST node.

The analysis propagates a small abstract lattice through assignments,
augmented targets, comprehensions, branches, loops, and returns:

``unit``
    A unit tag (``"km"``, ``"db"``, ...) inferred from suffixed identifiers
    (``span_km``), attribute names (``units.MAX_SPAN_KM``), annotated
    parameters, string subscript keys (``row["length_km"]``), and calls to
    unit-suffixed functions (``rtt_ms(x)``). Same-unit arithmetic keeps the
    tag; ``dBm - dBm`` yields ``dB`` and ``dBm ± dB`` yields ``dBm`` (the
    link-budget algebra); multiplication/division and conflicting sums drop
    to "no unit" — building new dimensions is :mod:`repro.units`' job.

``ordered``
    One of :class:`Orderedness` ORDERED / UNORDERED / UNKNOWN. Sets, set
    comprehensions, set algebra, and set-method results are UNORDERED;
    ``sorted(...)`` re-tags to ORDERED; conversions (``list``, ``tuple``,
    ``iter``, ``enumerate``, ``reversed``, ``.join``), containers, and
    f-strings *propagate* unorderedness so a dict-of-set or a string built
    from set iteration stays tainted. Joins at control-flow merges are
    pessimistic about nondeterminism: a value unordered on any path is
    unordered.

Scopes follow Python's: module, function (including lambda), class body,
and comprehension targets each get their own symbol table. The analysis is
deliberately intra-procedural — function boundaries reset the environment
(parameters re-seed from name suffixes and annotations) — so it stays one
AST walk per file and the full-repo pass holds the 5 s bench budget.

Every :class:`AbstractValue` carries a best-effort *origin* (what created
the tag and on which line) so findings can say "``'s'`` aliases
``set(...)`` bound at line 3" instead of pointing at a bare name.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

#: Optional hook the interprocedural layer installs: given the enclosing
#: scope node and a call expression, return the abstract value the call
#: produces (usually a symbolic ``call_ref`` value), or None to fall back
#: to the builtin heuristics below.
CallResolver = Callable[[ast.AST, ast.Call], Optional["AbstractValue"]]

__all__ = [
    "AbstractValue",
    "CallResolver",
    "FlowInfo",
    "Orderedness",
    "UNIT_DIMENSIONS",
    "UNKNOWN_VALUE",
    "analyze_flow",
    "unit_dimension",
    "unit_suffix",
]


class Orderedness(enum.Enum):
    """Whether a value's iteration order is deterministic."""

    ORDERED = "ordered"
    UNORDERED = "unordered"
    UNKNOWN = "unknown"

    def join(self, other: "Orderedness") -> "Orderedness":
        """Lattice join at control-flow merges: unordered-anywhere wins."""
        if self is other:
            return self
        if Orderedness.UNORDERED in (self, other):
            return Orderedness.UNORDERED
        return Orderedness.UNKNOWN


#: The unit vocabulary: identifier suffix -> physical dimension. Suffixes
#: in the same dimension still must not mix without conversion (km vs m);
#: the log-domain power units (db/dbm) get their own algebra in _combine.
UNIT_DIMENSIONS: dict[str, str] = {
    "km": "length",
    "m": "length",
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    "gbps": "rate",
    "mbps": "rate",
    "tbps": "rate",
    "bps": "rate",
    "db": "power",
    "dbm": "power",
    "mw": "power",
    "hz": "frequency",
    "ghz": "frequency",
}


def unit_suffix(name: str) -> str | None:
    """The unit suffix of an identifier (``span_km`` -> ``km``), or None."""
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[-1].lower()
    return suffix if suffix in UNIT_DIMENSIONS else None


def unit_dimension(unit: str) -> str | None:
    """The physical dimension a unit tag belongs to (``km`` -> ``length``)."""
    return UNIT_DIMENSIONS.get(unit)


@dataclass(frozen=True)
class AbstractValue:
    """One lattice point: what the analysis knows about an expression."""

    #: Inferred unit tag (a key of :data:`UNIT_DIMENSIONS`), or None.
    unit: str | None = None
    #: Whether iterating the value is deterministic.
    ordered: Orderedness = Orderedness.UNKNOWN
    #: Human label of what produced the interesting tag (``"set(...)"``).
    origin: str | None = None
    #: Line the origin appeared on, for "bound at line N" messages.
    origin_line: int | None = None
    #: Symbolic call target (``"local:<qualname>"`` / ``"import:<dotted>"``)
    #: when the value is the unresolved result of a project-function call;
    #: the interprocedural layer resolves these against live summaries.
    call_ref: str | None = None

    @property
    def is_unordered(self) -> bool:
        return self.ordered is Orderedness.UNORDERED

    def join(self, other: "AbstractValue") -> "AbstractValue":
        """Merge two branch values; disagreement degrades, never invents."""
        ordered = self.ordered.join(other.ordered)
        unit = self.unit if self.unit == other.unit else None
        if ordered is self.ordered and self.origin:
            origin, line = self.origin, self.origin_line
        elif ordered is other.ordered and other.origin:
            origin, line = other.origin, other.origin_line
        else:
            origin, line = None, None
        call_ref = self.call_ref if self.call_ref == other.call_ref else None
        return AbstractValue(unit, ordered, origin, line, call_ref)

    def describe(self) -> str:
        """Short suffix for findings: ``" (set(...) bound at line 3)"``."""
        parts = []
        if self.unit is not None:
            parts.append(f"tagged '_{self.unit}'")
        if self.origin is not None:
            if self.origin_line is None:
                parts.append(self.origin)
            else:
                parts.append(f"{self.origin} bound at line {self.origin_line}")
        if not parts:
            return ""
        return " (" + ", ".join(parts) + ")"


#: Bottom of the lattice: nothing known.
UNKNOWN_VALUE = AbstractValue()

#: A deterministic scalar (numbers, strings, bools, None).
_SCALAR = AbstractValue(ordered=Orderedness.ORDERED)

_Env = dict[str, AbstractValue]


def _join_envs(a: _Env, b: _Env) -> _Env:
    """Pointwise join of two branch environments."""
    out: _Env = {}
    for name in a.keys() | b.keys():
        out[name] = a.get(name, UNKNOWN_VALUE).join(b.get(name, UNKNOWN_VALUE))
    return out


class FlowInfo:
    """Queryable result of the flow pass over one module's AST.

    Values are keyed by node identity, so rules holding a node from the
    dispatch walk can ask about exactly that expression.
    """

    __slots__ = ("_values", "_returns")

    def __init__(self) -> None:
        self._values: dict[ast.AST, AbstractValue] = {}
        self._returns: dict[ast.AST, list[tuple[ast.Return, AbstractValue]]] = {}

    def value_of(self, node: ast.AST) -> AbstractValue:
        """The abstract value of an expression (UNKNOWN_VALUE if unvisited)."""
        return self._values.get(node, UNKNOWN_VALUE)

    def returns_of(
        self, func: ast.AST
    ) -> tuple[tuple[ast.Return, AbstractValue], ...]:
        """Every ``return`` of a function scope with its returned value."""
        return tuple(self._returns.get(func, ()))


def analyze_flow(
    tree: ast.AST, call_resolver: CallResolver | None = None
) -> FlowInfo:
    """Pass 1: flow-analyze every scope of ``tree``; returns the facts.

    ``call_resolver`` lets the interprocedural layer claim call
    expressions before the builtin heuristics see them — project
    functions resolve to (symbolic) summary values, builtins fall
    through untouched.
    """
    info = FlowInfo()
    queue: list[ast.AST] = [tree]
    while queue:
        _ScopeAnalyzer(info, queue.pop(), queue, call_resolver).run()
    return info


#: Set-specific methods whose result is itself an unordered set.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Annotation names that pin a parameter's orderedness.
_UNORDERED_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_ORDERED_ANNOTATIONS = frozenset(
    {
        "list",
        "tuple",
        "dict",
        "str",
        "List",
        "Tuple",
        "Dict",
        "Sequence",
        "Mapping",
        "OrderedDict",
    }
)


def _value_from_annotation(annotation: ast.expr | None) -> AbstractValue:
    """Orderedness a signature annotation promises (``set[str]`` etc.)."""
    node: ast.AST | None = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name: str | None = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.split("[", 1)[0].strip()
    if name in _UNORDERED_ANNOTATIONS:
        return AbstractValue(
            ordered=Orderedness.UNORDERED,
            origin=f"parameter annotated {name}",
            origin_line=getattr(annotation, "lineno", None),
        )
    if name in _ORDERED_ANNOTATIONS:
        return AbstractValue(ordered=Orderedness.ORDERED)
    return UNKNOWN_VALUE


def _combine(op: ast.operator, left: AbstractValue, right: AbstractValue) -> AbstractValue:
    """Abstract binary operation: set algebra taints, unit algebra tags."""
    if left.is_unordered:
        ordered, origin, line = left.ordered, left.origin, left.origin_line
    elif right.is_unordered:
        ordered, origin, line = right.ordered, right.origin, right.origin_line
    elif (
        left.ordered is Orderedness.ORDERED
        and right.ordered is Orderedness.ORDERED
    ):
        ordered, origin, line = Orderedness.ORDERED, None, None
    else:
        ordered, origin, line = Orderedness.UNKNOWN, None, None

    unit: str | None = None
    if isinstance(op, (ast.Add, ast.Sub)):
        lu, ru = left.unit, right.unit
        if lu and ru:
            if lu == ru:
                # dBm - dBm is a ratio of absolute powers: a dB value.
                unit = "db" if isinstance(op, ast.Sub) and lu == "dbm" else lu
            elif {lu, ru} == {"db", "dbm"}:
                unit = "dbm"  # link-budget algebra: absolute +/- relative
            else:
                unit = None  # conflicting tags — R007's business, not ours
        else:
            unit = lu or ru
    return AbstractValue(unit, ordered, origin, line)


class _ScopeAnalyzer:
    """Statement-ordered walk of one scope, maintaining the symbol table."""

    def __init__(
        self,
        info: FlowInfo,
        scope: ast.AST,
        queue: list[ast.AST],
        call_resolver: CallResolver | None = None,
    ) -> None:
        self.info = info
        self.scope = scope
        self.queue = queue
        self.call_resolver = call_resolver
        self.env: _Env = {}

    def run(self) -> None:
        scope = self.scope
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._bind_params(scope.args)
            self._exec_block(scope.body)
        elif isinstance(scope, ast.Lambda):
            self._bind_params(scope.args)
            self._eval(scope.body)
        elif isinstance(scope, ast.ClassDef):
            self._exec_block(scope.body)
        else:  # ast.Module
            self._exec_block(getattr(scope, "body", []))

    # -- bindings ----------------------------------------------------------

    def _bind(self, name: str, value: AbstractValue) -> None:
        self.env[name] = value

    def _bind_params(self, args: ast.arguments) -> None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            value = _value_from_annotation(arg.annotation)
            self._bind(
                arg.arg,
                AbstractValue(
                    unit_suffix(arg.arg),
                    value.ordered,
                    value.origin,
                    value.origin_line,
                ),
            )
        if args.vararg is not None:
            self._bind(args.vararg.arg, AbstractValue(ordered=Orderedness.ORDERED))
        if args.kwarg is not None:
            self._bind(args.kwarg.arg, AbstractValue(ordered=Orderedness.ORDERED))

    def _bind_target(
        self,
        target: ast.expr,
        value: AbstractValue,
        value_expr: ast.expr | None = None,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
            self.info._values[target] = value
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, UNKNOWN_VALUE)
        elif isinstance(target, (ast.Tuple, ast.List)):
            source_elts: list[ast.expr] | None = None
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                source_elts = value_expr.elts
            for i, elt in enumerate(target.elts):
                elt_value = (
                    self.info.value_of(source_elts[i])
                    if source_elts is not None
                    else UNKNOWN_VALUE
                )
                self._bind_target(elt, elt_value)
        else:
            # Attribute / Subscript targets: evaluate their load parts so
            # nested expressions get values; nothing is tracked for them.
            self._eval(target)

    # -- statements --------------------------------------------------------

    def _exec_block(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        method = getattr(self, "_exec_" + type(stmt).__name__, None)
        if method is not None:
            method(stmt)
        else:
            self._visit_fields(stmt)

    def _visit_fields(self, node: ast.AST) -> None:
        """Generic traversal: evaluate every reachable expression in order."""
        for _name, value in ast.iter_fields(node):
            items = value if isinstance(value, list) else [value]
            for item in items:
                if isinstance(item, ast.expr):
                    self._eval(item)
                elif isinstance(item, ast.stmt):
                    self._exec(item)
                elif isinstance(item, ast.AST):
                    self._visit_fields(item)

    def _exec_Assign(self, stmt: ast.Assign) -> None:
        value = self._eval(stmt.value)
        for target in stmt.targets:
            self._bind_target(target, value, stmt.value)

    def _exec_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        self._eval(stmt.annotation)
        if stmt.value is not None:
            value = self._eval(stmt.value)
        else:
            value = _value_from_annotation(stmt.annotation)
        self._bind_target(stmt.target, value, stmt.value)

    def _exec_AugAssign(self, stmt: ast.AugAssign) -> None:
        right = self._eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            left = self.env.get(stmt.target.id, UNKNOWN_VALUE)
            combined = _combine(stmt.op, left, right)
            self._bind(stmt.target.id, combined)
            self.info._values[stmt.target] = combined
        else:
            self._eval(stmt.target)

    def _exec_For(self, stmt: ast.For) -> None:
        self._eval(stmt.iter)
        self._bind_target(stmt.target, UNKNOWN_VALUE)
        before = dict(self.env)
        self._exec_block(stmt.body)
        self.env = _join_envs(before, self.env)
        self._exec_block(stmt.orelse)

    _exec_AsyncFor = _exec_For

    def _exec_While(self, stmt: ast.While) -> None:
        self._eval(stmt.test)
        before = dict(self.env)
        self._exec_block(stmt.body)
        self.env = _join_envs(before, self.env)
        self._exec_block(stmt.orelse)

    def _exec_If(self, stmt: ast.If) -> None:
        self._eval(stmt.test)
        before = dict(self.env)
        self._exec_block(stmt.body)
        after_body = self.env
        self.env = dict(before)
        self._exec_block(stmt.orelse)
        self.env = _join_envs(after_body, self.env)

    def _exec_With(self, stmt: ast.With) -> None:
        for item in stmt.items:
            value = self._eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, value, item.context_expr)
        self._exec_block(stmt.body)

    _exec_AsyncWith = _exec_With

    def _exec_Try(self, stmt: ast.Try) -> None:
        before = dict(self.env)
        self._exec_block(stmt.body)
        self._exec_block(stmt.orelse)
        merged = self.env
        for handler in stmt.handlers:
            self.env = dict(before)
            if handler.type is not None:
                self._eval(handler.type)
            if handler.name:
                self._bind(handler.name, UNKNOWN_VALUE)
            self._exec_block(handler.body)
            merged = _join_envs(merged, self.env)
        self.env = merged
        self._exec_block(stmt.finalbody)

    _exec_TryStar = _exec_Try

    def _exec_Return(self, stmt: ast.Return) -> None:
        value = self._eval(stmt.value) if stmt.value is not None else _SCALAR
        if isinstance(
            self.scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            self.info._returns.setdefault(self.scope, []).append((stmt, value))

    def _exec_FunctionDef(self, stmt: ast.FunctionDef) -> None:
        # Decorators, defaults, and annotations evaluate in *this* scope;
        # the body is queued as a scope of its own.
        for decorator in stmt.decorator_list:
            self._eval(decorator)
        args = stmt.args
        for default in (*args.defaults, *filter(None, args.kw_defaults)):
            self._eval(default)
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            args.vararg,
            args.kwarg,
        ):
            if arg is not None and arg.annotation is not None:
                self._eval(arg.annotation)
        if stmt.returns is not None:
            self._eval(stmt.returns)
        self._bind(stmt.name, UNKNOWN_VALUE)
        self.queue.append(stmt)

    _exec_AsyncFunctionDef = _exec_FunctionDef

    def _exec_ClassDef(self, stmt: ast.ClassDef) -> None:
        for decorator in stmt.decorator_list:
            self._eval(decorator)
        for base in stmt.bases:
            self._eval(base)
        for keyword in stmt.keywords:
            self._eval(keyword.value)
        self._bind(stmt.name, UNKNOWN_VALUE)
        self.queue.append(stmt)

    def _exec_Global(self, stmt: ast.Global) -> None:
        for name in stmt.names:
            self._bind(name, UNKNOWN_VALUE)

    _exec_Nonlocal = _exec_Global

    def _exec_Delete(self, stmt: ast.Delete) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self.env.pop(target.id, None)
            else:
                self._eval(target)

    # -- expressions -------------------------------------------------------

    def _eval(self, expr: ast.expr) -> AbstractValue:
        method = getattr(self, "_eval_" + type(expr).__name__, None)
        if method is not None:
            value = method(expr)
        else:
            self._visit_fields(expr)
            value = UNKNOWN_VALUE
        self.info._values[expr] = value
        return value

    def _eval_Constant(self, expr: ast.Constant) -> AbstractValue:
        return _SCALAR

    def _eval_Name(self, expr: ast.Name) -> AbstractValue:
        suffix = unit_suffix(expr.id)
        bound = self.env.get(expr.id)
        if bound is None:
            return AbstractValue(unit=suffix) if suffix else UNKNOWN_VALUE
        # A unit suffix on the name itself is a declaration and wins.
        return AbstractValue(
            suffix or bound.unit,
            bound.ordered,
            bound.origin,
            bound.origin_line,
            bound.call_ref,
        )

    def _eval_Attribute(self, expr: ast.Attribute) -> AbstractValue:
        self._eval(expr.value)
        return AbstractValue(unit=unit_suffix(expr.attr))

    def _eval_Subscript(self, expr: ast.Subscript) -> AbstractValue:
        self._eval(expr.value)
        self._eval(expr.slice)
        key = expr.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return AbstractValue(unit=unit_suffix(key.value))
        return UNKNOWN_VALUE

    def _eval_Starred(self, expr: ast.Starred) -> AbstractValue:
        return self._eval(expr.value)

    def _container(
        self, values: list[AbstractValue], label: str, line: int
    ) -> AbstractValue:
        """A container is tainted when anything inside it is unordered."""
        for value in values:
            if value.is_unordered:
                return AbstractValue(
                    ordered=Orderedness.UNORDERED,
                    origin=value.origin or f"unordered element in {label}",
                    origin_line=value.origin_line or line,
                )
        return AbstractValue(ordered=Orderedness.ORDERED)

    def _eval_Tuple(self, expr: ast.Tuple) -> AbstractValue:
        values = [self._eval(e) for e in expr.elts]
        return self._container(values, "tuple", expr.lineno)

    def _eval_List(self, expr: ast.List) -> AbstractValue:
        values = [self._eval(e) for e in expr.elts]
        return self._container(values, "list", expr.lineno)

    def _eval_Set(self, expr: ast.Set) -> AbstractValue:
        for elt in expr.elts:
            self._eval(elt)
        return AbstractValue(
            ordered=Orderedness.UNORDERED,
            origin="set literal",
            origin_line=expr.lineno,
        )

    def _eval_Dict(self, expr: ast.Dict) -> AbstractValue:
        values = [self._eval(k) for k in expr.keys if k is not None]
        values += [self._eval(v) for v in expr.values]
        return self._container(values, "dict", expr.lineno)

    def _eval_comprehension_scope(
        self, expr: ast.expr, generators: list[ast.comprehension]
    ) -> AbstractValue:
        """Bind comprehension targets; returns the first iterable's value."""
        base = UNKNOWN_VALUE
        for i, gen in enumerate(generators):
            iter_value = self._eval(gen.iter)
            if i == 0:
                base = iter_value
            self._bind_target(gen.target, UNKNOWN_VALUE)
            for cond in gen.ifs:
                self._eval(cond)
        return base

    def _comp_result(
        self, base: AbstractValue, parts: list[AbstractValue], label: str, line: int
    ) -> AbstractValue:
        tainted = [v for v in (base, *parts) if v.is_unordered]
        if tainted:
            first = tainted[0]
            return AbstractValue(
                ordered=Orderedness.UNORDERED,
                origin=first.origin or f"{label} over unordered iterable",
                origin_line=first.origin_line or line,
            )
        if base.ordered is Orderedness.ORDERED:
            return AbstractValue(ordered=Orderedness.ORDERED)
        return UNKNOWN_VALUE

    def _eval_ListComp(self, expr: ast.ListComp) -> AbstractValue:
        saved = dict(self.env)
        base = self._eval_comprehension_scope(expr, expr.generators)
        elt = self._eval(expr.elt)
        self.env = saved
        return self._comp_result(base, [elt], "comprehension", expr.lineno)

    _eval_GeneratorExp = _eval_ListComp

    def _eval_SetComp(self, expr: ast.SetComp) -> AbstractValue:
        saved = dict(self.env)
        self._eval_comprehension_scope(expr, expr.generators)
        self._eval(expr.elt)
        self.env = saved
        return AbstractValue(
            ordered=Orderedness.UNORDERED,
            origin="set comprehension",
            origin_line=expr.lineno,
        )

    def _eval_DictComp(self, expr: ast.DictComp) -> AbstractValue:
        saved = dict(self.env)
        base = self._eval_comprehension_scope(expr, expr.generators)
        key = self._eval(expr.key)
        value = self._eval(expr.value)
        self.env = saved
        return self._comp_result(base, [key, value], "dict comprehension", expr.lineno)

    def _eval_BinOp(self, expr: ast.BinOp) -> AbstractValue:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        return _combine(expr.op, left, right)

    def _eval_UnaryOp(self, expr: ast.UnaryOp) -> AbstractValue:
        return self._eval(expr.operand)

    def _eval_BoolOp(self, expr: ast.BoolOp) -> AbstractValue:
        values = [self._eval(v) for v in expr.values]
        result = values[0]
        for value in values[1:]:
            result = result.join(value)
        return result

    def _eval_IfExp(self, expr: ast.IfExp) -> AbstractValue:
        self._eval(expr.test)
        return self._eval(expr.body).join(self._eval(expr.orelse))

    def _eval_Compare(self, expr: ast.Compare) -> AbstractValue:
        self._eval(expr.left)
        for comparator in expr.comparators:
            self._eval(comparator)
        return _SCALAR

    def _eval_JoinedStr(self, expr: ast.JoinedStr) -> AbstractValue:
        values = [self._eval(v) for v in expr.values]
        return self._container(values, "f-string", expr.lineno)

    def _eval_FormattedValue(self, expr: ast.FormattedValue) -> AbstractValue:
        value = self._eval(expr.value)
        if expr.format_spec is not None:
            self._eval(expr.format_spec)
        return AbstractValue(
            None, value.ordered, value.origin, value.origin_line
        )

    def _eval_NamedExpr(self, expr: ast.NamedExpr) -> AbstractValue:
        value = self._eval(expr.value)
        self._bind(expr.target.id, value)
        self.info._values[expr.target] = value
        return value

    def _eval_Lambda(self, expr: ast.Lambda) -> AbstractValue:
        args = expr.args
        for default in (*args.defaults, *filter(None, args.kw_defaults)):
            self._eval(default)
        self.queue.append(expr)
        return UNKNOWN_VALUE

    def _eval_Await(self, expr: ast.Await) -> AbstractValue:
        return self._eval(expr.value)

    def _eval_Yield(self, expr: ast.Yield) -> AbstractValue:
        if expr.value is not None:
            self._eval(expr.value)
        return UNKNOWN_VALUE

    def _eval_YieldFrom(self, expr: ast.YieldFrom) -> AbstractValue:
        self._eval(expr.value)
        return UNKNOWN_VALUE

    def _eval_Call(self, expr: ast.Call) -> AbstractValue:
        func = expr.func
        self._eval(func)
        receiver = (
            self.info.value_of(func.value)
            if isinstance(func, ast.Attribute)
            else UNKNOWN_VALUE
        )
        arg_values = [self._eval(a) for a in expr.args]
        kw_values = [self._eval(kw.value) for kw in expr.keywords]
        fname = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        first = arg_values[0] if arg_values else None
        line = expr.lineno

        if self.call_resolver is not None:
            resolved = self.call_resolver(self.scope, expr)
            if resolved is not None:
                return resolved
        if fname in ("set", "frozenset"):
            return AbstractValue(
                ordered=Orderedness.UNORDERED,
                origin=f"{fname}(...)",
                origin_line=line,
            )
        if fname == "sorted":
            return AbstractValue(ordered=Orderedness.ORDERED)
        if fname in ("list", "tuple", "iter", "reversed", "enumerate"):
            if first is None:
                return AbstractValue(ordered=Orderedness.ORDERED)
            return AbstractValue(
                None, first.ordered, first.origin, first.origin_line
            )
        if fname == "dict":
            return self._container([*arg_values, *kw_values], "dict(...)", line)
        if fname in ("sum", "len", "any", "all"):
            return _SCALAR
        if fname in ("min", "max", "abs", "round", "float", "int"):
            units = {v.unit for v in arg_values if v.unit is not None}
            unit = units.pop() if len(units) == 1 else None
            return AbstractValue(unit, Orderedness.ORDERED)
        if isinstance(func, ast.Attribute):
            if fname in _SET_METHODS:
                if receiver.is_unordered:
                    return AbstractValue(
                        ordered=Orderedness.UNORDERED,
                        origin=receiver.origin or f".{fname}(...)",
                        origin_line=receiver.origin_line or line,
                    )
                return UNKNOWN_VALUE
            if fname in ("keys", "values", "items", "copy"):
                return AbstractValue(
                    None, receiver.ordered, receiver.origin, receiver.origin_line
                )
            if fname == "join":
                if first is not None and first.is_unordered:
                    return AbstractValue(
                        ordered=Orderedness.UNORDERED,
                        origin=first.origin or "join over unordered iterable",
                        origin_line=first.origin_line or line,
                    )
                if first is not None and first.ordered is Orderedness.ORDERED:
                    return AbstractValue(ordered=Orderedness.ORDERED)
                return UNKNOWN_VALUE
            if fname in ("split", "splitlines", "strip", "lower", "upper", "format"):
                return AbstractValue(
                    None, receiver.ordered, receiver.origin, receiver.origin_line
                )
        if fname is not None:
            suffix = unit_suffix(fname)
            if suffix is not None:
                return AbstractValue(unit=suffix)
        return UNKNOWN_VALUE
