"""repro.lint.callgraph — the project-wide call graph under reprolint v3.

The v2 engine was deliberately intra-procedural: every fact a rule used
was derivable from one function body, so a helper that seeds the global
RNG was invisible at its call sites. v3 closes that gap. This module
supplies the *syntactic* half of the interprocedural machinery:

* :class:`FileSyntax` — one file's function index (top-level functions,
  class methods, nested ``def``s with their ``f.<locals>.g`` qualnames),
  its import alias map, and every call site with a **symbolic** target
  reference resolved against local scopes and imports;
* :class:`ModuleIndex` — dotted-module-name → file resolution over the
  whole lint set, tolerant of the ``src/`` layout prefix;
* :func:`resolve_target` — symbolic reference → project function id
  (``"path::qualname"``);
* :func:`tarjan_scc` — strongly connected components of the resolved
  graph, in reverse-topological (bottom-up) order, which is the order
  the summary pass (:mod:`repro.lint.summaries`) propagates effects in.

Symbolic references are the load-bearing design decision: a call site is
recorded as ``local:helper`` or ``import:repro.core.hose.solve`` — facts
derivable from the file *alone* — and resolved against the live module
index on every run. That keeps per-file analyses pure functions of their
source text, which is what lets :mod:`repro.lint.project` cache them in
``repro.store`` keyed by source digest and still invalidate correctly
when the rest of the project changes around them.

Resolution is best-effort and silent on failure (an unresolved call
contributes no edge and no finding): precision lives in what *does*
resolve — module-level functions, ``from m import f`` aliases, dotted
``mod.func`` chains, ``self.method()``/``cls.method()`` within a class,
and nested functions visible from their enclosing scopes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "CallSite",
    "FileSyntax",
    "LocalFunction",
    "ModuleIndex",
    "analyze_syntax",
    "function_id",
    "module_name_for_path",
    "resolve_target",
    "tarjan_scc",
]

#: Separator between file path and qualname in a project function id.
_ID_SEP = "::"


def function_id(path: str, qualname: str) -> str:
    """The project-wide id of one function (``"src/repro/x.py::f"``)."""
    return f"{path}{_ID_SEP}{qualname}"


def split_function_id(func_id: str) -> tuple[str, str]:
    """Inverse of :func:`function_id`."""
    path, _, qualname = func_id.rpartition(_ID_SEP)
    return path, qualname


def module_name_for_path(path: str) -> str:
    """The dotted module name a file path corresponds to.

    ``src/repro/core/hose.py`` → ``src.repro.core.hose`` (imports match by
    dotted suffix, so the ``src.`` layout prefix is harmless); package
    ``__init__.py`` files name the package itself.
    """
    dotted = path.replace("\\", "/").strip("/").removesuffix(".py")
    parts = [p for p in dotted.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class LocalFunction:
    """One function definition inside a file, with its scope context."""

    qualname: str
    name: str
    lineno: int
    parent: str | None
    class_name: str | None
    is_nested: bool
    params: tuple[str, ...]
    decorators: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "parent": self.parent,
            "class_name": self.class_name,
            "is_nested": self.is_nested,
            "params": list(self.params),
            "decorators": list(self.decorators),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LocalFunction":
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            lineno=int(data["lineno"]),
            parent=data.get("parent"),
            class_name=data.get("class_name"),
            is_nested=bool(data["is_nested"]),
            params=tuple(data.get("params", ())),
            decorators=tuple(data.get("decorators", ())),
        )


@dataclass(frozen=True)
class CallSite:
    """One call site with a symbolically resolved target.

    ``target`` is ``"local:<qualname>"`` for functions in the same file or
    ``"import:<dotted.path>"`` for names reached through the import map;
    both forms are derivable from the file alone and are resolved against
    the project on every run (:func:`resolve_target`).
    """

    caller: str | None
    target: str
    lineno: int
    label: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "caller": self.caller,
            "target": self.target,
            "lineno": self.lineno,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            caller=data.get("caller"),
            target=str(data["target"]),
            lineno=int(data["lineno"]),
            label=str(data["label"]),
        )


@dataclass
class FileSyntax:
    """The call-graph-relevant syntax of one file.

    Serializable (``to_dict``/``from_dict``) so :mod:`repro.lint.project`
    can cache it keyed by source digest; the AST-node maps (``node_qualnames``,
    ``scope_nodes``) only exist on live-parsed instances and are rebuilt
    whenever the file is re-parsed.
    """

    path: str
    module: str
    functions: dict[str, LocalFunction] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    #: Live-only: FunctionDef/AsyncFunctionDef node -> qualname.
    node_qualnames: dict[ast.AST, str] = field(default_factory=dict, repr=False)
    #: Live-only: per-scope name -> qualname tables ("" is module scope).
    scope_names: dict[str, dict[str, str]] = field(default_factory=dict, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "functions": {
                q: f.to_dict() for q, f in sorted(self.functions.items())
            },
            "imports": dict(sorted(self.imports.items())),
            "calls": [c.to_dict() for c in self.calls],
            "scope_names": {
                scope: dict(sorted(names.items()))
                for scope, names in sorted(self.scope_names.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileSyntax":
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            functions={
                q: LocalFunction.from_dict(f)
                for q, f in data.get("functions", {}).items()
            },
            imports=dict(data.get("imports", {})),
            calls=[CallSite.from_dict(c) for c in data.get("calls", [])],
            scope_names={
                scope: dict(names)
                for scope, names in data.get("scope_names", {}).items()
            },
        )

    # -- symbolic resolution -------------------------------------------------

    def resolve_name(self, name: str, scope: str | None) -> str | None:
        """Symbolic target of a bare ``name`` visible from ``scope``.

        Searches nested-function tables innermost-out, then module-level
        functions, then the import alias map.
        """
        chain = _scope_chain(scope)
        for prefix in chain:
            table = self.scope_names.get(prefix)
            if table and name in table:
                return f"local:{table[name]}"
        if name in self.imports:
            return f"import:{self.imports[name]}"
        return None

    def resolve_call_expr(
        self, func: ast.expr, scope: str | None
    ) -> tuple[str, str] | None:
        """(symbolic target, display label) for a call's function expr."""
        if isinstance(func, ast.Name):
            target = self.resolve_name(func.id, scope)
            return (target, func.id) if target is not None else None
        if isinstance(func, ast.Attribute):
            parts = _dotted_parts(func)
            if parts is None:
                return None
            root, rest = parts[0], parts[1:]
            if root in ("self", "cls") and len(parts) == 2:
                class_name = self._enclosing_class(scope)
                if class_name is not None:
                    qualname = f"{class_name}.{parts[1]}"
                    if qualname in self.functions:
                        return f"local:{qualname}", f"{root}.{parts[1]}"
                return None
            if root in self.imports and rest:
                dotted = ".".join([self.imports[root], *rest])
                return f"import:{dotted}", ".".join(parts)
        return None

    def _enclosing_class(self, scope: str | None) -> str | None:
        """The class a method scope belongs to (``"C.m"`` → ``"C"``)."""
        if scope is None:
            return None
        info = self.functions.get(scope)
        if info is not None and info.class_name is not None:
            return info.class_name
        return None


def _scope_chain(scope: str | None) -> list[str]:
    """Scope-name prefixes to search, innermost first, ending at module.

    A scope ``"f.<locals>.g"`` sees names defined in ``g`` (prefix
    ``"f.<locals>.g"``), in ``f`` (prefix ``"f"``), and at module level
    (prefix ``""``).
    """
    if not scope:
        return [""]
    chain = [scope]
    parts = scope.split(".<locals>.")
    while len(parts) > 1:
        parts = parts[:-1]
        chain.append(".<locals>.".join(parts))
    if chain[-1] != "":
        chain.append("")
    return chain


def _dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None when the chain has calls etc."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Dotted display names of a function's decorators (best effort)."""
    names: list[str] = []
    for dec in node.decorator_list:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        parts = _dotted_parts(expr) if isinstance(expr, (ast.Name, ast.Attribute)) else None
        if parts:
            names.append(".".join(parts))
    return tuple(names)


class _SyntaxBuilder(ast.NodeVisitor):
    """Two-pass builder: collect functions/imports, then call sites.

    Collection must complete before resolution so forward references
    (``def a(): return b()`` with ``b`` defined later) resolve.
    """

    def __init__(self, syntax: FileSyntax) -> None:
        self.syntax = syntax
        #: (kind, name) scope stack entries; kind is "func" or "class".
        self._stack: list[tuple[str, str]] = []

    # -- helpers -------------------------------------------------------------

    def _qualname(self, name: str) -> str:
        parts: list[str] = []
        for kind, entry in self._stack:
            parts.append(entry)
            if kind == "func":
                parts.append("<locals>")
        parts.append(name)
        return ".".join(parts)

    def _enclosing_func(self) -> str | None:
        for kind, entry in reversed(self._stack):
            if kind == "func":
                return entry
        return None

    def _scope_prefix(self) -> str:
        """The name-table key for the current scope ("" = module)."""
        func = self._enclosing_func()
        return func if func is not None else ""

    # -- pass 1: functions + imports ----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.syntax.imports.setdefault(bound, target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._absolute_module(node)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.syntax.imports.setdefault(bound, f"{base}.{alias.name}")

    def _absolute_module(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        base_parts = self.syntax.module.split(".")
        if node.level > len(base_parts):
            return None
        base_parts = base_parts[: len(base_parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = self._qualname(node.name)
        class_name = (
            self._stack[-1][1] if self._stack and self._stack[-1][0] == "class" else None
        )
        args = node.args
        params = tuple(
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        self.syntax.functions[qualname] = LocalFunction(
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            parent=self._enclosing_func(),
            class_name=class_name,
            is_nested=self._enclosing_func() is not None,
            params=params,
            decorators=decorator_names(node),
        )
        self.syntax.node_qualnames[node] = qualname
        self.syntax.scope_names.setdefault(self._scope_prefix(), {})[
            node.name
        ] = qualname
        self._stack.append(("func", qualname))
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(("class", self._qualname(node.name)))
        self.generic_visit(node)
        self._stack.pop()


class _CallCollector(ast.NodeVisitor):
    """Pass 2: record every call site with its symbolic target."""

    def __init__(self, syntax: FileSyntax) -> None:
        self.syntax = syntax
        self._scope: list[str] = []

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scope.append(self.syntax.node_qualnames[node])
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._scope[-1] if self._scope else None
        resolved = self.syntax.resolve_call_expr(node.func, scope)
        if resolved is not None:
            target, label = resolved
            self.syntax.calls.append(
                CallSite(caller=scope, target=target, lineno=node.lineno, label=label)
            )
        self.generic_visit(node)


def analyze_syntax(tree: ast.AST, path: str) -> FileSyntax:
    """Build the :class:`FileSyntax` of one parsed file."""
    syntax = FileSyntax(path=path, module=module_name_for_path(path))
    _SyntaxBuilder(syntax).visit(tree)
    _CallCollector(syntax).visit(tree)
    return syntax


class ModuleIndex:
    """Dotted-module-name resolution over the whole lint set.

    Imports are matched by dotted suffix so a file under ``src/repro/...``
    still resolves ``import repro....``; ambiguous suffixes (two files
    whose dotted names share a tail) resolve to nothing rather than to
    the wrong file.
    """

    def __init__(self, syntaxes: Iterable[FileSyntax]) -> None:
        self._exact: dict[str, str] = {}
        suffix_hits: dict[str, list[str]] = {}
        for syntax in sorted(syntaxes, key=lambda s: s.path):
            if not syntax.module:
                continue
            self._exact.setdefault(syntax.module, syntax.path)
            parts = syntax.module.split(".")
            for i in range(len(parts)):
                suffix = ".".join(parts[i:])
                suffix_hits.setdefault(suffix, []).append(syntax.path)
        self._by_suffix: dict[str, str] = {
            suffix: paths[0]
            for suffix, paths in suffix_hits.items()
            if len(set(paths)) == 1
        }

    def file_for_module(self, dotted: str) -> str | None:
        """The lint-set file a dotted module name refers to, if unambiguous."""
        return self._exact.get(dotted) or self._by_suffix.get(dotted)


def resolve_target(
    target: str,
    own_syntax: FileSyntax,
    index: ModuleIndex,
    syntaxes: Mapping[str, FileSyntax],
) -> str | None:
    """Resolve one symbolic call target to a project function id.

    ``local:`` targets resolve within ``own_syntax``; ``import:`` targets
    split the dotted path into the longest module prefix known to the
    index plus a trailing function (or ``Class.method``) qualname.
    """
    kind, _, ref = target.partition(":")
    if kind == "local":
        if ref in own_syntax.functions:
            return function_id(own_syntax.path, ref)
        return None
    if kind != "import":
        return None
    parts = ref.split(".")
    # Longest module prefix first: "repro.core.hose.solve" tries the
    # module "repro.core.hose" before "repro.core" (+ "hose.solve").
    for cut in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:cut])
        path = index.file_for_module(module)
        if path is None:
            continue
        qualname = ".".join(parts[cut:])
        syntax = syntaxes.get(path)
        if syntax is not None and qualname in syntax.functions:
            return function_id(path, qualname)
        return None
    return None


def tarjan_scc(graph: Mapping[str, Sequence[str]]) -> list[list[str]]:
    """Strongly connected components, bottom-up (callees before callers).

    Iterative Tarjan over a deterministic (sorted) traversal: the output
    order and the order within each component depend only on the graph,
    never on dict insertion or hash order.
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    def neighbors(node: str) -> list[str]:
        return sorted(set(graph.get(node, ())) & graph.keys())

    for root in sorted(graph):
        if root in index_of:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(neighbors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(neighbors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components
