"""Structured findings emitted by the reprolint rules.

A finding pins one rule violation to a file position. Findings sort by
(path, line, col, rule id) so reports are stable across runs and across
the order files were visited in.

Since v3 a finding may carry a :class:`TextEdit` — a byte-exact
replacement the autofixer (:mod:`repro.lint.fix`) can apply when the fix
is mechanical (wrap in ``sorted()``, insert a ``*`` marker, delete a
stale suppression comment). The edit is advisory: it never participates
in ordering or equality, and reports are identical with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class TextEdit:
    """One source replacement: ``source[start:end]`` becomes ``text``.

    Offsets are 0-based character offsets into the file's source string.
    An insertion has ``start == end``; a deletion has ``text == ""``.
    """

    start: int
    end: int
    text: str

    def apply(self, source: str) -> str:
        """The source with this single edit applied."""
        return source[: self.start] + self.text + source[self.end :]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Mechanical autofix, when the rule can offer one (v3). Excluded
    #: from comparison/hash so findings stay report-stable.
    fix: TextEdit | None = field(default=None, compare=False)

    def format(self) -> str:
        """The canonical one-line report form (``path:line:col: RXXX msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form, used by ``iris lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "fixable": self.fix is not None,
        }
