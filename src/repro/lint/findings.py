"""Structured findings emitted by the reprolint rules.

A finding pins one rule violation to a file position. Findings sort by
(path, line, col, rule id) so reports are stable across runs and across
the order files were visited in.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """The canonical one-line report form (``path:line:col: RXXX msg``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form, used by ``iris lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
