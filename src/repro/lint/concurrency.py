"""repro.lint.concurrency — phase 4: thread-safety & resource lifecycle.

PR 9 made the reproduction a long-lived multi-threaded service (``iris
serve``: acceptor + worker threads sharing a job table behind
``self._lock``), which is exactly the layer where a silent race or a
leaked socket costs the most. This module adds the fourth analysis phase
on top of the v3 callgraph/summaries engine, plus five rules:

**R015 guarded-by inference.** For every class that spawns
``threading.Thread``\\ s, infer which ``self._*`` attributes are
consistently accessed under a lock. The lockset analysis is over ``with
self._lock:`` blocks and is threaded *interprocedurally*: a private
helper called only while a lock is held inherits that lockset at entry
(a must-analysis fixpoint over all call sites), so ``_evict_jobs_locked``
style helpers count as guarded. Unguarded accesses to majority-guarded
attributes are flagged, with the guarded sites quoted; intentional
lock-free accesses are blessed per line with ``# repro:
guarded-by[lock]`` (tracked by ``--report-unused-noqa`` like any noqa).

**R016 blocking-under-lock.** A new ``blocking`` effect (socket
accept/recv/sendall, ``queue.put``/``get`` in blocking mode,
``Event.wait``, ``Thread.join``, ``time.sleep``, and the planner entry
points — a full solve *is* a block from a lock's perspective) is
extracted per function in :mod:`repro.lint.summaries` and closed
transitively like every other effect. Any call performed while a lockset
is non-empty that directly blocks, or reaches blocking code through the
call graph, is flagged with the full chain.

**R017 lock-order cycles.** Every lock acquisition visible while another
lock is held — directly nested ``with`` blocks, or a call whose callee
may transitively acquire — becomes an edge in the may-acquire-after
graph over canonical lock names. Any strongly connected component of
two or more locks is a potential deadlock, reported once with the
acquisition chain of each direction; a re-acquisition of a known
non-reentrant ``threading.Lock`` is a self-deadlock.

**R018 resource lifecycle.** Must-release analysis for sockets, streams,
file handles, and execution-backend pools: every acquisition bound to a
local must reach ``close()``/``terminate()``/``shutdown()`` (or a
``with``/``finally``) on all paths including exceptional ones, or escape
the function — returned, handed to another call, or stored on ``self``
with a class-level release. Acquisitions resolve interprocedurally: a
helper whose summary says it *returns* a resource makes its callers
owners.

**R019 thread discipline.** ``threading.Thread`` must be constructed
``daemon=``-explicit or joined, and ``.wait()`` calls inside ``while``
worker loops must carry a timeout so a SIGTERM drain cannot hang.

Like the v3 phases, per-file facts (:class:`FileConcurrency`) are pure
functions of one file's source — serializable and cached under the
file's digest — while the cross-file products (entry locksets, the lock
graph, resolved resource returns) are rebuilt per run from cached facts
by :func:`build_concurrency` and exposed to rules as
``ctx.project.concurrency``.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.lint.callgraph import FileSyntax, split_function_id
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule
from repro.lint.summaries import (
    EffectOrigin,
    FunctionSummary,
    blocking_call_violation,
    chain_text,
    propagate_effects,
)

__all__ = [
    "ConcurrencyContext",
    "FileConcurrency",
    "FunctionConcurrency",
    "build_concurrency",
    "extract_concurrency",
]


# -- canonical lock names ------------------------------------------------------

#: Name fragments that make an attribute or variable "lock-ish".
_LOCKISH = ("lock", "mutex")

#: Bare names that are lock-ish without containing a fragment.
_LOCKISH_EXACT = frozenset({"cv", "cond", "condition"})

#: threading constructors -> lock kind (reentrancy matters for R017).
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
}


def _lockish(name: str) -> bool:
    lowered = name.lower()
    return (
        any(f in lowered for f in _LOCKISH)
        or lowered.lstrip("_") in _LOCKISH_EXACT
    )


def _dotted_text(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; None for anything non-dotted."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def canonical_lock(
    expr: ast.expr, class_name: str | None, module: str
) -> str | None:
    """The project-wide name of a lock a ``with`` item acquires, if any.

    ``self._lock`` in a method of ``PlannerService`` canonicalizes to
    ``PlannerService._lock`` (instance locks are per-object, but one name
    per class is the right granularity for ordering analysis); a bare
    module-level ``_LOCK`` to ``<module>._LOCK``. Calls are never locks —
    ``with self._guard():`` yields a fresh object per call.
    """
    parts = _dotted_text(expr)
    if not parts or not _lockish(parts[-1]):
        return None
    if parts[0] in ("self", "cls"):
        owner = class_name if class_name is not None else "self"
        return ".".join([owner, *parts[1:]])
    if len(parts) == 1:
        return f"{module}.{parts[0]}"
    return ".".join(parts)


# -- per-file facts (cacheable) ------------------------------------------------


@dataclass(frozen=True)
class FunctionConcurrency:
    """Concurrency-relevant facts of one function, from its source alone."""

    qualname: str
    #: ``(lock, line)`` for every ``with <lock>:`` acquisition.
    acquires: tuple[tuple[str, int], ...] = ()
    #: ``(outer, inner, line)`` for directly nested acquisitions.
    nested: tuple[tuple[str, str, int], ...] = ()
    #: ``(symbolic target, label, line, locks held)`` for project calls.
    calls: tuple[tuple[str, str, int, tuple[str, ...]], ...] = ()
    #: ``(attr, line, col, locks held, "read"|"write")`` for ``self.*``
    #: data accesses (methods and lock-ish attributes excluded).
    accesses: tuple[tuple[str, int, int, tuple[str, ...], str], ...] = ()
    #: Whether the body constructs a ``threading.Thread``.
    spawns_thread: bool = False
    #: ``"direct:<kind>"`` when a return statement hands back a fresh
    #: resource, ``"call:<target>"`` when it returns another function's
    #: result (resolved per run), else None.
    returns_resource: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "acquires": [list(a) for a in self.acquires],
            "nested": [list(n) for n in self.nested],
            "calls": [[t, la, li, list(lk)] for t, la, li, lk in self.calls],
            "accesses": [
                [a, li, c, list(lk), k] for a, li, c, lk, k in self.accesses
            ],
            "spawns_thread": self.spawns_thread,
            "returns_resource": self.returns_resource,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionConcurrency":
        return cls(
            qualname=str(data["qualname"]),
            acquires=tuple(
                (str(lk), int(li)) for lk, li in data.get("acquires", [])
            ),
            nested=tuple(
                (str(o), str(i), int(li)) for o, i, li in data.get("nested", [])
            ),
            calls=tuple(
                (str(t), str(la), int(li), tuple(str(x) for x in lk))
                for t, la, li, lk in data.get("calls", [])
            ),
            accesses=tuple(
                (str(a), int(li), int(c), tuple(str(x) for x in lk), str(k))
                for a, li, c, lk, k in data.get("accesses", [])
            ),
            spawns_thread=bool(data.get("spawns_thread", False)),
            returns_resource=data.get("returns_resource"),
        )


@dataclass
class FileConcurrency:
    """Phase-1 concurrency facts of one file (cacheable)."""

    path: str
    functions: dict[str, FunctionConcurrency] = field(default_factory=dict)
    #: Canonical lock name -> constructor kind ("lock", "rlock", ...).
    lock_kinds: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "functions": {
                q: f.to_dict() for q, f in sorted(self.functions.items())
            },
            "lock_kinds": dict(sorted(self.lock_kinds.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileConcurrency":
        return cls(
            path=str(data["path"]),
            functions={
                q: FunctionConcurrency.from_dict(f)
                for q, f in data.get("functions", {}).items()
            },
            lock_kinds=dict(data.get("lock_kinds", {})),
        )


# -- extraction ----------------------------------------------------------------

#: ``<module>.<attr>`` socket calls that hand back an open resource.
_SOCKET_ACQ = frozenset({"socket", "create_connection"})

#: Backend classes whose instances own process/thread pools.
_POOL_CLASSES = frozenset({"ProcessBackend", "WorkStealingBackend"})


def _acquisition_kind_syntactic(call: ast.Call) -> str | None:
    """Resource kind a call acquires, judged from the call shape alone."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file handle"
        if func.id in _POOL_CLASSES:
            return "worker pool"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    parts = _dotted_text(func)
    root = parts[0] if parts else None
    if root == "socket" and func.attr in _SOCKET_ACQ:
        return "socket"
    if func.attr == "makefile":
        return "stream"
    if func.attr == "accept" and not call.args:
        return "socket"
    if root == "subprocess" and func.attr == "Popen":
        return "process"
    if func.attr in _POOL_CLASSES:
        return "worker pool"
    return None


def _lock_kind_of(value: ast.expr) -> str | None:
    """The threading-lock kind a constructor call builds, if any."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        parts = _dotted_text(func)
        if parts and parts[0] == "threading":
            name = func.attr
    return _LOCK_CTORS.get(name) if name is not None else None


def _is_thread_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    return isinstance(func, ast.Attribute) and func.attr == "Thread"


class _FunctionWalker:
    """One function body, walked with the current local lockset."""

    def __init__(
        self,
        syntax: FileSyntax,
        qualname: str,
        class_name: str | None,
        is_dunder_init: bool,
        methods: frozenset[str],
    ) -> None:
        self.syntax = syntax
        self.qualname = qualname
        self.class_name = class_name
        self.is_dunder_init = is_dunder_init
        self.methods = methods
        self.acquires: list[tuple[str, int]] = []
        self.nested: list[tuple[str, str, int]] = []
        self.calls: list[tuple[str, str, int, tuple[str, ...]]] = []
        self.accesses: list[tuple[str, int, int, tuple[str, ...], str]] = []
        self.spawns_thread = False
        self.returns_resource: str | None = None
        self.lock_kinds: dict[str, str] = {}

    def walk(self, node: ast.AST, locks: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                self._walk_with(child, locks)
                continue
            self._visit(child, locks)
            self.walk(child, locks)

    def _walk_with(
        self, node: ast.With | ast.AsyncWith, locks: tuple[str, ...]
    ) -> None:
        held = locks
        for item in node.items:
            # The context expression evaluates before acquisition.
            self._visit(item.context_expr, held)
            self.walk(item.context_expr, held)
            lock = canonical_lock(
                item.context_expr, self.class_name, self.syntax.module
            )
            if lock is not None:
                self.acquires.append((lock, node.lineno))
                for outer in held:
                    self.nested.append((outer, lock, node.lineno))
                if lock not in held:
                    held = (*held, lock)
        for stmt in node.body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_with(stmt, held)
            else:
                self._visit(stmt, held)
                self.walk(stmt, held)

    def _visit(self, child: ast.AST, locks: tuple[str, ...]) -> None:
        if isinstance(child, ast.Call):
            if _is_thread_ctor(child):
                self.spawns_thread = True
            resolved = self.syntax.resolve_call_expr(child.func, self.qualname)
            if resolved is not None:
                target, label = resolved
                self.calls.append((target, label, child.lineno, locks))
        elif isinstance(child, ast.Attribute):
            self._visit_attribute(child, locks)
        elif isinstance(child, ast.Assign):
            self._visit_assign(child)
        elif isinstance(child, ast.Return) and child.value is not None:
            self._visit_return(child.value)

    def _visit_attribute(
        self, node: ast.Attribute, locks: tuple[str, ...]
    ) -> None:
        if self.class_name is None or self.is_dunder_init:
            return
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        if _lockish(node.attr):
            return
        if f"{self.class_name}.{node.attr}" in self.methods:
            return  # a bound-method reference, not shared data
        kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        self.accesses.append(
            (node.attr, node.lineno, node.col_offset + 1, locks, kind)
        )

    def _visit_assign(self, node: ast.Assign) -> None:
        kind = _lock_kind_of(node.value)
        if kind is None:
            return
        for target in node.targets:
            lock = canonical_lock(target, self.class_name, self.syntax.module)
            if lock is not None:
                self.lock_kinds.setdefault(lock, kind)

    def _visit_return(self, value: ast.expr) -> None:
        if self.returns_resource is not None:
            return
        if isinstance(value, ast.Call):
            kind = _acquisition_kind_syntactic(value)
            if kind is not None:
                self.returns_resource = f"direct:{kind}"
                return
            resolved = self.syntax.resolve_call_expr(value.func, self.qualname)
            if resolved is not None:
                self.returns_resource = f"call:{resolved[0]}"


def extract_concurrency(tree: ast.AST, syntax: FileSyntax) -> FileConcurrency:
    """Phase-1 concurrency facts of one live-parsed file.

    A pure function of the file's source text (like the v3 summaries),
    which is what lets :mod:`repro.lint.project` cache the result under
    the file's content digest.
    """
    out = FileConcurrency(path=syntax.path)
    methods = frozenset(syntax.functions)
    for node, qualname in sorted(
        syntax.node_qualnames.items(), key=lambda kv: kv[1]
    ):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info = syntax.functions[qualname]
        walker = _FunctionWalker(
            syntax,
            qualname,
            info.class_name,
            is_dunder_init=info.name in ("__init__", "__del__"),
            methods=methods,
        )
        walker.walk(node, ())
        out.functions[qualname] = FunctionConcurrency(
            qualname=qualname,
            acquires=tuple(walker.acquires),
            nested=tuple(walker.nested),
            calls=tuple(walker.calls),
            accesses=tuple(walker.accesses),
            spawns_thread=walker.spawns_thread,
            returns_resource=walker.returns_resource,
        )
        out.lock_kinds.update(walker.lock_kinds)
    # Module-level lock constructions (`_LOCK = threading.Lock()`).
    if isinstance(tree, ast.Module):
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                kind = _lock_kind_of(stmt.value)
                if kind is None:
                    continue
                for target in stmt.targets:
                    lock = canonical_lock(target, None, syntax.module)
                    if lock is not None:
                        out.lock_kinds.setdefault(lock, kind)
    return out


# -- the cross-file build ------------------------------------------------------


def _digest(obj: Any) -> str:
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fid(path: str, qualname: str) -> str:
    return f"{path}::{qualname}"


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


@dataclass
class ConcurrencyContext:
    """Phase-4 product: the cross-file lockset and lifecycle facts.

    Attached to :class:`repro.lint.project.ProjectContext` as
    ``.concurrency``; the precomputed findings (``unguarded``,
    ``cycles``) are replayed by the R015/R017 rule bodies during normal
    per-file dispatch so suppression, caching, and ``--disable`` all work
    unchanged.
    """

    files: dict[str, FileConcurrency] = field(default_factory=dict)
    #: Locks provably held at entry of every call site (must-analysis).
    entry_locks: dict[str, frozenset[str]] = field(default_factory=dict)
    #: path -> precomputed R015 findings: (line, col, message).
    unguarded: dict[str, list[tuple[int, int, str]]] = field(
        default_factory=dict
    )
    #: path -> precomputed R017 findings: (line, col, message).
    cycles: dict[str, list[tuple[int, int, str]]] = field(default_factory=dict)
    #: fid -> resource kind for functions that return a fresh resource.
    resources: dict[str, str] = field(default_factory=dict)
    digest: str = ""

    def function_facts(self, fid: str) -> FunctionConcurrency | None:
        path, qualname = split_function_id(fid)
        conc = self.files.get(path)
        if conc is None:
            return None
        return conc.functions.get(qualname)


def _resolve_resources(
    concs: Mapping[str, FileConcurrency],
    resolve: Callable[[str, str], str | None],
) -> dict[str, str]:
    """``fid -> resource kind`` with ``call:`` chains followed (memoized)."""
    raw: dict[str, str] = {}
    for path, conc in concs.items():
        for qualname, facts in conc.functions.items():
            if facts.returns_resource is not None:
                raw[_fid(path, qualname)] = facts.returns_resource
    resolved: dict[str, str | None] = {}

    def final(fid: str, seen: frozenset[str]) -> str | None:
        if fid in resolved:
            return resolved[fid]
        if fid in seen:
            return None
        spec = raw.get(fid)
        out: str | None = None
        if spec is not None and spec.startswith("direct:"):
            out = spec.removeprefix("direct:")
        elif spec is not None and spec.startswith("call:"):
            path, _ = split_function_id(fid)
            callee = resolve(path, spec.removeprefix("call:"))
            if callee is not None:
                out = final(callee, seen | {fid})
        resolved[fid] = out
        return out

    return {
        fid: kind
        for fid in sorted(raw)
        if (kind := final(fid, frozenset())) is not None
    }


def _entry_lock_fixpoint(
    concs: Mapping[str, FileConcurrency],
    resolve: Callable[[str, str], str | None],
    all_locks: frozenset[str],
) -> dict[str, frozenset[str]]:
    """Locks provably held at entry of every resolved call site.

    A must-analysis: ``entry[f] = ⋂ over call sites (local locks at the
    site ∪ entry[caller])``. Only private (``_name``) functions inherit —
    a public method is an external entry point and gets the empty set.
    Sets shrink monotonically from ⊤, so the fixpoint terminates.
    """
    call_sites: dict[str, list[tuple[str, frozenset[str]]]] = {}
    names: dict[str, str] = {}
    for path, conc in concs.items():
        for qualname, facts in conc.functions.items():
            caller = _fid(path, qualname)
            names[caller] = qualname.rsplit(".", 1)[-1]
            for target, _label, _line, locks in facts.calls:
                callee = resolve(path, target)
                if callee is not None:
                    call_sites.setdefault(callee, []).append(
                        (caller, frozenset(locks))
                    )
    entry: dict[str, frozenset[str]] = {}
    for fid, name in names.items():
        if _is_private(name) and call_sites.get(fid):
            entry[fid] = all_locks
        else:
            entry[fid] = frozenset()
    changed = True
    while changed:
        changed = False
        for fid in sorted(call_sites):
            if fid not in entry or not entry[fid]:
                continue
            if not _is_private(names.get(fid, "")):
                continue
            merged: frozenset[str] | None = None
            for caller, locks in call_sites[fid]:
                held = locks | entry.get(caller, frozenset())
                merged = held if merged is None else (merged & held)
            merged = merged if merged is not None else frozenset()
            if merged != entry[fid]:
                entry[fid] = merged
                changed = True
    return entry


def _lock_display(lock: str) -> str:
    """Short annotation form of a canonical lock (``_lock``)."""
    return lock.rsplit(".", 1)[-1]


def _guarded_findings(
    concs: Mapping[str, FileConcurrency],
    entry: Mapping[str, frozenset[str]],
) -> dict[str, list[tuple[int, int, str]]]:
    """Precomputed R015 findings per path."""
    out: dict[str, list[tuple[int, int, str]]] = {}
    for path in sorted(concs):
        conc = concs[path]
        # Group methods by class; only thread-spawning classes qualify.
        classes: dict[str, list[str]] = {}
        for qualname in sorted(conc.functions):
            if "." in qualname and "<locals>" not in qualname:
                classes.setdefault(qualname.rsplit(".", 1)[0], []).append(
                    qualname
                )
        for class_name in sorted(classes):
            members = classes[class_name]
            if not any(
                conc.functions[q].spawns_thread for q in members
            ):
                continue
            # attr -> [(line, col, effective locks)]
            sites: dict[str, list[tuple[int, int, frozenset[str]]]] = {}
            for qualname in members:
                facts = conc.functions[qualname]
                inherited = entry.get(_fid(path, qualname), frozenset())
                for attr, line, col, locks, _kind in facts.accesses:
                    sites.setdefault(attr, []).append(
                        (line, col, frozenset(locks) | inherited)
                    )
            for attr in sorted(sites):
                accesses = sites[attr]
                counts: dict[str, int] = {}
                for _line, _col, locks in accesses:
                    for lock in locks:
                        counts[lock] = counts.get(lock, 0) + 1
                if not counts:
                    continue
                majority = min(
                    (lock for lock in counts),
                    key=lambda lock: (-counts[lock], lock),
                )
                guarded = counts[majority]
                total = len(accesses)
                if guarded < 2 or guarded * 2 <= total:
                    continue
                examples = sorted(
                    line
                    for line, _col, locks in accesses
                    if majority in locks
                )[:2]
                quoted = ", ".join(f"{path}:{line}" for line in examples)
                for line, col, locks in sorted(accesses):
                    if majority in locks:
                        continue
                    out.setdefault(path, []).append(
                        (
                            line,
                            col,
                            f"`self.{attr}` is accessed without holding "
                            f"`{majority}`, but {guarded} of {total} "
                            f"accesses in `{class_name}` hold it (e.g. "
                            f"{quoted}); `{class_name}` spawns threads — "
                            "guard this access, or bless it with "
                            "`# repro: guarded-by"
                            f"[{_lock_display(majority)}]` if it is safe",
                        )
                    )
    return out


def _lock_graph(
    concs: Mapping[str, FileConcurrency],
    summaries: Mapping[str, FunctionSummary],
    entry: Mapping[str, frozenset[str]],
    resolve: Callable[[str, str], str | None],
) -> list[tuple[str, str, str, int, str]]:
    """May-acquire-after edges: ``(outer, inner, path, line, chain text)``.

    Direct edges come from nested ``with`` blocks; transitive ones from a
    call made while a lock is held whose callee may acquire (closed
    bottom-up over the call graph with the same SCC machinery as the v3
    effect closure, so the chain each edge quotes is deterministic).
    """
    # Pseudo-effect closure: "acq:<lock>" propagates like any effect.
    seed: dict[str, dict[str, EffectOrigin]] = {
        fid: {} for fid in summaries
    }
    edges_for_propagation: dict[str, list[tuple[str, str, int]]] = {}
    for path in sorted(concs):
        for qualname, facts in sorted(concs[path].functions.items()):
            fid = _fid(path, qualname)
            if fid not in seed:
                continue
            for lock, line in facts.acquires:
                seed[fid].setdefault(
                    f"acq:{lock}",
                    EffectOrigin(
                        f"acq:{lock}",
                        f"`{lock}` acquired at {path}:{line}",
                    ),
                )
            for target, label, line, _locks in facts.calls:
                callee = resolve(path, target)
                if callee is not None and callee in summaries:
                    edges_for_propagation.setdefault(fid, []).append(
                        (callee, label, line)
                    )
    closure = propagate_effects(
        summaries, edges_for_propagation, seed_effects=seed
    )

    graph_edges: list[tuple[str, str, str, int, str]] = []
    for path in sorted(concs):
        for qualname, facts in sorted(concs[path].functions.items()):
            fid = _fid(path, qualname)
            inherited = entry.get(fid, frozenset())
            for outer, inner, line in facts.nested:
                graph_edges.append(
                    (
                        outer,
                        inner,
                        path,
                        line,
                        f"`{inner}` acquired at {path}:{line} while "
                        f"holding `{outer}`",
                    )
                )
            for lock, line in facts.acquires:
                for outer in sorted(inherited):
                    graph_edges.append(
                        (
                            outer,
                            lock,
                            path,
                            line,
                            f"`{lock}` acquired at {path}:{line} in "
                            f"`{qualname}()` (entered holding `{outer}`)",
                        )
                    )
            for target, label, line, locks in facts.calls:
                held = frozenset(locks) | inherited
                if not held:
                    continue
                callee = resolve(path, target)
                if callee is None:
                    continue
                for effect, origin in sorted(
                    closure.get(callee, {}).items()
                ):
                    if not effect.startswith("acq:"):
                        continue
                    inner = effect.removeprefix("acq:")
                    chained = EffectOrigin(
                        effect, origin.origin, ((label, line), *origin.chain)
                    )
                    for outer in sorted(held):
                        graph_edges.append(
                            (outer, inner, path, line, chain_text(chained))
                        )
    return graph_edges


def _cycle_findings(
    edges: Sequence[tuple[str, str, str, int, str]],
    lock_kinds: Mapping[str, str],
) -> dict[str, list[tuple[int, int, str]]]:
    """Precomputed R017 findings per path, one per cycle."""
    from repro.lint.callgraph import tarjan_scc

    out: dict[str, list[tuple[int, int, str]]] = {}

    # Self-deadlock: re-acquiring a known non-reentrant lock.
    seen_self: set[tuple[str, str, int]] = set()
    for outer, inner, path, line, text in sorted(edges):
        if outer != inner or lock_kinds.get(inner) != "lock":
            continue
        key = (inner, path, line)
        if key in seen_self:
            continue
        seen_self.add(key)
        out.setdefault(path, []).append(
            (
                line,
                1,
                f"non-reentrant lock `{inner}` may be re-acquired while "
                f"already held ({text}); this deadlocks the thread — use "
                "an RLock or move the inner acquisition out",
            )
        )

    graph: dict[str, list[str]] = {}
    for outer, inner, _path, _line, _text in edges:
        graph.setdefault(outer, []).append(inner)
        graph.setdefault(inner, [])
    for component in tarjan_scc(graph):
        if len(component) < 2:
            continue
        members = set(component)
        # First edge per direction, by source position.
        first: dict[tuple[str, str], tuple[str, int, str]] = {}
        for outer, inner, path, line, text in sorted(
            edges, key=lambda e: (e[2], e[3], e[0], e[1])
        ):
            if outer in members and inner in members and outer != inner:
                first.setdefault((outer, inner), (path, line, text))
        if not first:
            continue
        directions = "; ".join(
            f"`{outer}` → `{inner}` ({text})"
            for (outer, inner), (_p, _l, text) in sorted(first.items())
        )
        locks = ", ".join(f"`{lock}`" for lock in sorted(members))
        home_path, home_line, _ = min(first.values())
        out.setdefault(home_path, []).append(
            (
                home_line,
                1,
                f"potential deadlock: lock acquisition order cycle among "
                f"{locks} — {directions}; pick one global acquisition "
                "order",
            )
        )
    return out


def build_concurrency(
    concs: Mapping[str, FileConcurrency],
    summaries: Mapping[str, FunctionSummary],
    resolve: Callable[[str, str], str | None],
) -> ConcurrencyContext:
    """Phase 4: cross-file lockset/lifecycle products from per-file facts.

    ``resolve(path, symbolic_target)`` maps a symbolic call target seen
    from ``path`` to a project function id (the same resolution the v3
    phases use). Pure graph math over cacheable facts — cached files
    participate without re-parsing.
    """
    lock_kinds: dict[str, str] = {}
    all_locks: set[str] = set()
    for path in sorted(concs):
        conc = concs[path]
        for lock, kind in conc.lock_kinds.items():
            lock_kinds.setdefault(lock, kind)
        all_locks.update(conc.lock_kinds)
        for facts in conc.functions.values():
            all_locks.update(lock for lock, _line in facts.acquires)

    entry = _entry_lock_fixpoint(concs, resolve, frozenset(all_locks))
    unguarded = _guarded_findings(concs, entry)
    edges = _lock_graph(concs, summaries, entry, resolve)
    cycles = _cycle_findings(edges, lock_kinds)
    resources = _resolve_resources(concs, resolve)

    digest = _digest(
        {
            "entry": {fid: sorted(locks) for fid, locks in entry.items()},
            "unguarded": {
                path: [list(f) for f in findings]
                for path, findings in unguarded.items()
            },
            "cycles": {
                path: [list(f) for f in findings]
                for path, findings in cycles.items()
            },
            "resources": resources,
        }
    )
    return ConcurrencyContext(
        files=dict(concs),
        entry_locks=entry,
        unguarded=unguarded,
        cycles=cycles,
        resources=resources,
        digest=digest,
    )


# -- dispatch-time helpers -----------------------------------------------------


def _concurrency_of(ctx: FileContext) -> ConcurrencyContext | None:
    project = ctx.project
    if project is None:
        return None
    return getattr(project, "concurrency", None)


def _enclosing_class_name(ctx: FileContext, node: ast.AST) -> str | None:
    if ctx.syntax is None:
        return None
    scope = ctx.scope_qualname(node)
    if scope is None:
        return None
    info = ctx.syntax.functions.get(scope)
    return info.class_name if info is not None else None


def _held_locks(node: ast.AST, ctx: FileContext) -> list[tuple[str, int]]:
    """Locks held at ``node`` by lexically enclosing ``with`` blocks."""
    if ctx.syntax is None:
        return []
    class_name = _enclosing_class_name(ctx, node)
    module = ctx.syntax.module
    held: list[tuple[str, int]] = []
    prev: ast.AST = node
    current = ctx.parent(node)
    while current is not None:
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            break
        if isinstance(current, (ast.With, ast.AsyncWith)):
            items = current.items
            if isinstance(prev, ast.withitem) and prev in items:
                # Arrived from inside an item: only earlier items are held.
                items = items[: items.index(prev)]
            for item in items:
                lock = canonical_lock(item.context_expr, class_name, module)
                if lock is not None:
                    held.append((lock, current.lineno))
        prev = current
        current = ctx.parent(current)
    held.reverse()
    return held


# -- R016: blocking under lock -------------------------------------------------


@rule(
    "R016",
    title="no blocking calls under a lock",
    invariant=(
        "a thread holding a service lock never parks on the network, a "
        "queue, another thread, or a planner solve — blocking under a "
        "lock serializes the daemon and risks deadlock with the very "
        "threads that would unblock it"
    ),
    nodes=(ast.Call,),
)
def blocking_under_lock(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    held = _held_locks(node, ctx)
    if not held:
        return
    locks_text = ", ".join(
        f"`{lock}` (acquired at line {line})" for lock, line in held
    )
    direct = blocking_call_violation(node)
    if direct is not None:
        yield ctx.finding(
            node,
            "R016",
            f"`{direct}` may block while holding {locks_text}; move the "
            "blocking call outside the lock or use a non-blocking form",
        )
        return
    if ctx.project is None:
        return
    resolved = ctx.resolve_call(node)
    if resolved is None:
        return
    fid, label = resolved
    origin = ctx.project.effects_of(fid).get("blocking")
    if origin is None:
        return
    yield ctx.finding(
        node,
        "R016",
        f"call to `{label}()` reaches code that may block "
        f"({chain_text(origin)}) while holding {locks_text}; move the "
        "blocking work outside the lock",
    )


# -- R015 / R017: precomputed cross-file findings ------------------------------


@rule(
    "R015",
    title="guarded-by consistency for thread-shared attributes",
    invariant=(
        "an attribute the class consistently protects with a lock is "
        "never read or written without it — one unguarded access is a "
        "data race against every guarded one"
    ),
    nodes=(ast.Module,),
)
def guarded_by(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    conc = _concurrency_of(ctx)
    if conc is None:
        return
    for line, col, message in conc.unguarded.get(ctx.path, ()):
        yield Finding(ctx.path, line, col, "R015", message)


@rule(
    "R017",
    title="lock acquisition order is acyclic",
    invariant=(
        "the may-acquire-after relation over all locks is a partial "
        "order — a cycle means two threads can each hold what the other "
        "waits for"
    ),
    nodes=(ast.Module,),
)
def lock_order(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    conc = _concurrency_of(ctx)
    if conc is None:
        return
    for line, col, message in conc.cycles.get(ctx.path, ()):
        yield Finding(ctx.path, line, col, "R017", message)


# -- R018: resource lifecycle --------------------------------------------------

#: Method names that release an acquired resource.
_RELEASES = frozenset({"close", "terminate", "shutdown", "kill", "release"})


def _acquisition_kind(call: ast.Call, ctx: FileContext) -> str | None:
    """Resource kind a call acquires — syntactic or via resolved summary."""
    kind = _acquisition_kind_syntactic(call)
    if kind is not None:
        return kind
    conc = _concurrency_of(ctx)
    if conc is None:
        return None
    resolved = ctx.resolve_call(call)
    if resolved is None:
        return None
    return conc.resources.get(resolved[0])


def _own_statements(node: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body, excluding nested function bodies."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, ast.stmt):
            yield child
        yield from _own_statements(child)


def _own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _own_nodes(child)


def _is_release_call(node: ast.AST, var: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RELEASES
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == var
    )


def _subtree_releases(node: ast.AST, var: str) -> bool:
    return any(_is_release_call(child, var) for child in ast.walk(node))


def _attr_release_call(node: ast.AST, attr: str) -> bool:
    """``self.<attr>.close()``-shaped release."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RELEASES
        and isinstance(node.func.value, ast.Attribute)
        and node.func.value.attr == attr
        and isinstance(node.func.value.value, ast.Name)
        and node.func.value.value.id == "self"
    )


def _class_releases(class_node: ast.ClassDef, attr: str) -> bool:
    """Whether any method of the class releases ``self.<attr>``.

    Covers the direct form (``self._sock.close()``), the ``with
    self._sock:`` form, and the local-alias form the daemon uses
    (``listener = self._listener`` ... ``listener.close()``).
    """
    for node in ast.walk(class_node):
        if _attr_release_call(node, attr):
            return True
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr == attr
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
    # Alias form, per method: `x = self.<attr>` then `x.close()`.
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        aliases: list[str] = []
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == attr
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.append(target.id)
        for alias in aliases:
            if _subtree_releases(method, alias):
                return True
    return False


def _enclosing_class(ctx: FileContext, node: ast.AST) -> ast.ClassDef | None:
    current = ctx.parent(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = ctx.parent(current)
    return None


def _protecting_try(
    ctx: FileContext, node: ast.AST, var: str, stop: ast.AST
) -> bool:
    """Whether ``node`` sits inside a ``try`` that releases ``var`` on
    failure (an except handler or finally block containing the release)."""
    current = ctx.parent(node)
    while current is not None and current is not stop:
        if isinstance(current, ast.Try):
            for handler in current.handlers:
                if any(_subtree_releases(stmt, var) for stmt in handler.body):
                    return True
            if any(_subtree_releases(stmt, var) for stmt in current.finalbody):
                return True
        current = ctx.parent(current)
    return False


def _is_var_element(value: ast.expr | None, var: str) -> bool:
    if isinstance(value, ast.Name):
        return value.id == var
    if isinstance(value, (ast.Tuple, ast.List)):
        return any(
            isinstance(e, ast.Name) and e.id == var for e in value.elts
        )
    return False


def _name_escapes(node: ast.AST, var: str) -> bool:
    """Whether a statement transfers ownership of ``var`` elsewhere.

    Deliberately *direct*: returning the variable itself (or a tuple of
    it), passing it as a bare call argument, or re-binding it to another
    name. Merely *using* it — ``list(var.iter_chunks(...))`` — is not a
    transfer; the variable still owns the resource afterwards and must
    release it.
    """
    for child in ast.walk(node):
        if isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
            if _is_var_element(getattr(child, "value", None), var):
                return True
        if isinstance(child, ast.Call):
            for arg in [*child.args, *[k.value for k in child.keywords]]:
                # Bare-name or tuple-of-names argument: ownership moves
                # to the callee (``Thread(args=(conn,))`` hands the
                # accepted socket to the connection thread).
                if _is_var_element(arg, var):
                    return True
                if (
                    isinstance(arg, ast.Starred)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == var
                ):
                    return True
        if isinstance(child, ast.Assign) and _is_var_element(
            child.value, var
        ):
            return True
    return False


def _self_store_attr(node: ast.AST, var: str) -> str | None:
    """``self.X = var`` anywhere in ``node`` → ``X``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Assign)
            and isinstance(child.value, ast.Name)
            and child.value.id == var
        ):
            for target in child.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return target.attr
    return None


def _acquired_local(stmt: ast.Assign, ctx: FileContext) -> tuple[str, str] | None:
    """``(var, kind)`` when an assignment binds a fresh resource locally."""
    if not isinstance(stmt.value, ast.Call) or len(stmt.targets) != 1:
        return None
    kind = _acquisition_kind(stmt.value, ctx)
    if kind is None:
        return None
    target = stmt.targets[0]
    if isinstance(target, ast.Name):
        return target.id, kind
    # `conn, addr = listener.accept()` — the first element owns the socket.
    if (
        isinstance(target, ast.Tuple)
        and kind == "socket"
        and target.elts
        and isinstance(target.elts[0], ast.Name)
    ):
        return target.elts[0].id, kind
    return None


def _self_assigned_resource(
    stmt: ast.Assign, ctx: FileContext
) -> tuple[str, str] | None:
    """``(attr, kind)`` when ``self.X = <acquisition>()``."""
    if not isinstance(stmt.value, ast.Call) or len(stmt.targets) != 1:
        return None
    kind = _acquisition_kind(stmt.value, ctx)
    if kind is None:
        return None
    target = stmt.targets[0]
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, kind
    return None


@rule(
    "R018",
    title="resources released on every path",
    invariant=(
        "every socket, stream, file handle, and worker pool acquired "
        "reaches close()/terminate()/shutdown() on all paths — including "
        "exceptional ones — or escapes to an owner with a release"
    ),
    nodes=(ast.FunctionDef, ast.AsyncFunctionDef),
)
def resource_lifecycle(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    statements = list(_own_statements(node))
    for stmt in statements:
        if not isinstance(stmt, ast.Assign):
            continue
        self_stored = _self_assigned_resource(stmt, ctx)
        if self_stored is not None:
            attr, kind = self_stored
            class_node = _enclosing_class(ctx, node)
            if class_node is None or not _class_releases(class_node, attr):
                owner = class_node.name if class_node is not None else "owner"
                yield ctx.finding(
                    stmt,
                    "R018",
                    f"`self.{attr}` holds a {kind} but no method of "
                    f"`{owner}` releases it; add a close()/terminate() "
                    "path so shutdown does not leak it",
                )
            elif node.name == "__init__":
                yield from _init_leak_findings(node, ctx, stmt, attr, kind)
            continue
        acquired = _acquired_local(stmt, ctx)
        if acquired is None:
            continue
        var, kind = acquired
        yield from _local_lifecycle_findings(node, ctx, stmt, var, kind)


def _local_lifecycle_findings(
    func: ast.AST,
    ctx: FileContext,
    acq: ast.Assign,
    var: str,
    kind: str,
) -> Iterator[Finding]:
    releases: list[tuple[int, bool]] = []  # (line, covers all paths)
    for stmt in _own_statements(func):
        if stmt.lineno <= acq.lineno:
            continue
        for sub in ast.walk(stmt):
            if _is_release_call(sub, var):
                all_paths = _in_finally(ctx, stmt, func)
                releases.append((stmt.lineno, all_paths))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                managed = expr
                if isinstance(expr, ast.Call) and expr.args:
                    managed = expr.args[0]  # contextlib.closing(var)
                if isinstance(managed, ast.Name) and managed.id == var:
                    releases.append((stmt.lineno, True))

    escape_line: int | None = None
    stored_attr: str | None = None
    for stmt in _own_statements(func):
        if stmt.lineno < acq.lineno or stmt is acq:
            continue
        attr = _self_store_attr(stmt, var)
        if attr is not None:
            stored_attr = attr
            escape_line = min(escape_line or stmt.lineno, stmt.lineno)
            continue
        if _name_escapes(stmt, var):
            escape_line = min(escape_line or stmt.lineno, stmt.lineno)

    if any(all_paths for _line, all_paths in releases):
        return  # a finally/with covers every path

    end_line = min(
        [line for line, _all in releases] + ([escape_line] if escape_line else [])
        or [None],  # type: ignore[list-item]
        key=lambda v: v if v is not None else 1 << 30,
    )
    if end_line is None:
        yield ctx.finding(
            acq,
            "R018",
            f"{kind} `{var}` acquired here is never released on any "
            "path; close it in a finally block or use a with statement",
        )
        return

    risky = _risky_lines(ctx, func, acq, var, end_line)
    if risky:
        first = risky[0]
        target = (
            f"stored/escaped at line {escape_line}"
            if escape_line is not None and escape_line <= end_line
            else f"closed at line {end_line}"
        )
        yield ctx.finding(
            acq,
            "R018",
            f"{kind} `{var}` leaks if line {first} raises before it is "
            f"{target}; wrap the setup in try/except with a close, or "
            "release in a finally block",
        )
        return

    if stored_attr is not None and (
        not releases or escape_line < min(line for line, _all in releases)
    ):
        class_node = _enclosing_class(ctx, func)
        if class_node is None or not _class_releases(class_node, stored_attr):
            owner = class_node.name if class_node is not None else "owner"
            yield ctx.finding(
                acq,
                "R018",
                f"`self.{stored_attr}` takes ownership of {kind} `{var}` "
                f"but no method of `{owner}` releases it; add a "
                "close()/terminate() path",
            )


def _attr_protecting_try(
    ctx: FileContext, node: ast.AST, attr: str, stop: ast.AST
) -> bool:
    """Whether ``node`` sits inside a ``try`` whose handlers or finally
    release ``self.<attr>`` — i.e. failure there does not leak it."""
    current = ctx.parent(node)
    while current is not None and current is not stop:
        if isinstance(current, ast.Try):
            for handler in current.handlers:
                if any(
                    _attr_release_call(sub, attr)
                    for stmt in handler.body
                    for sub in ast.walk(stmt)
                ):
                    return True
            if any(
                _attr_release_call(sub, attr)
                for stmt in current.finalbody
                for sub in ast.walk(stmt)
            ):
                return True
        current = ctx.parent(current)
    return False


def _in_except_handler(ctx: FileContext, node: ast.AST, stop: ast.AST) -> bool:
    """Whether ``node`` lives in an except handler within ``stop``.

    Handler code only runs when the guarded body already raised, so a
    call there cannot be the *first* failure after a successful
    acquisition — it is never the leak site the ``__init__`` check hunts.
    """
    prev: ast.AST = node
    current = ctx.parent(node)
    while current is not None and current is not stop:
        if isinstance(current, ast.Try) and any(
            prev is handler for handler in current.handlers
        ):
            return True
        prev = current
        current = ctx.parent(current)
    return False


def _init_leak_findings(
    func: ast.AST,
    ctx: FileContext,
    acq: ast.Assign,
    attr: str,
    kind: str,
) -> Iterator[Finding]:
    """The half-open-constructor leak: ``self.<attr>`` holds a fresh
    resource, and a later ``__init__`` statement can raise — the caller
    never receives the instance, so the class's release path is dead and
    the resource leaks. (This is how a failed ``makefile()`` after a
    successful ``create_connection()`` strands the socket.)"""
    risky: list[int] = []
    for node in _own_nodes(func):
        if not isinstance(node, ast.Call) or node.lineno <= acq.lineno:
            continue
        if _attr_release_call(node, attr):
            continue
        if _in_except_handler(ctx, node, func):
            continue
        if _attr_protecting_try(ctx, node, attr, func):
            continue
        risky.append(node.lineno)
    if not risky:
        return
    yield ctx.finding(
        acq,
        "R018",
        f"`self.{attr}` takes ownership of a {kind}, but line "
        f"{min(risky)} can still raise inside __init__ — the caller "
        "never gets the instance, so close() is unreachable and the "
        f"{kind} leaks; wrap the rest of __init__ in try/except and "
        f"release `self.{attr}` on failure",
    )


def _in_finally(ctx: FileContext, stmt: ast.stmt, func: ast.AST) -> bool:
    """Whether ``stmt`` executes in a ``finally`` block within ``func``."""
    current: ast.AST | None = stmt
    while current is not None and current is not func:
        parent = ctx.parent(current)
        if isinstance(parent, ast.Try) and current in parent.finalbody:
            return True
        current = parent
    return False


def _risky_lines(
    ctx: FileContext,
    func: ast.AST,
    acq: ast.Assign,
    var: str,
    end_line: int,
) -> list[int]:
    """Raise-capable call lines between acquisition and release/escape
    that are not protected by a try releasing ``var`` on failure."""
    out: list[int] = []
    for node in _own_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        if not (acq.lineno < node.lineno < end_line):
            continue
        if _is_release_call(node, var):
            continue
        if _in_except_handler(ctx, node, func):
            continue  # only reachable when an earlier line already raised
        if _protecting_try(ctx, node, var, func):
            continue
        out.append(node.lineno)
    return sorted(set(out))


# -- R019: thread discipline ---------------------------------------------------


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _joined_in(scope: ast.AST, var: str) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var
        ):
            return True
    return False


def _is_self_attr(expr: ast.expr, attr: str) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == attr
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def _attr_elements_joined(scope: ast.AST, attr: str) -> bool:
    """``for t in self.<attr>: t.join(...)`` (or over ``list(self.<attr>)``)."""
    for node in ast.walk(scope):
        if _attr_release_call(node, attr):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and _is_self_attr(node.func.value, attr)
        ):
            return True
        if not isinstance(node, ast.For):
            continue
        iterable = node.iter
        if isinstance(iterable, ast.Call) and iterable.args:
            iterable = iterable.args[0]
        if not _is_self_attr(iterable, attr):
            continue
        if isinstance(node.target, ast.Name) and _joined_in(node, node.target.id):
            return True
    return False


@rule(
    "R019",
    title="threads are daemon-or-joined; waits carry timeouts",
    invariant=(
        "every spawned thread has a shutdown story — marked daemon or "
        "joined — and no worker loop waits without a timeout, so a "
        "SIGTERM drain always terminates"
    ),
    nodes=(ast.Call,),
)
def thread_discipline(node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
    assert isinstance(node, ast.Call)
    if _is_thread_ctor(node):
        yield from _thread_ctor_findings(node, ctx)
        return
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "wait"):
        return
    if node.args or _has_kwarg(node, "timeout"):
        return
    # Only waits inside a while loop (a worker loop) are a drain hazard.
    current = ctx.parent(node)
    in_while = False
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        if isinstance(current, ast.While):
            in_while = True
            break
        current = ctx.parent(current)
    if not in_while:
        return
    yield ctx.finding(
        node,
        "R019",
        "`.wait()` without a timeout inside a worker loop can hang a "
        "SIGTERM drain forever; pass a timeout and re-check the loop "
        "condition",
    )


def _var_elements_joined(scope: ast.AST, var: str) -> bool:
    """``for t in threads: t.join(...)`` (or over ``list(threads)``)."""
    for node in ast.walk(scope):
        if not isinstance(node, ast.For):
            continue
        iterable = node.iter
        if isinstance(iterable, ast.Call) and iterable.args:
            iterable = iterable.args[0]
        if not (isinstance(iterable, ast.Name) and iterable.id == var):
            continue
        if isinstance(node.target, ast.Name) and _joined_in(
            node, node.target.id
        ):
            return True
    return False


def _thread_ctor_findings(
    node: ast.Call, ctx: FileContext
) -> Iterator[Finding]:
    if _has_kwarg(node, "daemon"):
        return  # an explicit daemon decision either way is a shutdown story
    parent = ctx.parent(node)
    enclosing: ast.AST | None = parent
    while enclosing is not None and not isinstance(
        enclosing, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        enclosing = ctx.parent(enclosing)
    scope: ast.AST | None = enclosing

    # The statement that binds the thread may be several levels up (the
    # ctor can sit inside a list comprehension or conditional expression).
    assign: ast.Assign | None = None
    current = ctx.parent(node)
    while current is not None and not isinstance(
        current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    ):
        if isinstance(current, ast.Assign):
            assign = current
            break
        current = ctx.parent(current)

    if assign is not None and len(assign.targets) == 1:
        target = assign.targets[0]
        if isinstance(target, ast.Name):
            if scope is not None and (
                _joined_in(scope, target.id)
                or _var_elements_joined(scope, target.id)
            ):
                return
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            class_node = _enclosing_class(ctx, node)
            search: ast.AST | None = (
                class_node if class_node is not None else scope
            )
            if search is not None and _attr_elements_joined(
                search, target.attr
            ):
                return
    elif (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr == "append"
    ):
        receiver = parent.func.value
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            class_node = _enclosing_class(ctx, node)
            search = class_node if class_node is not None else scope
            if search is not None and _attr_elements_joined(
                search, receiver.attr
            ):
                return
        elif isinstance(receiver, ast.Name):
            if scope is not None and _var_elements_joined(
                scope, receiver.id
            ):
                return
    yield ctx.finding(
        node,
        "R019",
        "thread is neither daemon nor joined: a non-daemon thread that "
        "is never joined outlives shutdown and blocks interpreter exit; "
        "pass daemon=True or join it",
    )
