"""repro.lint.project — the v3 three-phase project pipeline.

The v2 driver linted one file at a time in two passes. v3 lints a
*project* in three phases:

**Phase 1 — per-file local analysis** (cacheable). Each file is parsed
once and reduced to facts derivable from its source text alone: its
call-graph syntax (:mod:`repro.lint.callgraph`), its per-function effect
and return summaries (:mod:`repro.lint.summaries`, with project calls
recorded *symbolically*), and the set of project symbols it references.
Because nothing here depends on any other file, the result is a pure
function of ``(path, source bytes, rule-set version)`` — the key it is
cached under in :class:`repro.store.cas.PlanStore` (kind ``lint/file``).

**Phase 2 — project-wide propagation.** The module index resolves every
symbolic call target to a concrete project function, effects close
transitively over the call graph bottom-up by SCC, and symbolic return
references resolve to concrete unit/orderedness facts. This phase is
pure graph math over phase-1 facts: cached files participate fully
without being re-parsed.

**Phase 3 — per-file rule dispatch.** Each file's rules run with a
*concrete* call resolver installed in the flow pass (a call to a project
function now carries its resolved return summary) and the
:class:`ProjectContext` available for the call-site and pool-safety
rules. Findings are cached (kind ``lint/findings``) keyed by the file's
own digest **plus the summary digests of every project function its
calls and references can reach** — the call-graph-aware invalidation
that makes a warm full-repo lint near-instant while an edit to a leaf
helper still re-lints exactly the files whose findings could change.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Protocol, Sequence

from repro.lint.callgraph import (
    FileSyntax,
    LocalFunction,
    ModuleIndex,
    analyze_syntax,
    function_id,
    resolve_target,
    split_function_id,
)
from repro.lint.concurrency import (
    ConcurrencyContext,
    FileConcurrency,
    build_concurrency,
    extract_concurrency,
)
from repro.lint.findings import Finding, TextEdit
from repro.lint.flow import (
    AbstractValue,
    CallResolver,
    FlowInfo,
    Orderedness,
    analyze_flow,
    unit_suffix,
)
from repro.lint.registry import FileContext, Rule, all_rules, get_rule
from repro.lint.summaries import (
    EffectOrigin,
    FunctionSummary,
    extract_summaries,
    propagate_effects,
    resolve_returns,
    summary_digest,
)

__all__ = [
    "RULESET_VERSION",
    "ProjectContext",
    "lint_project",
]

#: Bumped whenever rules, summaries, or the cache envelope change shape:
#: part of every cache key, so stale schema entries degrade to misses.
#: v4: concurrency facts join the phase-1 payload and R015–R019 the rule
#: set, so v3-cached entries must degrade to misses rather than replay
#: findings that predate the thread-safety phase.
RULESET_VERSION = 4


class _Store(Protocol):
    """The slice of :class:`repro.store.cas.PlanStore` the cache uses."""

    def get(self, key: str) -> dict[str, Any] | None: ...

    def put(self, key: str, payload: dict[str, Any], kind: str = ...) -> str: ...


def _digest(obj: Any) -> str:
    """Deterministic sha256 of a JSON-shaped object."""
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- project context (what rules see) -----------------------------------------


@dataclass
class ProjectContext:
    """Phase-2 product: resolved summaries + transitive effects."""

    syntaxes: dict[str, FileSyntax]
    index: ModuleIndex
    #: Final (return-resolved) summary per project function id.
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    #: Transitive effect closure per project function id.
    effects: dict[str, dict[str, EffectOrigin]] = field(default_factory=dict)
    #: Phase-4 lockset/lifecycle products (v4; see repro.lint.concurrency).
    concurrency: ConcurrencyContext | None = None

    def resolve_symbolic(self, syntax: FileSyntax, target: str) -> str | None:
        """Resolve a symbolic ``local:``/``import:`` target to a function id."""
        return resolve_target(target, syntax, self.index, self.syntaxes)

    def summary_of(self, fid: str) -> FunctionSummary | None:
        return self.summaries.get(fid)

    def effects_of(self, fid: str) -> Mapping[str, EffectOrigin]:
        return self.effects.get(fid, {})

    def function(self, fid: str) -> LocalFunction | None:
        path, qualname = split_function_id(fid)
        syntax = self.syntaxes.get(path)
        if syntax is None:
            return None
        return syntax.functions.get(qualname)


# -- phase 1: per-file local analysis ------------------------------------------


@dataclass
class _FileState:
    """Everything the pipeline tracks about one file across the phases."""

    path: str
    module_path: str
    source: str
    source_sha: str
    tree: ast.AST | None = None
    syntax: FileSyntax | None = None
    live: bool = False  # syntax carries AST node maps (freshly parsed)
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    concurrency: FileConcurrency | None = None
    refs: tuple[str, ...] = ()
    r000: list[Finding] = field(default_factory=list)
    suppressions: Any = None
    findings: list[Finding] | None = None


class _RefCollector(ast.NodeVisitor):
    """Symbolic targets of every project-symbol *reference* in a file.

    Call sites alone under-approximate what can influence findings: a
    function handed to ``backend.run_chunks`` by name is never called in
    this file, yet its effects decide the pool-safety rules here. Every
    resolvable ``Name``/dotted ``Attribute`` reference therefore joins
    the file's dependency cone for cache invalidation.
    """

    def __init__(self, syntax: FileSyntax) -> None:
        self.syntax = syntax
        self.refs: set[str] = set()
        self._scope: list[str] = []

    def _visit_function(self, node: ast.AST) -> None:
        qualname = self.syntax.node_qualnames.get(node)
        self._scope.append(qualname if qualname is not None else "")
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _current_scope(self) -> str | None:
        for entry in reversed(self._scope):
            if entry:
                return entry
        return None

    def visit_Name(self, node: ast.Name) -> None:
        target = self.syntax.resolve_name(node.id, self._current_scope())
        if target is not None:
            self.refs.add(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        resolved = self.syntax.resolve_call_expr(node, self._current_scope())
        if resolved is not None:
            self.refs.add(resolved[0])
            return  # the chain is consumed; no references hide inside it
        self.generic_visit(node)


def _symbolic_resolver(syntax: FileSyntax) -> CallResolver:
    """Phase-1 resolver: claim project calls with a symbolic ``call_ref``."""

    def resolver(scope_node: ast.AST, call: ast.Call) -> AbstractValue | None:
        scope = syntax.node_qualnames.get(scope_node)
        resolved = syntax.resolve_call_expr(call.func, scope)
        if resolved is None:
            return None
        target, label = resolved
        return AbstractValue(
            unit=unit_suffix(label.rsplit(".", 1)[-1]),
            ordered=Orderedness.UNKNOWN,
            origin=f"via `{label}()` at line {call.lineno}",
            origin_line=None,
            call_ref=target,
        )

    return resolver


def _blessing(suppressions: Any, module_path: str):
    """Effect-blessing predicate: noqa'd or rule-exempt origins don't
    propagate — the file owns that effect."""

    def is_blessed(rule_id: str, line: int) -> bool:
        if suppressions is not None and suppressions.covers(rule_id, line):
            return True
        try:
            exempt = get_rule(rule_id).exempt
        except KeyError:
            return False
        return any(fragment in module_path for fragment in exempt)

    return is_blessed


def _file_key(path: str, source_sha: str) -> str:
    return _digest(
        {
            "kind": "lint/file",
            "ruleset": RULESET_VERSION,
            "path": path,
            "source_sha": source_sha,
        }
    )


def _parse_file(state: _FileState) -> None:
    """Live-parse one file into its phase-1 facts (no cache involved)."""
    from repro.lint.driver import Suppressions

    try:
        state.tree = ast.parse(state.source, filename=state.path)
    except SyntaxError as exc:
        state.r000 = [
            Finding(
                state.path,
                exc.lineno or 1,
                (exc.offset or 0) or 1,
                "R000",
                f"syntax error: {exc.msg}",
            )
        ]
        state.syntax = FileSyntax(path=state.path, module="")
        state.live = True
        return
    state.syntax = analyze_syntax(state.tree, state.path)
    state.live = True
    state.suppressions = Suppressions(state.source, state.tree)
    flow = analyze_flow(state.tree, _symbolic_resolver(state.syntax))
    state.summaries = extract_summaries(
        state.tree,
        state.syntax,
        flow,
        path=state.module_path,
        is_blessed=_blessing(state.suppressions, state.module_path),
    )
    state.concurrency = extract_concurrency(state.tree, state.syntax)
    collector = _RefCollector(state.syntax)
    collector.visit(state.tree)
    state.refs = tuple(sorted(collector.refs))


def _phase1(state: _FileState, store: _Store | None) -> None:
    """Populate one file's local facts, through the store when possible."""
    key = _file_key(state.path, state.source_sha) if store is not None else ""
    if store is not None:
        payload = store.get(key)
        if payload is not None:
            state.syntax = (
                FileSyntax.from_dict(payload["syntax"])
                if payload.get("syntax") is not None
                else FileSyntax(path=state.path, module="")
            )
            state.summaries = {
                q: FunctionSummary.from_dict(s)
                for q, s in payload.get("summaries", {}).items()
            }
            state.concurrency = (
                FileConcurrency.from_dict(payload["concurrency"])
                if payload.get("concurrency") is not None
                else None
            )
            state.refs = tuple(payload.get("refs", ()))
            state.r000 = [
                Finding(d["path"], d["line"], d["col"], d["rule"], d["message"])
                for d in payload.get("r000", ())
            ]
            return
    _parse_file(state)
    if store is not None:
        store.put(
            key,
            {
                "syntax": state.syntax.to_dict()
                if state.syntax is not None and not state.r000
                else None,
                "summaries": {
                    q: s.to_dict() for q, s in sorted(state.summaries.items())
                },
                "concurrency": state.concurrency.to_dict()
                if state.concurrency is not None
                else None,
                "refs": list(state.refs),
                "r000": [f.to_dict() for f in state.r000],
            },
            kind="lint/file",
        )


# -- phase 2: project-wide propagation -----------------------------------------


def _build_project(states: Sequence[_FileState]) -> tuple[
    ProjectContext,
    dict[str, list[str]],  # adjacency for dependency cones
]:
    syntaxes = {s.path: s.syntax for s in states if s.syntax is not None}
    index = ModuleIndex(syntaxes.values())

    local: dict[str, FunctionSummary] = {}
    for state in states:
        for qualname, summary in state.summaries.items():
            local[function_id(state.path, qualname)] = summary

    # Resolved call edges: caller fid -> [(callee fid, label, line)].
    edges: dict[str, list[tuple[str, str, int]]] = {}
    for state in states:
        syntax = state.syntax
        if syntax is None:
            continue
        for site in syntax.calls:
            callee = resolve_target(site.target, syntax, index, syntaxes)
            if callee is None or callee not in local or site.caller is None:
                continue
            caller_fid = function_id(state.path, site.caller)
            if caller_fid in local:
                edges.setdefault(caller_fid, []).append(
                    (callee, site.label, site.lineno)
                )

    def return_resolver(fid: str, target: str) -> str | None:
        path, _ = split_function_id(fid)
        syntax = syntaxes.get(path)
        if syntax is None:
            return None
        return resolve_target(target, syntax, index, syntaxes)

    final = resolve_returns(local, return_resolver)

    # Iterations over project-call results become unordered_iter effects
    # once the callee's *resolved* return summary says unordered.
    seed: dict[str, dict[str, EffectOrigin]] = {
        fid: dict(summary.effects) for fid, summary in final.items()
    }
    for fid, summary in sorted(final.items()):
        for target, origin_text, line in summary.iterated_calls:
            if "unordered_iter" in seed[fid]:
                break
            callee = return_resolver(fid, target)
            if callee is None:
                continue
            callee_final = final.get(callee)
            if callee_final is None or callee_final.return_ordered != "unordered":
                continue
            origin = origin_text or f"via call at line {line}"
            if callee_final.return_origin:
                origin = f"{origin} → {callee_final.return_origin}"
            seed[fid]["unordered_iter"] = EffectOrigin("unordered_iter", origin)

    effects = propagate_effects(final, edges, seed_effects=seed)

    # Phase 4: the lockset/lifecycle products over cached per-file facts.
    concs = {
        s.path: s.concurrency for s in states if s.concurrency is not None
    }

    def conc_resolver(path: str, target: str) -> str | None:
        syntax = syntaxes.get(path)
        if syntax is None:
            return None
        fid = resolve_target(target, syntax, index, syntaxes)
        return fid if fid is not None and fid in final else None

    concurrency = build_concurrency(concs, final, conc_resolver)

    project = ProjectContext(
        syntaxes=syntaxes,
        index=index,
        summaries=final,
        effects=effects,
        concurrency=concurrency,
    )
    adjacency = {
        fid: sorted({callee for callee, _l, _n in callees})
        for fid, callees in edges.items()
    }
    return project, adjacency


# -- phase 3: per-file rule dispatch -------------------------------------------


def _concrete_resolver(
    syntax: FileSyntax, project: ProjectContext
) -> CallResolver:
    """Phase-3 resolver: project calls return their resolved summaries."""

    def resolver(scope_node: ast.AST, call: ast.Call) -> AbstractValue | None:
        scope = syntax.node_qualnames.get(scope_node)
        resolved = syntax.resolve_call_expr(call.func, scope)
        if resolved is None:
            return None
        target, label = resolved
        fid = project.resolve_symbolic(syntax, target)
        if fid is None:
            return None
        final = project.summaries.get(fid)
        if final is None:
            return None
        ordered = Orderedness(final.return_ordered)
        origin = None
        if ordered is Orderedness.UNORDERED or final.return_unit is not None:
            origin = f"via `{label}()` at line {call.lineno}"
            if final.return_origin:
                origin = f"{origin} → {final.return_origin}"
        return AbstractValue(final.return_unit, ordered, origin, None)

    return resolver


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def _influence_digests(project: ProjectContext) -> dict[str, str]:
    """Per-function digest of everything callers may observe."""
    out: dict[str, str] = {}
    for fid in project.summaries:
        effects = project.effects.get(fid, {})
        out[fid] = _digest(
            {
                "summary": project.summaries[fid].to_dict(),
                "effects": {
                    eff: origin.to_dict()
                    for eff, origin in sorted(effects.items())
                },
            }
        )
    return out


def _dependency_cone(
    seeds: Iterable[str], adjacency: Mapping[str, Sequence[str]]
) -> list[str]:
    """Transitive closure of callees reachable from ``seeds``."""
    seen: set[str] = set()
    stack = sorted(set(seeds))
    while stack:
        fid = stack.pop()
        if fid in seen:
            continue
        seen.add(fid)
        stack.extend(c for c in adjacency.get(fid, ()) if c not in seen)
    return sorted(seen)


def _findings_key(
    state: _FileState,
    rule_ids: Sequence[str],
    report_unused_noqa: bool,
    deps: Mapping[str, str],
    conc_digest: str,
) -> str:
    return _digest(
        {
            "kind": "lint/findings",
            "ruleset": RULESET_VERSION,
            "path": state.path,
            "source_sha": state.source_sha,
            "rules": list(rule_ids),
            "unused_noqa": report_unused_noqa,
            "deps": dict(deps),
            "concurrency": conc_digest,
        }
    )


def _conc_file_digest(
    state: _FileState,
    project: ProjectContext,
    cone: Mapping[str, str],
) -> str:
    """Digest of every phase-4 product that can alter this file's findings.

    Scoped like the summary cone, not global: a file's R015/R017 findings
    replay from the precomputed per-path slices, its entry locksets come
    from call sites anywhere in the project, and its R018 acquisitions
    consult the resource kinds of functions it can reach. Unrelated
    concurrency changes elsewhere leave this digest — and the cached
    findings — untouched, preserving the scoped-relint property the bench
    gate asserts.
    """
    conc = project.concurrency
    if conc is None:
        return ""
    entry = {
        fid: sorted(locks)
        for fid, locks in conc.entry_locks.items()
        if split_function_id(fid)[0] == state.path
    }
    resources = {
        fid: conc.resources[fid] for fid in cone if fid in conc.resources
    }
    return _digest(
        {
            "entry": entry,
            "unguarded": [
                list(f) for f in conc.unguarded.get(state.path, ())
            ],
            "cycles": [list(f) for f in conc.cycles.get(state.path, ())],
            "resources": resources,
        }
    )


def _file_cone_deps(
    state: _FileState,
    project: ProjectContext,
    adjacency: Mapping[str, Sequence[str]],
    influence: Mapping[str, str],
) -> dict[str, str]:
    """Influence digests of every project function this file can observe."""
    syntax = state.syntax
    if syntax is None:
        return {}
    seeds: set[str] = set()
    for site in syntax.calls:
        fid = project.resolve_symbolic(syntax, site.target)
        if fid is not None:
            seeds.add(fid)
    for target in state.refs:
        fid = project.resolve_symbolic(syntax, target)
        if fid is not None:
            seeds.add(fid)
    # The file's own functions influence nothing here: their facts are
    # already covered by the file's source digest.
    cone = [
        fid
        for fid in _dependency_cone(seeds, adjacency)
        if split_function_id(fid)[0] != state.path and fid in influence
    ]
    return {fid: influence[fid] for fid in cone}


def _dispatch_rules(
    state: _FileState,
    project: ProjectContext,
    selected: Sequence[Rule],
    report_unused_noqa: bool,
) -> list[Finding]:
    """Run phase 3 live on one file (requires a parsed tree)."""
    from repro.lint.driver import Suppressions

    if state.tree is None:  # cached file whose findings missed: re-parse
        _parse_file(state)
    if state.r000:
        return list(state.r000)
    assert state.tree is not None and state.syntax is not None
    if state.suppressions is None:
        state.suppressions = Suppressions(state.source, state.tree)

    ctx = FileContext(
        path=state.path,
        module_path=state.module_path,
        source=state.source,
        syntax=state.syntax,
        project=project,
    )
    ctx.parents = _parent_map(state.tree)
    ctx.flow = analyze_flow(state.tree, _concrete_resolver(state.syntax, project))

    dispatch: dict[type, list[Rule]] = {}
    for selected_rule in selected:
        if ctx.is_exempt(selected_rule.exempt):
            continue
        for node_type in selected_rule.node_types:
            dispatch.setdefault(node_type, []).append(selected_rule)

    found: list[Finding] = []
    for node in ast.walk(state.tree):
        for active_rule in dispatch.get(type(node), ()):
            found.extend(active_rule.check(node, ctx))

    kept = [f for f in found if not state.suppressions.suppresses(f)]
    if report_unused_noqa:
        kept.extend(state.suppressions.unused_findings(state.path))
    return sorted(kept)


# -- the pipeline ---------------------------------------------------------------


def lint_project(
    sources: Sequence[tuple[str, str]],
    *,
    rules: Sequence[Rule] | None = None,
    report_unused_noqa: bool = False,
    store: _Store | None = None,
) -> list[Finding]:
    """Lint a set of ``(path, source)`` files as one project.

    This is the v3 engine behind :func:`repro.lint.driver.lint_paths` and
    :func:`~repro.lint.driver.lint_source`. With ``store`` given, phase-1
    facts and phase-3 findings are cached per file (kinds ``lint/file``
    and ``lint/findings``); a warm run with no source changes performs no
    parsing at all and returns findings identical to a cold run, autofix
    edits included (the fixer itself still always runs store-less, since
    it must see the text it rewrites).
    """
    # Rule registrations live in repro.lint.rules; importing the driver
    # (which imports it) guarantees they happened even on direct calls.
    from repro.lint import rules as _rules  # noqa: F401

    states = [
        _FileState(
            path=str(path),
            module_path=Path(str(path)).as_posix(),
            source=source,
            source_sha=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        )
        for path, source in sources
    ]
    states.sort(key=lambda s: s.path)

    for state in states:  # phase 1
        _phase1(state, store)

    project, adjacency = _build_project(states)  # phase 2

    selected = all_rules() if rules is None else tuple(rules)
    rule_ids = sorted({r.rule_id for r in selected})
    influence = _influence_digests(project)

    findings: list[Finding] = []
    for state in states:  # phase 3
        if state.r000:
            findings.extend(state.r000)
            continue
        key = ""
        if store is not None:
            deps = _file_cone_deps(state, project, adjacency, influence)
            key = _findings_key(
                state,
                rule_ids,
                report_unused_noqa,
                deps,
                _conc_file_digest(state, project, deps),
            )
            payload = store.get(key)
            if payload is not None:
                findings.extend(
                    Finding(
                        d["path"],
                        d["line"],
                        d["col"],
                        d["rule"],
                        d["message"],
                        fix=TextEdit(*d["fix"]) if d.get("fix") else None,
                    )
                    for d in payload.get("findings", ())
                )
                continue
        file_findings = _dispatch_rules(state, project, selected, report_unused_noqa)
        findings.extend(file_findings)
        if store is not None:
            store.put(
                key,
                {
                    "findings": [
                        {
                            **f.to_dict(),
                            "fix": [f.fix.start, f.fix.end, f.fix.text]
                            if f.fix is not None
                            else None,
                        }
                        for f in file_findings
                    ]
                },
                kind="lint/findings",
            )
    return sorted(findings)
