"""repro.lint — domain-aware static analysis for planner invariants.

The last releases made planner correctness depend on invariants no single
test fully enforces: bit-identical serial/parallel plans, a PID-pinned
hose cache as the only module-level mutable state, monotonic-clock-only
timing, environment-invariant serialization. ``reprolint`` checks those
properties statically — at review time, not as flaky parity failures.

Zero dependencies: the framework is the stdlib ``ast`` module plus a rule
registry. Run it as ``iris lint src/`` (exit 0 clean, 1 findings, 2 usage
error) or import it from tests::

    from repro.lint import lint_paths, lint_source

    assert lint_paths(["src"]) == []
    assert lint_source("import random\\nrandom.seed(1)\\n") != []

Rules (see :mod:`repro.lint.rules` and ``iris lint --list-rules``):
R001 global RNG state, R002 wall-clock reads, R003 float equality on unit
quantities, R004 unordered set iteration, R005 module-level mutable state,
R006 keyword-only planner config, R007 unit-suffix mixing. Intentional
violations carry a ``# repro: noqa-RXXX`` comment on the flagged line.
"""

from repro.lint.driver import (
    LintUsageError,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    suppressions,
)
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, all_rules, get_rule, rule

__all__ = [
    "Finding",
    "FileContext",
    "LintUsageError",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule",
    "suppressions",
]
