"""repro.lint — domain-aware static analysis for planner invariants.

The last releases made planner correctness depend on invariants no single
test fully enforces: bit-identical serial/parallel plans, a PID-pinned
hose cache as the only module-level mutable state, monotonic-clock-only
timing, environment-invariant serialization. ``reprolint`` checks those
properties statically — at review time, not as flaky parity failures.

Zero dependencies: the framework is the stdlib ``ast`` module plus a rule
registry. Run it as ``iris lint src/`` (exit 0 clean, 1 findings, 2 usage
error) or import it from tests::

    from repro.lint import lint_paths, lint_source

    assert lint_paths(["src"]) == []
    assert lint_source("import random\\nrandom.seed(1)\\n") != []

Since v2 the rules sit on a flow-sensitive dataflow engine
(:mod:`repro.lint.flow`): per-scope symbol tables and a unit/orderedness
lattice propagate facts through assignments and branches, so aliased
violations (``s = set(...); for x in s``) are caught too.

Since v3 the analysis is *interprocedural*: every invocation lints its
file set as one project (:mod:`repro.lint.project`) — a call graph is
resolved across files (:mod:`repro.lint.callgraph`), per-function effect
and unit summaries close transitively over it
(:mod:`repro.lint.summaries`), and findings fire at call sites arbitrarily
far from the root cause, quoting the chain. Three pool-safety rules
(R012-R014) check every callable submitted to the execution backends, a
conservative autofixer (:mod:`repro.lint.fix`, ``iris lint --fix``)
rewrites the mechanical findings, and phase-1 facts plus findings cache
in a :class:`repro.store.cas.PlanStore` (``--store DIR``) with
call-graph-aware invalidation, so a warm repo-wide lint re-parses
nothing.

Since v4 a fourth phase (:mod:`repro.lint.concurrency`) analyzes the
thread-shared state the ``iris serve`` daemon introduced: locksets over
``with self._lock:`` blocks thread interprocedurally (private helpers
called under a lock inherit it via a must-analysis fixpoint), a
``blocking`` effect closes bottom-up like the v3 effects, and a
may-acquire-after graph over canonical lock names feeds deadlock
detection. ``iris lint --format sarif`` emits SARIF 2.1.0 for native PR
annotation in CI.

Rules (see :mod:`repro.lint.rules` and ``iris lint --list-rules``):
R001 global RNG state, R002 wall-clock reads, R003 float equality on unit
quantities, R004 unordered iteration, R005 module-level mutable state,
R006 keyword-only planner config, R007 unit-tag mixing, R008 atomic store
writes, R009 unordered data into serialization sinks, R010 return unit vs
name suffix, R011 obs span/counter discipline, R012 pool submissions
picklable, R013 pool submissions deterministic, R014 pool chunk functions
pure, R015 guarded-by consistency for thread-shared attributes, R016 no
blocking calls under a lock, R017 lock acquisition order acyclic, R018
resources released on every path, R019 threads daemon-or-joined and waits
time-bounded. Intentional violations carry a ``# repro: noqa-RXXX``
comment anywhere in the flagged statement (R015 additionally accepts
``# repro: guarded-by[lock]``); ``--report-unused-noqa`` (R900) keeps
those escapes honest.
"""

from repro.lint.concurrency import (
    ConcurrencyContext,
    FileConcurrency,
    FunctionConcurrency,
    build_concurrency,
    extract_concurrency,
)
from repro.lint.driver import (
    LintUsageError,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    suppressions,
)
from repro.lint.findings import Finding, TextEdit
from repro.lint.fix import FixReport, apply_edits, fix_sources, unified_diff
from repro.lint.flow import (
    AbstractValue,
    FlowInfo,
    Orderedness,
    analyze_flow,
    unit_dimension,
    unit_suffix,
)
from repro.lint.project import ProjectContext, lint_project
from repro.lint.registry import FileContext, Rule, all_rules, get_rule, rule
from repro.lint.sarif import to_sarif
from repro.lint.summaries import EffectOrigin, FunctionSummary, chain_text

__all__ = [
    "AbstractValue",
    "ConcurrencyContext",
    "EffectOrigin",
    "FileConcurrency",
    "Finding",
    "FileContext",
    "FixReport",
    "FlowInfo",
    "FunctionConcurrency",
    "FunctionSummary",
    "LintUsageError",
    "Orderedness",
    "ProjectContext",
    "Rule",
    "Suppressions",
    "TextEdit",
    "all_rules",
    "analyze_flow",
    "apply_edits",
    "build_concurrency",
    "chain_text",
    "extract_concurrency",
    "fix_sources",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "rule",
    "suppressions",
    "to_sarif",
    "unified_diff",
    "unit_dimension",
    "unit_suffix",
]
