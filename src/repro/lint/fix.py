"""repro.lint.fix — the conservative autofixer behind ``iris lint --fix``.

Rules attach a :class:`repro.lint.findings.TextEdit` to a finding only
when the rewrite is provably meaning-preserving:

* **R004 / R009** — wrap an expression in ``sorted(...)``, only when the
  expression is a set by syntactic shape or by flow origin (a container
  merely *tainted* by a set gets no fix: sorting it would change what is
  iterated, not just the order).
* **R006** — insert ``*, `` before the first defaulted parameter of a
  public planner entry point, only when the signature has no ``*args``,
  positional-only, or existing keyword-only parameters.
* **R900** — delete a stale ``# repro: noqa`` comment (the whole line
  when it stands alone, the trailing comment otherwise).

The fixer loops lint → apply → re-lint to a **fixpoint**: an applied fix
can expose the next fixable finding (a freshly sorted value no longer
taints its aliases, say) and edits computed against stale offsets must
never be applied. Per round, edits are applied bottom-up (highest offset
first) and any edit overlapping an already-applied one is deferred to the
next round, so offsets stay valid without rebasing. The loop is bounded
by :data:`MAX_ROUNDS` as a belt-and-braces guard; every shipped fix is
idempotent, so a second :func:`fix_sources` run applies zero edits
(the property the fixer's tests pin).

``--fix --dry-run`` routes through the same machinery but returns
unified diffs instead of writing files, byte-preserving the originals.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.lint.findings import Finding, TextEdit
from repro.lint.registry import Rule

__all__ = [
    "MAX_ROUNDS",
    "FixReport",
    "apply_edits",
    "fix_sources",
    "unified_diff",
]

#: Hard bound on lint→apply rounds. Fixes are idempotent, so real runs
#: converge in one or two rounds; the bound only guards against a buggy
#: future fix that re-introduces its own finding.
MAX_ROUNDS = 10


@dataclass
class FixReport:
    """What one :func:`fix_sources` run did."""

    #: path -> fixed source text (equal to the input when nothing applied).
    files: dict[str, str] = field(default_factory=dict)
    #: path -> number of edits applied across all rounds.
    applied: dict[str, int] = field(default_factory=dict)
    #: lint→apply rounds that applied at least one edit.
    rounds: int = 0
    #: Findings still present after the fixpoint (the unfixable rest).
    remaining: list[Finding] = field(default_factory=list)

    def changed_paths(self) -> list[str]:
        """Paths whose fixed text differs from the input, sorted."""
        return sorted(path for path, count in self.applied.items() if count)

    @property
    def total_applied(self) -> int:
        return sum(self.applied.values())


def apply_edits(source: str, edits: Iterable[TextEdit]) -> tuple[str, int]:
    """Apply non-overlapping edits to ``source``; returns (text, applied).

    Edits are applied bottom-up (highest start offset first) so earlier
    offsets stay valid. An edit overlapping one already applied is
    *skipped*, not rebased — the caller re-lints and picks it up with
    fresh offsets in the next round.
    """
    out = source
    applied = 0
    low_water = len(source) + 1
    for edit in sorted(set(edits), key=lambda e: (e.start, e.end), reverse=True):
        if edit.end > low_water or edit.start > len(out):
            continue
        out = out[: edit.start] + edit.text + out[edit.end :]
        low_water = edit.start
        applied += 1
    return out, applied


def fix_sources(
    sources: Sequence[tuple[str, str]],
    *,
    rules: Sequence[Rule] | None = None,
    report_unused_noqa: bool = False,
) -> FixReport:
    """Fix every fixable finding in ``sources`` to a fixpoint.

    The whole set is linted as one project each round (fixes can depend
    on interprocedural facts), always store-less: cached findings carry
    no edits, and the fixer must see the text it is about to rewrite.
    """
    from repro.lint.project import lint_project

    report = FixReport(
        files={path: text for path, text in sources},
        applied={path: 0 for path, _ in sources},
    )
    for _ in range(MAX_ROUNDS):
        findings = lint_project(
            sorted(report.files.items()),
            rules=rules,
            report_unused_noqa=report_unused_noqa,
        )
        by_file: dict[str, list[TextEdit]] = {}
        for finding in findings:
            if finding.fix is not None and finding.path in report.files:
                by_file.setdefault(finding.path, []).append(finding.fix)
        if not by_file:
            report.remaining = findings
            return report
        round_applied = 0
        for path, edits in by_file.items():
            fixed, count = apply_edits(report.files[path], edits)
            report.files[path] = fixed
            report.applied[path] += count
            round_applied += count
        if round_applied == 0:  # every edit overlapped: nothing can move
            report.remaining = findings
            return report
        report.rounds += 1
    report.remaining = lint_project(
        sorted(report.files.items()),
        rules=rules,
        report_unused_noqa=report_unused_noqa,
    )
    return report


def unified_diff(
    originals: Mapping[str, str], report: FixReport
) -> str:
    """One unified diff over every file the fixer changed (dry-run output)."""
    chunks: list[str] = []
    for path in report.changed_paths():
        before = originals.get(path, "")
        after = report.files[path]
        if before == after:
            continue
        chunks.extend(
            difflib.unified_diff(
                before.splitlines(keepends=True),
                after.splitlines(keepends=True),
                fromfile=f"a/{path}",
                tofile=f"b/{path}",
            )
        )
    return "".join(chunks)
