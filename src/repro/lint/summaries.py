"""repro.lint.summaries — per-function effect & unit summaries for v3.

The interprocedural half of reprolint: every function in the lint set
gets a :class:`FunctionSummary` describing what crossing its call
boundary can do to the planner's invariants —

**determinism effects**
    ``global_rng`` (mutates the shared module RNG — R001's invariant),
    ``wall_clock`` (reads environment time — R002), ``module_state``
    (rebinds module globals — R005), ``unordered_iter`` (iterates an
    unordered collection order-sensitively — R004), and ``io`` (touches
    the filesystem — no intra-procedural rule, but pool-submitted
    callables must be pure: R014). Effects are extracted *directly* per
    function (pass 1) and then propagated transitively bottom-up over
    the call graph (:func:`propagate_effects`), each carrying an origin
    ("``random.seed`` at ``path:line``") and the call chain it travelled
    ("via ``helper()`` at line N") so a finding three calls up still
    quotes the root cause.

**unit / orderedness signatures**
    What a call returns, through the same lattice the flow pass uses:
    a unit tag (``dist_km()`` → ``km``), an orderedness, and — the key
    trick — a *symbolic* reference when a function returns another
    function's result (``def a(): return b()`` records ``call →
    local:b``). Symbolic returns are resolved against the live project
    on every run (:func:`resolve_returns`), so per-function summaries
    stay pure functions of their own source text (what makes them
    cacheable by source digest) while call-depth-N unit and set-ness
    still flow to the caller.

**blessed effects** do not propagate: an effect whose origin statement
carries the matching ``# repro: noqa-RXXX`` or sits in a path the rule
exempts (``repro/obs/`` owns the wall clock, the PID-pinned hose cache
owns its globals) is vouched for by its owner and is not a violation to
surface at call sites.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.lint.callgraph import FileSyntax, LocalFunction, decorator_names
from repro.lint.flow import FlowInfo, Orderedness, unit_suffix

__all__ = [
    "EFFECT_RULES",
    "EffectOrigin",
    "FunctionSummary",
    "blocking_call_violation",
    "chain_text",
    "extract_summaries",
    "propagate_effects",
    "resolve_returns",
    "summary_digest",
]

#: Effect name -> the rule whose invariant it violates (None: pool-only).
EFFECT_RULES: dict[str, str | None] = {
    "global_rng": "R001",
    "wall_clock": "R002",
    "module_state": "R005",
    "unordered_iter": "R004",
    "io": None,
    "blocking": "R016",
}

#: Human phrasing per effect, used by call-site findings.
EFFECT_LABELS: dict[str, str] = {
    "global_rng": "mutates global RNG state",
    "wall_clock": "reads the wall clock",
    "module_state": "rebinds module-level state",
    "unordered_iter": "iterates an unordered collection",
    "io": "performs filesystem I/O",
    "blocking": "may block indefinitely",
}

#: ``random`` module attributes that do NOT touch the shared module RNG.
RANDOM_OK = frozenset({"Random"})

#: ``numpy.random`` attributes that construct seeded, instance-local state.
NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: ``time`` module functions that read the wall clock.
TIME_WALL = frozenset({"time", "time_ns", "ctime", "localtime", "gmtime", "asctime"})

#: ``datetime``/``date`` constructors that read the wall clock.
DATETIME_WALL = frozenset({"now", "utcnow", "today"})

#: ``os`` functions that touch the filesystem.
_OS_IO = frozenset(
    {"replace", "remove", "rename", "makedirs", "unlink", "rmdir", "mkdir"}
)

#: Path-object methods that read or write files in one call.
_PATH_IO = frozenset({"write_text", "write_bytes", "read_text", "read_bytes"})

#: Socket methods that park the calling thread on the network (R016).
_SOCKET_BLOCKING = frozenset(
    {"accept", "recv", "recvfrom", "recv_into", "sendall"}
)

#: Planner entry points: a full solve can take seconds to minutes, which
#: is "blocking" from the perspective of a thread holding a service lock.
_PLANNER_ENTRY = frozenset(
    {"plan_topology", "plan_region", "plan_robust", "run_sweep"}
)


@dataclass(frozen=True)
class EffectOrigin:
    """One effect with where it comes from and how it was reached."""

    effect: str
    origin: str
    chain: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "effect": self.effect,
            "origin": self.origin,
            "chain": [list(step) for step in self.chain],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EffectOrigin":
        return cls(
            effect=str(data["effect"]),
            origin=str(data["origin"]),
            chain=tuple(
                (str(name), int(line)) for name, line in data.get("chain", [])
            ),
        )


def chain_text(origin: EffectOrigin) -> str:
    """The quoted chain of one effect: ``via `a()` at line 3 → ... → root``."""
    steps = [f"via `{name}()` at line {line}" for name, line in origin.chain]
    steps.append(origin.origin)
    return " → ".join(steps)


@dataclass
class FunctionSummary:
    """Everything callers may assume about one function, cacheable."""

    qualname: str
    name: str
    lineno: int
    is_nested: bool
    worker_safe: bool
    #: Unblessed *direct* effects; propagation adds transitive ones.
    effects: dict[str, EffectOrigin] = field(default_factory=dict)
    #: Parameters the body iterates order-sensitively while their
    #: orderedness is still the caller's to decide.
    iterated_params: tuple[str, ...] = ()
    #: ``(symbolic target, display origin, line)`` for every loop that
    #: iterates the result of a project call — whether that is an
    #: unordered iteration depends on the callee's resolved return
    #: summary, so the check is deferred to the project phase.
    iterated_calls: tuple[tuple[str, str, int], ...] = ()
    return_unit: str | None = None
    return_ordered: str = "unknown"
    return_origin: str | None = None
    #: Symbolic ``local:<qualname>``/``import:<dotted>`` when the return
    #: value is another function's result; resolved per run.
    return_call: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "is_nested": self.is_nested,
            "worker_safe": self.worker_safe,
            "effects": {
                eff: origin.to_dict() for eff, origin in sorted(self.effects.items())
            },
            "iterated_params": list(self.iterated_params),
            "iterated_calls": [list(entry) for entry in self.iterated_calls],
            "return_unit": self.return_unit,
            "return_ordered": self.return_ordered,
            "return_origin": self.return_origin,
            "return_call": self.return_call,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            lineno=int(data["lineno"]),
            is_nested=bool(data["is_nested"]),
            worker_safe=bool(data["worker_safe"]),
            effects={
                eff: EffectOrigin.from_dict(o)
                for eff, o in data.get("effects", {}).items()
            },
            iterated_params=tuple(data.get("iterated_params", ())),
            iterated_calls=tuple(
                (str(t), str(o), int(line))
                for t, o, line in data.get("iterated_calls", [])
            ),
            return_unit=data.get("return_unit"),
            return_ordered=str(data.get("return_ordered", "unknown")),
            return_origin=data.get("return_origin"),
            return_call=data.get("return_call"),
        )


def summary_digest(summary: FunctionSummary) -> str:
    """A stable digest of one summary (cache invalidation currency)."""
    payload = json.dumps(
        summary.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- direct-effect predicates (shared with the intra-procedural rules) --------


def _dotted_root(node: ast.expr) -> str | None:
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def rng_attribute_violation(node: ast.Attribute) -> str | None:
    """The global-RNG access an attribute performs (``"random.seed"``)."""
    value = node.value
    if (
        isinstance(value, ast.Name)
        and value.id == "random"
        and node.attr not in RANDOM_OK
    ):
        return f"random.{node.attr}"
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
        and node.attr not in NP_RANDOM_OK
    ):
        return f"{value.value.id}.random.{node.attr}"
    return None


def wall_clock_violation(node: ast.Attribute) -> str | None:
    """The wall-clock read an attribute performs (``"time.time"``)."""
    if (
        isinstance(node.value, ast.Name)
        and node.value.id == "time"
        and node.attr in TIME_WALL
    ):
        return f"time.{node.attr}"
    if node.attr in DATETIME_WALL and _dotted_root(node) in ("datetime", "date"):
        return f"{_dotted_root(node)}.{node.attr}"
    return None


def _receiver_text(node: ast.expr) -> str:
    """Best-effort dotted text of a call receiver (``self._queue``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _kw(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_false(expr: ast.expr | None) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is False


def blocking_call_violation(node: ast.Call) -> str | None:
    """The potentially-indefinite wait a call performs (``"Queue.get"``).

    This is the direct-detection half of the ``blocking`` effect (R016):
    socket accept/recv/sendall, ``queue.put``/``get`` in blocking mode,
    ``Event.wait``/``Condition.wait``, ``Thread.join``, ``time.sleep``,
    and the planner entry points (a full solve is a block from the
    perspective of anything holding a service lock). Queue and join
    detection is receiver-name driven — ``self._queue.get()`` counts,
    ``params.get("key")`` does not.
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _PLANNER_ENTRY:
            return f"{func.id}(...)"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _receiver_text(func.value).lower()
    root = _dotted_root(func)
    if func.attr in _SOCKET_BLOCKING:
        return f".{func.attr}"
    if root == "socket" and func.attr == "create_connection":
        return "socket.create_connection"
    if root == "time" and func.attr == "sleep":
        return "time.sleep"
    if func.attr in _PLANNER_ENTRY:
        return f".{func.attr}(...)"
    if func.attr in ("get", "put") and "queue" in receiver:
        first = node.args[0] if node.args else None
        if _is_false(first) or _is_false(_kw(node, "block")):
            return None
        return f"Queue.{func.attr}"
    if func.attr == "wait":
        return ".wait"
    if func.attr == "join" and not node.args and not node.keywords:
        return ".join"
    if func.attr == "join" and (
        "thread" in receiver or "worker" in receiver
    ):
        return ".join"
    return None


def io_call_violation(node: ast.Call) -> str | None:
    """The filesystem operation a call performs (``"open"``), if any."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute):
        root = _dotted_root(func)
        if root == "os" and func.attr in _OS_IO:
            return f"os.{func.attr}"
        if root == "shutil":
            return f"shutil.{func.attr}"
        if func.attr in _PATH_IO:
            return f".{func.attr}"
    return None


# -- extraction ---------------------------------------------------------------


def _own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``node`` excluding nested function/lambda bodies."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _own_scope(child)


def _is_remote(value: Any) -> bool:
    """Whether an abstract value's taint came across a call boundary.

    Resolver-derived origins start with ``"via "``; excluding them keeps
    direct-effect extraction a pure function of the file's own source,
    which the source-digest cache keying depends on.
    """
    origin = getattr(value, "origin", None)
    return isinstance(origin, str) and origin.startswith("via ")


def _unordered_origin(value: Any, path: str) -> str | None:
    """Concrete origin text for a locally-unordered abstract value."""
    if value is None or not getattr(value, "is_unordered", False):
        return None
    if _is_remote(value):
        return None
    origin = value.origin or "unordered collection"
    if value.origin_line is not None:
        return f"{origin} at {path}:{value.origin_line}"
    return f"{origin} ({path})"


def _syntactic_set(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


def _iter_param(expr: ast.expr, params: frozenset[str]) -> str | None:
    """The parameter an iteration target resolves to, unwrapping the
    order-preserving conversions (``enumerate(items)`` iterates ``items``)."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("enumerate", "list", "tuple", "iter", "reversed")
        and len(expr.args) == 1
    ):
        expr = expr.args[0]
    if isinstance(expr, ast.Name) and expr.id in params:
        return expr.id
    return None


#: ``is_blessed(rule_id, line)`` — true when a noqa or path exemption
#: covers the origin, so the effect must not propagate.
Blessing = Callable[[str, int], bool]


def _first_yield_taint(
    node: ast.AST, flow: FlowInfo, path: str
) -> tuple[bool, str | None]:
    """(has_yields, unordered ``yield from`` origin or None)."""
    has_yield = False
    for child in _own_scope(node):
        if isinstance(child, ast.YieldFrom):
            has_yield = True
            origin = _unordered_origin(flow.value_of(child.value), path)
            if origin is not None:
                return True, origin
        elif isinstance(child, ast.Yield):
            has_yield = True
    return has_yield, None


def _return_summary(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    flow: FlowInfo,
    path: str,
) -> tuple[str | None, str, str | None, str | None]:
    """(unit, ordered, origin, symbolic call) of a function's return value."""
    declared = unit_suffix(func.name)
    has_yield, yield_origin = _first_yield_taint(func, flow, path)
    if has_yield:
        if yield_origin is not None:
            return declared, "unordered", yield_origin, None
        return declared, "unknown", None, None

    returns = flow.returns_of(func)
    if not returns:
        return declared, "ordered", None, None

    units: set[str | None] = set()
    ordered = Orderedness.ORDERED
    origin: str | None = None
    calls: set[str | None] = set()
    call_origin: str | None = None
    for _stmt, value in returns:
        units.add(value.unit)
        ordered = ordered.join(value.ordered)
        if value.is_unordered and origin is None:
            origin = _unordered_origin(value, path) or value.origin
        ref = getattr(value, "call_ref", None)
        calls.add(ref)
        if ref is not None and call_origin is None:
            call_origin = value.origin
    unit = units.pop() if len(units) == 1 else None
    if declared is not None:
        unit = declared
    if ordered is Orderedness.UNORDERED:
        return unit, "unordered", origin, None
    only_call = calls.pop() if len(calls) == 1 else None
    if only_call is not None:
        return unit, "unknown", call_origin, only_call
    return unit, ordered.value, None, None


def extract_summaries(
    tree: ast.AST,
    syntax: FileSyntax,
    flow: FlowInfo,
    *,
    path: str,
    is_blessed: Blessing,
) -> dict[str, FunctionSummary]:
    """Pass-1 summaries for every function of one live-parsed file.

    A pure function of the file's source (plus the blessing predicate,
    itself derived from the file's own noqa comments and path): nothing
    here depends on other files, which is what makes the result cacheable
    under the file's content digest.
    """
    out: dict[str, FunctionSummary] = {}
    for node, qualname in sorted(
        syntax.node_qualnames.items(), key=lambda kv: kv[1]
    ):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        info: LocalFunction = syntax.functions[qualname]
        effects: dict[str, EffectOrigin] = {}

        def found(effect: str, origin: str, line: int) -> None:
            rule = EFFECT_RULES[effect]
            if rule is not None and is_blessed(rule, line):
                return
            if effect not in effects:
                effects[effect] = EffectOrigin(effect, f"{origin} at {path}:{line}")

        params = frozenset(info.params)
        iterated: list[str] = []
        iterated_calls: list[tuple[str, str, int]] = []
        for child in _own_scope(node):
            if isinstance(child, ast.Attribute):
                rng = rng_attribute_violation(child)
                if rng is not None:
                    found("global_rng", rng, child.lineno)
                clock = wall_clock_violation(child)
                if clock is not None:
                    found("wall_clock", clock, child.lineno)
            elif isinstance(child, ast.Global):
                found(
                    "module_state",
                    f"global {', '.join(child.names)}",
                    child.lineno,
                )
            elif isinstance(child, ast.Call):
                io = io_call_violation(child)
                if io is not None:
                    found("io", io, child.lineno)
                blocking = blocking_call_violation(child)
                if blocking is not None:
                    found("blocking", blocking, child.lineno)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                value = flow.value_of(child.iter)
                origin = _unordered_origin(value, path)
                if origin is None and _syntactic_set(child.iter):
                    origin = f"set iteration at {path}:{child.iter.lineno}"
                if origin is not None:
                    rule = EFFECT_RULES["unordered_iter"]
                    if rule is None or not is_blessed(rule, child.lineno):
                        effects.setdefault(
                            "unordered_iter",
                            EffectOrigin("unordered_iter", origin),
                        )
                param = _iter_param(child.iter, params)
                if (
                    param is not None
                    and flow.value_of(child.iter).ordered is Orderedness.UNKNOWN
                    and param not in iterated
                ):
                    iterated.append(param)
                ref = getattr(flow.value_of(child.iter), "call_ref", None)
                if ref is not None:
                    rule = EFFECT_RULES["unordered_iter"]
                    if rule is None or not is_blessed(rule, child.lineno):
                        iterated_calls.append(
                            (
                                ref,
                                flow.value_of(child.iter).origin or "",
                                child.lineno,
                            )
                        )

        unit, ordered, r_origin, r_call = _return_summary(node, flow, path)
        out[qualname] = FunctionSummary(
            qualname=qualname,
            name=info.name,
            lineno=info.lineno,
            is_nested=info.is_nested,
            worker_safe=any(
                d.split(".")[-1] == "worker_safe" for d in decorator_names(node)
            ),
            effects=effects,
            iterated_params=tuple(iterated),
            iterated_calls=tuple(iterated_calls),
            return_unit=unit,
            return_ordered=ordered,
            return_origin=r_origin,
            return_call=r_call,
        )
    return out


# -- propagation --------------------------------------------------------------


def propagate_effects(
    summaries: Mapping[str, FunctionSummary],
    edges: Mapping[str, list[tuple[str, str, int]]],
    *,
    seed_effects: Mapping[str, Mapping[str, EffectOrigin]] | None = None,
) -> dict[str, dict[str, EffectOrigin]]:
    """Transitive effect closure over the resolved call graph.

    ``edges[fid]`` lists ``(callee_fid, display_label, call_line)``.
    Components of the call graph are processed bottom-up (callees before
    callers, via :func:`repro.lint.callgraph.tarjan_scc`); within one
    strongly connected component — mutual recursion — a local fixpoint
    runs, which converges because an effect is only ever *added*. All
    iteration is in sorted order so the chain recorded for each
    ``(function, effect)`` pair — the first one discovered — is
    deterministic.
    """
    from repro.lint.callgraph import tarjan_scc

    if seed_effects is None:
        effects: dict[str, dict[str, EffectOrigin]] = {
            fid: dict(summary.effects) for fid, summary in summaries.items()
        }
    else:
        effects = {
            fid: dict(seed_effects.get(fid, summary.effects))
            for fid, summary in summaries.items()
        }
    graph = {
        fid: [callee for callee, _label, _line in edges.get(fid, ())]
        for fid in summaries
    }
    for component in tarjan_scc(graph):
        changed = True
        while changed:
            changed = False
            for fid in component:
                if fid not in effects:
                    continue
                for callee, label, line in sorted(edges.get(fid, ())):
                    if callee == fid:
                        continue
                    for effect, origin in sorted(effects.get(callee, {}).items()):
                        if effect in effects[fid]:
                            continue
                        effects[fid][effect] = EffectOrigin(
                            effect,
                            origin.origin,
                            ((label, line), *origin.chain),
                        )
                        changed = True
    return effects


def resolve_returns(
    summaries: Mapping[str, FunctionSummary],
    resolve: Callable[[str, str], str | None],
) -> dict[str, FunctionSummary]:
    """Resolve symbolic ``return_call`` references to concrete facts.

    ``resolve(fid, target)`` maps a symbolic target (seen from ``fid``'s
    file) to a project function id. Chains (``a`` returns ``b()`` returns
    ``c()``) are followed with memoization; cycles conservatively resolve
    to *unknown*. Returns new summaries — inputs are never mutated, so
    the per-file (cacheable) summaries stay pure.
    """
    resolved: dict[str, FunctionSummary] = {}
    in_progress: set[str] = set()

    def final(fid: str) -> FunctionSummary:
        if fid in resolved:
            return resolved[fid]
        summary = summaries[fid]
        if summary.return_call is None or fid in in_progress:
            resolved[fid] = summary
            return summary
        in_progress.add(fid)
        try:
            callee_fid = resolve(fid, summary.return_call)
            if callee_fid is None or callee_fid not in summaries:
                out = summary
            else:
                callee = final(callee_fid)
                origin = summary.return_origin or f"via `{callee.name}()`"
                if callee.return_origin:
                    origin = f"{origin} → {callee.return_origin}"
                out = FunctionSummary(
                    qualname=summary.qualname,
                    name=summary.name,
                    lineno=summary.lineno,
                    is_nested=summary.is_nested,
                    worker_safe=summary.worker_safe,
                    effects=summary.effects,
                    iterated_params=summary.iterated_params,
                    iterated_calls=summary.iterated_calls,
                    return_unit=summary.return_unit or callee.return_unit,
                    return_ordered=callee.return_ordered,
                    return_origin=origin,
                    return_call=None,
                )
        finally:
            in_progress.discard(fid)
        resolved[fid] = out
        return out

    for fid in sorted(summaries):
        final(fid)
    return resolved
