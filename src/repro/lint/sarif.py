"""SARIF 2.1.0 output for reprolint findings.

``iris lint --format sarif`` serializes a run into the Static Analysis
Results Interchange Format so CI can upload it via
``github/codeql-action/upload-sarif`` and findings annotate pull requests
natively, file-and-line, instead of living in a job log.

Kept deliberately minimal: one ``run``, the reprolint tool descriptor
with every registered rule (id, short description, the invariant it
protects as the full description), and one ``result`` per finding with a
``physicalLocation``. Findings with an autofix do *not* embed SARIF
``fixes`` — the reprolint edit model is char-offset based and ``iris
lint --fix`` already applies it; a lossy re-encoding would only invite
drift.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Findings produced by the driver itself rather than a registered rule.
_SYNTHETIC_RULES: Mapping[str, tuple[str, str]] = {
    "R000": (
        "file is analyzable",
        "every linted file parses as UTF-8 Python; a broken file is "
        "reported, not skipped",
    ),
    "R900": (
        "no unused suppressions",
        "every `# repro: noqa` / `# repro: guarded-by[...]` comment "
        "suppresses at least one finding; stale escapes are deleted "
        "before they can mask future violations",
    ),
}


def _rule_descriptor(rule_id: str, rules: Mapping[str, Rule]) -> dict[str, Any]:
    rule = rules.get(rule_id)
    if rule is not None:
        title, invariant = rule.title, rule.invariant
    else:
        title, invariant = _SYNTHETIC_RULES.get(
            rule_id, (rule_id, "reprolint finding")
        )
    return {
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {"text": title},
        "fullDescription": {"text": invariant},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> dict[str, Any]:
    return {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    *,
    version: str = "unknown",
) -> dict[str, Any]:
    """A SARIF 2.1.0 log object for one reprolint run.

    ``rules`` is the selected rule set (normally
    :func:`repro.lint.registry.all_rules`); rule ids that appear only in
    findings (R000/R900, or a rule filtered out by ``--disable`` whose
    cached finding survived) still get a descriptor, so every ``result``
    has a resolvable ``ruleId``.
    """
    by_id = {rule.rule_id: rule for rule in rules}
    ids = sorted(set(by_id) | {f.rule_id for f in findings})
    descriptors = [_rule_descriptor(rule_id, by_id) for rule_id in ids]
    index = {rule_id: i for i, rule_id in enumerate(ids)}
    results = []
    for finding in sorted(findings):
        result = _result(finding)
        result["ruleIndex"] = index[finding.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/reprolint"
                        ),
                        "version": version,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
