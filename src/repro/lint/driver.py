"""The reprolint driver: file discovery, suppressions, and the entry points.

Since v3 the analysis itself lives in :mod:`repro.lint.project`: all
files of one invocation are linted as a single project in three phases
(per-file local analysis → project-wide summary propagation → rule
dispatch with interprocedural facts). This module keeps the pieces that
are per-file by nature — reading sources, the ``# repro: noqa``
suppression machinery, and the public ``lint_source``/``lint_file``/
``lint_paths`` entry points the CLI and tests call.

Findings whose *statement* carries a ``# repro: noqa`` comment are
suppressed — either wholesale (``# repro: noqa``) or per rule
(``# repro: noqa-R004`` or ``# repro: noqa-R001,R004``). A suppression
matches anywhere in the flagged statement's line span, so a comment on the
closing line of a black-wrapped call still covers the finding reported on
the call's first line. ``report_unused_noqa=True`` adds an ``R900``
finding for every suppression comment that matched nothing, so stale
escapes get cleaned up instead of silently disabling future rules.

Unparseable files produce a single ``R000`` finding at the syntax error —
and undecodable (non-UTF-8) files an ``R000`` at line 1 — rather than
aborting the run, so one broken file cannot hide findings in the rest of
the tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.lint.findings import Finding, TextEdit
from repro.lint.registry import Rule

# Rules live in their own module purely for readability; importing it runs
# the @rule registrations.
from repro.lint import rules as _rules  # noqa: F401


class LintUsageError(ReproError):
    """The lint invocation itself is wrong (bad path, nothing to lint)."""


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*))?",
    re.IGNORECASE,
)

#: The R015 blessing: a ``guarded-by`` comment naming the lock (in
#: square brackets after the keyword) declares that an unguarded access
#: to a majority-guarded attribute is intentional — the attribute is
#: immutable after start, read racily on purpose, etc. It suppresses
#: exactly R015 on its statement and is tracked like any noqa: a
#: blessing that blesses nothing is an R900.
_GUARDED_RE = re.compile(
    r"#\s*repro:\s*guarded-by\[(?P<lock>[^\]]+)\]",
    re.IGNORECASE,
)

#: Sentinel for "suppress every rule on this line".
_ALL = frozenset({"*"})


def _noqa_comments(source: str) -> list[tuple[int, int, frozenset[str], str]]:
    """(line, col, rule-set, comment text) for every real suppression
    comment — ``# repro: noqa`` variants and ``# repro: guarded-by[...]``.

    Tokenized, not regexed over raw lines, so the string ``"# repro: noqa"``
    inside a docstring or help text neither suppresses findings nor shows
    up as an unused suppression.
    """
    out: list[tuple[int, int, frozenset[str], str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is not None:
            listed = match.group("rules")
            if listed is None:
                ids = _ALL
            else:
                ids = frozenset(
                    part.strip().upper()
                    for part in listed.split(",")
                    if part.strip()
                )
            out.append(
                (token.start[0], token.start[1] + 1, ids, match.group(0))
            )
            continue
        guarded = _GUARDED_RE.search(token.string)
        if guarded is not None:
            out.append(
                (
                    token.start[0],
                    token.start[1] + 1,
                    frozenset({"R015"}),
                    guarded.group(0),
                )
            )
    return out


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppression sets parsed from ``# repro: noqa`` comments."""
    out: dict[int, frozenset[str]] = {}
    for lineno, _col, ids, _label in _noqa_comments(source):
        if ids is _ALL:
            out[lineno] = _ALL
        else:
            existing = out.get(lineno, frozenset())
            out[lineno] = _ALL if existing is _ALL else existing | ids
    return out


def _statement_spans(tree: ast.AST) -> list[tuple[int, int]]:
    """(start, end) line spans a suppression comment extends over.

    Simple statements span all their lines. Compound statements (``for``,
    ``if``, ``def`` ...) contribute only their *header* — a noqa inside a
    function body must not suppress findings on the ``def`` line — but the
    header includes any decorator lines above it.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for decorator in getattr(node, "decorator_list", []):
            start = min(start, decorator.lineno)
        end = getattr(node, "end_lineno", None) or node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(node.lineno, body[0].lineno - 1)
        spans.append((start, end))
    return spans


class Suppressions:
    """Resolved ``# repro: noqa`` comments for one file, with usage tracking.

    Each comment covers the full line span of every statement its line
    belongs to (falling back to just its own line), so suppressions keep
    working when a formatter wraps the flagged statement. ``suppresses``
    marks matching comments used; :meth:`unused` reports the rest.
    """

    def __init__(self, source: str, tree: ast.AST | None = None) -> None:
        self._source = source
        self.by_comment: dict[int, frozenset[str]] = {}
        self._cols: dict[int, int] = {}
        self._labels: dict[int, str] = {}
        for lineno, col, ids, label in _noqa_comments(source):
            if ids is _ALL or self.by_comment.get(lineno) is _ALL:
                self.by_comment[lineno] = _ALL
            else:
                existing = self.by_comment.get(lineno, frozenset())
                self.by_comment[lineno] = existing | ids
            self._cols.setdefault(lineno, col)
            self._labels.setdefault(lineno, label)
        spans = _statement_spans(tree) if tree is not None else []
        self._covering: dict[int, list[int]] = {}
        for comment_line in self.by_comment:
            covered = {comment_line}
            for start, end in spans:
                if start <= comment_line <= end:
                    covered.update(range(start, end + 1))
            for line in sorted(covered):
                self._covering.setdefault(line, []).append(comment_line)
        self._used: set[int] = set()

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether a comment covers ``(rule_id, line)`` — without marking
        it used. The summary pass uses this to *bless* effects: a noqa'd
        origin is vouched for and must not propagate to call sites, but
        only the suppressed finding itself counts as the comment's use.
        """
        for comment_line in self._covering.get(line, ()):
            active = self.by_comment[comment_line]
            if active is _ALL or "*" in active or rule_id in active:
                return True
        return False

    def suppresses(self, finding: Finding) -> bool:
        """Whether any comment covers this finding (marking it used)."""
        hit = False
        for comment_line in self._covering.get(finding.line, ()):
            active = self.by_comment[comment_line]
            if active is _ALL or "*" in active or finding.rule_id in active:
                self._used.add(comment_line)
                hit = True
        return hit

    def unused(self) -> list[int]:
        """Comment lines that suppressed nothing."""
        return sorted(set(self.by_comment) - self._used)

    def _comment_fix(self, line: int) -> TextEdit | None:
        """An edit deleting the comment on ``line`` (the R900 autofix).

        A comment alone on its line goes with the whole line; a trailing
        comment goes along with the whitespace separating it from the code.
        """
        col = self._cols.get(line)
        if col is None:
            return None
        lines = self._source.splitlines(keepends=True)
        if line > len(lines):
            return None
        line_start = sum(len(text) for text in lines[: line - 1])
        text = lines[line - 1]
        content = text.rstrip("\r\n")
        prefix = text[: col - 1]
        if prefix.strip() == "":
            return TextEdit(line_start, line_start + len(text), "")
        return TextEdit(
            line_start + len(prefix.rstrip()), line_start + len(content), ""
        )

    def unused_findings(self, path: str) -> list[Finding]:
        """One ``R900`` finding per suppression that never matched."""
        out = []
        for line in self.unused():
            active = self.by_comment[line]
            label = self._labels.get(line) or (
                "# repro: noqa"
                if active is _ALL
                else "# repro: noqa-" + ",".join(sorted(active))
            )
            out.append(
                Finding(
                    path,
                    line,
                    self._cols.get(line, 1),
                    "R900",
                    f"unused suppression {label!r}: no finding matched; "
                    "delete it so it cannot mask future violations",
                    fix=self._comment_fix(line),
                )
            )
        return out


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Sequence[Rule] | None = None,
    report_unused_noqa: bool = False,
) -> list[Finding]:
    """Lint one source string; returns sorted, suppression-filtered findings.

    ``path`` is used both for reporting and for rule exemption matching
    (e.g. R002 is exempt under ``repro/obs/``). ``rules`` restricts the
    pass to a subset (tests use this to exercise one rule in isolation).
    ``report_unused_noqa`` adds R900 findings for suppression comments
    that matched nothing.

    Since v3 this runs the full interprocedural pipeline on a
    single-file project, so call-depth fixtures written in one file
    exercise the same machinery as a repo-wide pass.
    """
    from repro.lint.project import lint_project

    return lint_project(
        [(str(path), source)],
        rules=rules,
        report_unused_noqa=report_unused_noqa,
    )


def lint_file(
    path: str | Path,
    *,
    rules: Sequence[Rule] | None = None,
    report_unused_noqa: bool = False,
) -> list[Finding]:
    """Lint one file on disk.

    A file that is not valid UTF-8 yields an ``R000`` finding (like a
    syntax error) instead of crashing the whole run; unreadable paths are
    a :class:`LintUsageError`.
    """
    file_path = Path(path)
    source = _read_source(file_path)
    if isinstance(source, Finding):
        return [source]
    return lint_source(
        source,
        path=str(file_path),
        rules=rules,
        report_unused_noqa=report_unused_noqa,
    )


def _read_source(file_path: Path) -> str | Finding:
    """The file's text, or the ``R000`` finding explaining why not."""
    try:
        return file_path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        return Finding(
            str(file_path),
            1,
            1,
            "R000",
            f"file is not valid UTF-8 ({exc.reason} at byte {exc.start}); "
            "reprolint only analyzes UTF-8 Python sources",
        )
    except OSError as exc:
        raise LintUsageError(f"cannot read {file_path}: {exc}") from exc


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.is_file():
            out.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    report_unused_noqa: bool = False,
    store: object | None = None,
) -> list[Finding]:
    """Lint files and/or directory trees; the ``iris lint`` workhorse.

    All files are analyzed as **one project**: the interprocedural phase
    sees every call edge between them. ``store`` (a
    :class:`repro.store.cas.PlanStore` or anything with its get/put) turns
    on the incremental cache — see :mod:`repro.lint.project`.

    Raises :class:`LintUsageError` when a path does not exist or no Python
    files are found at all — an empty pass is a misconfigured gate, not a
    clean one.
    """
    from repro.lint.project import lint_project

    files = iter_python_files(paths)
    if not files:
        raise LintUsageError("no Python files to lint under the given paths")
    findings: list[Finding] = []
    sources: list[tuple[str, str]] = []
    for file_path in files:
        source = _read_source(file_path)
        if isinstance(source, Finding):
            findings.append(source)
        else:
            sources.append((str(file_path), source))
    findings.extend(
        lint_project(
            sources,
            rules=rules,
            report_unused_noqa=report_unused_noqa,
            store=store,  # type: ignore[arg-type]
        )
    )
    return sorted(findings)
