"""The reprolint per-file driver: parse, dispatch, suppress, report.

The driver walks each file's AST exactly once, handing every node to the
rules registered for its type (:mod:`repro.lint.registry`). Findings on a
line carrying a ``# repro: noqa`` comment are suppressed — either wholesale
(``# repro: noqa``) or per rule (``# repro: noqa-R004`` or
``# repro: noqa-R001,R004``). Suppressions match the *first* line of the
flagged statement, the line reported in the finding.

Unparseable files produce a single ``R000`` finding at the syntax error
rather than aborting the run, so one broken file cannot hide findings in
the rest of the tree.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, all_rules

# Rules live in their own module purely for readability; importing it runs
# the @rule registrations.
from repro.lint import rules as _rules  # noqa: F401


class LintUsageError(ReproError):
    """The lint invocation itself is wrong (bad path, nothing to lint)."""


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*))?",
    re.IGNORECASE,
)

#: Sentinel for "suppress every rule on this line".
_ALL = frozenset({"*"})


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppression sets parsed from ``# repro: noqa`` comments."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            out[lineno] = _ALL
        else:
            ids = frozenset(
                part.strip().upper() for part in listed.split(",") if part.strip()
            )
            out[lineno] = out.get(lineno, frozenset()) | ids
    return out


def _suppressed(finding: Finding, by_line: dict[int, frozenset[str]]) -> bool:
    active = by_line.get(finding.line)
    if active is None:
        return False
    return active is _ALL or "*" in active or finding.rule_id in active


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns sorted, suppression-filtered findings.

    ``path`` is used both for reporting and for rule exemption matching
    (e.g. R002 is exempt under ``repro/obs/``). ``rules`` restricts the
    pass to a subset (tests use this to exercise one rule in isolation).
    """
    display = str(path)
    ctx = FileContext(
        path=display,
        module_path=Path(display).as_posix(),
        source=source,
    )
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                display,
                exc.lineno or 1,
                (exc.offset or 0) or 1,
                "R000",
                f"syntax error: {exc.msg}",
            )
        ]
    ctx.parents = _parent_map(tree)

    selected = all_rules() if rules is None else tuple(rules)
    dispatch: dict[type, list[Rule]] = {}
    for selected_rule in selected:
        if ctx.is_exempt(selected_rule.exempt):
            continue
        for node_type in selected_rule.node_types:
            dispatch.setdefault(node_type, []).append(selected_rule)

    found: list[Finding] = []
    for node in ast.walk(tree):
        for active_rule in dispatch.get(type(node), ()):
            found.extend(active_rule.check(node, ctx))

    by_line = suppressions(source)
    return sorted(f for f in found if not _suppressed(f, by_line))


def lint_file(path: str | Path, *, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintUsageError(f"cannot read {file_path}: {exc}") from exc
    return lint_source(source, path=str(file_path), rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.is_file():
            out.add(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path], *, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint files and/or directory trees; the ``iris lint`` workhorse.

    Raises :class:`LintUsageError` when a path does not exist or no Python
    files are found at all — an empty pass is a misconfigured gate, not a
    clean one.
    """
    files = iter_python_files(paths)
    if not files:
        raise LintUsageError("no Python files to lint under the given paths")
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules))
    return sorted(findings)
