"""Emulation of the paper's optical testbed (§6.2, Figs 13-14)."""

from repro.testbed.emulator import (
    IrisTestbed,
    ReceiverReading,
    TestbedConfig,
    SpoolConfiguration,
)
from repro.testbed.experiments import (
    BerSample,
    ExperimentSummary,
    run_reconfiguration_experiment,
)

__all__ = [
    "IrisTestbed",
    "ReceiverReading",
    "TestbedConfig",
    "SpoolConfiguration",
    "BerSample",
    "ExperimentSummary",
    "run_reconfiguration_experiment",
]
