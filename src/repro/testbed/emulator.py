"""The Fig 13(b) testbed, emulated end to end.

One sending DC (DC1) feeds two fibers, each carrying live DP-16QAM channels
plus ASE channel emulation, over fiber spools into a hut, where an OSS
switches each onto a second spool toward DC2 and DC3. A loopback amplifier
at the hut serves whichever path needs it. The experiment periodically swaps
which input spool connects to which output spool:

* configuration A: paths (60 km, 60 km) to DC2 and (20 km, 10 km) to DC3;
* configuration B: paths (20 km, 60 km) to DC2 and (60 km, 10 km) to DC3.

Paths whose input spool is the long one engage the hut amplifier, so over
time both receivers interchangeably use it — exercising fixed-gain operation
with per-port power limiting (TC3) across changing span lengths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.control.devices import SpaceSwitchDevice
from repro.exceptions import ReproError
from repro.optics.budget import evaluate_chain
from repro.optics.ber import post_fec_ber, prefec_ber_from_osnr_db
from repro.optics.components import (
    Amplifier,
    FiberSpan,
    OpticalSpaceSwitch,
    PowerLimiter,
    Transceiver,
    WavelengthSelectiveSwitch,
)
from repro.optics.spectrum import ChannelPlan, SpectrumLoad
from repro.units import SIGNAL_RECOVERY_TIME_S, TWO_HUT_SWITCH_TIME_S


class SpoolConfiguration(enum.Enum):
    """The two spool pairings the experiment alternates between."""

    A = "A"  # DC2: 60-60 (amplified), DC3: 20-10
    B = "B"  # DC2: 20-60, DC3: 60-10 (amplified)

    def spans_km(self, receiver: str) -> tuple[float, float]:
        """(first spool, second spool) lengths toward ``receiver``."""
        table = {
            (SpoolConfiguration.A, "DC2"): (60.0, 60.0),
            (SpoolConfiguration.A, "DC3"): (20.0, 10.0),
            (SpoolConfiguration.B, "DC2"): (20.0, 60.0),
            (SpoolConfiguration.B, "DC3"): (60.0, 10.0),
        }
        try:
            return table[(self, receiver)]
        except KeyError:
            raise ReproError(f"unknown receiver {receiver!r}") from None

    def other(self) -> "SpoolConfiguration":
        """The configuration the periodic swap switches to."""
        return (
            SpoolConfiguration.B
            if self is SpoolConfiguration.A
            else SpoolConfiguration.A
        )


@dataclass(frozen=True)
class TestbedConfig:
    """Tunable parameters of the emulated testbed."""

    wavelengths: int = 40
    live_channels_per_fiber: int = 2
    amp_first_span_km: float = 60.0  # input spools this long engage the amp
    recovery_time_s: float = SIGNAL_RECOVERY_TIME_S
    two_hut_recovery_s: float = TWO_HUT_SWITCH_TIME_S


@dataclass(frozen=True)
class ReceiverReading:
    """One receiver's steady-state physical-layer figures."""

    receiver: str
    osnr_db: float
    rx_power_dbm: float
    prefec_ber: float
    postfec_ber: float
    amplified: bool
    span_km: tuple[float, float]


class IrisTestbed:
    """The emulated Fig 13(b) setup."""

    receivers = ("DC2", "DC3")

    def __init__(self, config: TestbedConfig | None = None) -> None:
        self.config = config or TestbedConfig()
        self.configuration = SpoolConfiguration.A
        self.hut_switch = SpaceSwitchDevice("oss:hut")
        plan = ChannelPlan(count=self.config.wavelengths)
        live = frozenset(range(self.config.live_channels_per_fiber))
        self.fiber_loads = {
            "F1": SpectrumLoad(plan, live),
            "F2": SpectrumLoad(plan, live),
        }
        self._apply_switch_state()

    # -- switching --------------------------------------------------------------

    def _apply_switch_state(self) -> None:
        self.hut_switch.reset()
        if self.configuration is SpoolConfiguration.A:
            self.hut_switch.connect(("in", "F1"), ("out", "DC2"))
            self.hut_switch.connect(("in", "F2"), ("out", "DC3"))
        else:
            self.hut_switch.connect(("in", "F1"), ("out", "DC3"))
            self.hut_switch.connect(("in", "F2"), ("out", "DC2"))

    def swap(self) -> None:
        """Reconfigure to the other spool pairing (the periodic swap)."""
        self.configuration = self.configuration.other()
        self._apply_switch_state()

    def uses_amplifier(self, receiver: str) -> bool:
        """Whether this receiver's current path engages the hut amplifier."""
        first, _ = self.configuration.spans_km(receiver)
        return first >= self.config.amp_first_span_km

    # -- physical layer ---------------------------------------------------------

    #: Every amplifier sits behind a power limiter set to this input level,
    #: making received powers uniform across configurations with no online
    #: gain management (TC3, §5.1).
    LIMITER_DBM = -18.0

    def _chain(self, receiver: str) -> list:
        first, second = self.configuration.spans_km(receiver)
        chain: list = [
            WavelengthSelectiveSwitch(),  # mux at DC1 (combines ASE fill)
            PowerLimiter(self.LIMITER_DBM),
            Amplifier(),  # send-side booster after the mux (Fig 11)
            OpticalSpaceSwitch(),  # DC1 egress OSS
            FiberSpan(first),
            OpticalSpaceSwitch(),  # hut OSS
        ]
        if self.uses_amplifier(receiver):
            # Loopback through the hut OSS: limiter, EDFA, second OSS pass.
            chain.extend(
                [PowerLimiter(self.LIMITER_DBM), Amplifier(), OpticalSpaceSwitch()]
            )
        chain.extend(
            [
                FiberSpan(second),
                PowerLimiter(self.LIMITER_DBM),
                Amplifier(),  # receive-side amplification (Fig 11)
                WavelengthSelectiveSwitch(),  # demux before the receiver
            ]
        )
        return chain

    def reading(self, receiver: str) -> ReceiverReading:
        """Steady-state OSNR/power/BER at one receiver."""
        result = evaluate_chain(self._chain(receiver), Transceiver())
        prefec = prefec_ber_from_osnr_db(result.osnr_db)
        return ReceiverReading(
            receiver=receiver,
            osnr_db=result.osnr_db,
            rx_power_dbm=result.rx_power_dbm,
            prefec_ber=prefec,
            postfec_ber=post_fec_ber(prefec),
            amplified=self.uses_amplifier(receiver),
            span_km=self.configuration.spans_km(receiver),
        )

    def readings(self) -> dict[str, ReceiverReading]:
        """Steady-state readings at both receivers."""
        return {r: self.reading(r) for r in self.receivers}

    def power_uniform_across_configurations(self, tolerance_db: float = 3.0) -> bool:
        """The §6.2 power-management check: received power stays within a
        narrow window across reconfigurations, with no online gain tweaks."""
        powers = []
        original = self.configuration
        for conf in (SpoolConfiguration.A, SpoolConfiguration.B):
            self.configuration = conf
            self._apply_switch_state()
            powers.extend(r.rx_power_dbm for r in self.readings().values())
        self.configuration = original
        self._apply_switch_state()
        return max(powers) - min(powers) <= tolerance_db
