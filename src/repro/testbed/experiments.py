"""Reconfiguration experiments on the emulated testbed (Fig 14).

The paper reconfigures the hut OSS every minute over day-long runs, sampling
pre-FEC BER every 10 ms. Receivers on switched paths lose lock for ~50 ms
(70 ms when two huts reconfigure); all locked samples stay well below the
SD-FEC threshold, i.e. post-FEC error-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.testbed.emulator import IrisTestbed, TestbedConfig
from repro.units import FEC_BER_THRESHOLD


@dataclass(frozen=True)
class BerSample:
    """One 10 ms BER measurement at one receiver."""

    t_s: float
    receiver: str
    prefec_ber: float
    locked: bool


@dataclass(frozen=True)
class ExperimentSummary:
    """Fig 14's headline statistics."""

    samples: tuple[BerSample, ...]
    reconfigurations: int
    max_prefec_ber: float
    fec_threshold: float
    recovery_time_s: float

    @property
    def always_below_threshold(self) -> bool:
        """Whether every locked sample stayed under the SD-FEC threshold."""
        return self.max_prefec_ber < self.fec_threshold

    @property
    def locked_fraction(self) -> float:
        """Fraction of samples with receiver lock."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.locked) / len(self.samples)

    def availability(self) -> float:
        """Fraction of time with a receivable signal (drains excluded,
        reconfiguration dark-time counted against availability)."""
        return self.locked_fraction


def run_reconfiguration_experiment(
    duration_s: float = 600.0,
    reconfig_period_s: float = 60.0,
    sample_interval_s: float = 0.01,
    two_huts: bool = False,
    config: TestbedConfig | None = None,
) -> ExperimentSummary:
    """Alternate spool configurations every ``reconfig_period_s`` and sample
    both receivers' pre-FEC BER, reproducing the Fig 14 trace."""
    if duration_s <= 0 or reconfig_period_s <= 0 or sample_interval_s <= 0:
        raise ReproError("durations must be positive")
    testbed = IrisTestbed(config)
    recovery = (
        testbed.config.two_hut_recovery_s
        if two_huts
        else testbed.config.recovery_time_s
    )

    samples: list[BerSample] = []
    reconfigs = 0
    next_reconfig = reconfig_period_s
    outage_until: dict[str, float] = {r: 0.0 for r in testbed.receivers}

    steps = int(round(duration_s / sample_interval_s))
    # Cache steady-state readings; they only change at reconfigurations.
    readings = testbed.readings()
    for step in range(steps):
        t = step * sample_interval_s
        if t >= next_reconfig:
            # Both paths move in the swap; both receivers re-lock.
            testbed.swap()
            readings = testbed.readings()
            reconfigs += 1
            next_reconfig += reconfig_period_s
            for receiver in testbed.receivers:
                outage_until[receiver] = t + recovery
        for receiver in testbed.receivers:
            locked = t >= outage_until[receiver]
            reading = readings[receiver]
            samples.append(
                BerSample(
                    t_s=t,
                    receiver=receiver,
                    prefec_ber=reading.prefec_ber if locked else 0.5,
                    locked=locked,
                )
            )

    max_prefec = max(
        (s.prefec_ber for s in samples if s.locked), default=0.0
    )
    return ExperimentSummary(
        samples=tuple(samples),
        reconfigurations=reconfigs,
        max_prefec_ber=max_prefec,
        fec_threshold=FEC_BER_THRESHOLD,
        recovery_time_s=recovery,
    )
