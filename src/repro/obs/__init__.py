"""repro.obs: zero-dependency structured observability (spans + counters).

The planner, execution engine, flow simulator, and control plane are
instrumented with hierarchical spans and named counters. Tracing is **off
by default** and the disabled fast path is a no-op singleton, so
instrumented hot paths cost one global read when nobody is watching.

Typical use::

    from repro import obs

    with obs.tracing("my-run") as tracer:
        plan = plan_region(region, jobs=4)
    record = tracer.record()
    print(obs.render_tree(record))
    print(record.total("paths.scenarios"))

or, for the common case of profiling one planning run::

    result = obs.profile_plan(region, jobs=4)
    print(result.render())

Span records are plain picklable trees (:class:`SpanRecord`); counter
totals merge by summation, so shards recorded inside
:class:`~concurrent.futures.ProcessPoolExecutor` workers graft back into
the parent trace without changing any total. See :mod:`repro.obs.tracer`
for the span taxonomy contract and :mod:`repro.obs.exporters` for output
formats (human tree, JSON lines, CSV).
"""

from repro.obs.exporters import (
    PhaseRow,
    aggregate,
    record_from_dict,
    record_to_dict,
    render_tree,
    to_csv_rows,
    to_json_lines,
    write_trace_json,
)
from repro.obs.profile import ProfileResult, profile_plan
from repro.obs.tracer import (
    NULL_SPAN,
    ObsError,
    Span,
    SpanRecord,
    Tracer,
    attach,
    bucket_label,
    capture,
    current,
    enabled,
    incr,
    merge_counters,
    span,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "ObsError",
    "PhaseRow",
    "ProfileResult",
    "Span",
    "SpanRecord",
    "Tracer",
    "aggregate",
    "attach",
    "bucket_label",
    "capture",
    "current",
    "enabled",
    "incr",
    "merge_counters",
    "profile_plan",
    "record_from_dict",
    "record_to_dict",
    "render_tree",
    "span",
    "to_csv_rows",
    "to_json_lines",
    "tracing",
    "write_trace_json",
]
