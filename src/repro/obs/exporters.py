"""Trace exporters: human tree, JSON (lines), CSV rows, dict round-trip.

All exporters order output deterministically (tree order for renders,
sorted counter names everywhere). Durations are included for humans and
profiling tools but must never be compared across runs; exporters that
feed golden tests (:func:`aggregate` + counter totals) expose counters and
span names only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReproError
from repro.obs.tracer import SpanRecord, merge_counters


def record_to_dict(record: SpanRecord, include_durations: bool = True) -> dict:
    """Plain-dict form of a span tree (JSON-ready).

    With ``include_durations=False`` the output is deterministic for a
    deterministic workload: names, counts, and counters only.
    """
    out: dict[str, Any] = {"name": record.name, "count": record.count}
    if include_durations:
        out["duration_s"] = record.duration_s
    if record.counters:
        out["counters"] = {k: record.counters[k] for k in sorted(record.counters)}
    if record.children:
        out["children"] = [
            record_to_dict(child, include_durations) for child in record.children
        ]
    return out


def record_from_dict(data: dict) -> SpanRecord:
    """Inverse of :func:`record_to_dict` (missing durations become 0)."""
    try:
        return SpanRecord(
            name=data["name"],
            duration_s=float(data.get("duration_s", 0.0)),
            count=int(data.get("count", 1)),
            counters=dict(data.get("counters", {})),
            children=[record_from_dict(c) for c in data.get("children", [])],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed span record data: {exc}") from exc


def render_tree(record: SpanRecord, include_durations: bool = True) -> str:
    """An indented, human-readable span tree with counters.

    Example::

        plan.topology  12.3 ms  [scenarios.evaluated=217]
          plan.enumerate  8.1 ms
            engine.chunk:paths  2.0 ms  [chunk.items=55, paths.scenarios=55]
    """
    lines: list[str] = []

    def emit(rec: SpanRecord, depth: int) -> None:
        parts = [f"{'  ' * depth}{rec.name}"]
        if rec.count != 1:
            parts.append(f"x{rec.count}")
        if include_durations:
            parts.append(_fmt_duration(rec.duration_s))
        if rec.counters:
            body = ", ".join(
                f"{name}={_fmt_value(rec.counters[name])}"
                for name in sorted(rec.counters)
            )
            parts.append(f"[{body}]")
        lines.append("  ".join(parts))
        for child in rec.children:
            emit(child, depth + 1)

    emit(record, 0)
    return "\n".join(lines)


def to_json_lines(record: SpanRecord, include_durations: bool = True) -> str:
    """One JSON object per span, depth-first, with a ``path`` breadcrumb.

    The line stream is convenient for ``jq``-style slicing of large traces
    (one plan can produce thousands of chunk spans).
    """
    lines: list[str] = []

    def emit(rec: SpanRecord, path: str) -> None:
        here = f"{path}/{rec.name}" if path else rec.name
        row: dict[str, Any] = {"path": here, "count": rec.count}
        if include_durations:
            row["duration_s"] = rec.duration_s
        row["counters"] = {k: rec.counters[k] for k in sorted(rec.counters)}
        lines.append(json.dumps(row, sort_keys=True))
        for child in rec.children:
            emit(child, here)

    emit(record, "")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class PhaseRow:
    """One aggregated per-span-name row (the benchmark CSV unit)."""

    name: str
    total_s: float
    count: int
    counters: dict[str, float]


def aggregate(record: SpanRecord) -> list[PhaseRow]:
    """Collapse a trace by span name: total duration, count, counters.

    Rows come out in first-appearance (depth-first) order, so the plan
    phases read top-down the way they executed.
    """
    order: list[str] = []
    totals: dict[str, list] = {}
    for rec in record.walk():
        if rec.name not in totals:
            order.append(rec.name)
            totals[rec.name] = [0.0, 0, {}]
        entry = totals[rec.name]
        entry[0] += rec.duration_s
        entry[1] += rec.count
        merge_counters(entry[2], rec.counters)
    return [
        PhaseRow(name=name, total_s=totals[name][0], count=totals[name][1],
                 counters=totals[name][2])
        for name in order
    ]


def to_csv_rows(record: SpanRecord) -> list[list[str]]:
    """Aggregated per-phase CSV (header row first).

    Counter columns are the union of all counter names, sorted, so every
    row has the same width — ready for ``csv.writer``.
    """
    rows = aggregate(record)
    counter_names = sorted({name for row in rows for name in row.counters})
    header = ["phase", "total_s", "count", *counter_names]
    out = [header]
    for row in rows:
        out.append(
            [row.name, f"{row.total_s:.6f}", str(row.count)]
            + [_fmt_value(row.counters.get(name, 0)) for name in counter_names]
        )
    return out


def write_trace_json(path: str, record: SpanRecord) -> None:
    """Write a trace as JSON lines to ``path`` (the ``--trace-json`` sink)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json_lines(record))


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def _fmt_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"
