"""Profiling helpers: run a planner workload under tracing and report.

:func:`profile_plan` is the one-call harness used by
``benchmarks/bench_planner_runtime.py`` and the CLI: it plans a region
with global tracing enabled and returns the plan together with the trace
and its per-phase aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.exporters import PhaseRow, aggregate, render_tree, to_csv_rows
from repro.obs.tracer import SpanRecord, tracing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs <- core)
    from repro.core.plan import IrisPlan
    from repro.region.fibermap import RegionSpec


@dataclass(frozen=True)
class ProfileResult:
    """A traced planning run: the plan, its trace, per-phase rows."""

    plan: "IrisPlan"
    trace: SpanRecord
    phases: list[PhaseRow]

    def render(self, include_durations: bool = True) -> str:
        """The human-readable span tree."""
        return render_tree(self.trace, include_durations)

    def csv_rows(self) -> list[list[str]]:
        """Per-phase CSV rows (header first) for benchmark output."""
        return to_csv_rows(self.trace)

    def total(self, counter: str) -> float:
        """A counter total over the whole trace."""
        return self.trace.total(counter)


def profile_plan(
    region: "RegionSpec",
    *,
    jobs: int | None = 1,
    backend: str | None = None,
    prune_enumeration: bool = True,
    validate: bool = True,
) -> ProfileResult:
    """Plan ``region`` with tracing enabled and aggregate the trace.

    Parameters mirror :class:`repro.api.PlannerConfig`. The plan is
    bit-identical to an untraced run (parity-tested); only the returned
    trace is extra.
    """
    # Imported here, not at module top: repro.core imports repro.obs.
    from repro.core.planner import _plan_region

    with tracing("profile.plan") as tracer:
        plan = _plan_region(
            region,
            prune_enumeration=prune_enumeration,
            validate=validate,
            jobs=jobs,
            backend=backend,
        )
    trace = tracer.record()
    return ProfileResult(plan=plan, trace=trace, phases=aggregate(trace))
