"""Hierarchical spans and counters: the core of :mod:`repro.obs`.

A :class:`Tracer` owns one span tree for one traced activity (a plan, a
sweep, a simulation). Open spans form a stack — ``with tracer.span(name)``
pushes, exiting pops — so finished trees are always well-nested. Each span
accumulates named counters; counter totals merge by summation, which is
associative and commutative, so shards recorded in worker processes can be
grafted back into the parent trace in any order without changing totals.

Three access levels, cheapest first:

* **Disabled (default).** The module-level facade (:func:`span`,
  :func:`incr`, :func:`enabled`) is a no-op: :func:`span` returns a shared
  :data:`NULL_SPAN` singleton whose methods do nothing, so instrumented hot
  paths pay one global read and nothing else.
* **Local tracer.** Code that always wants coarse timings (the planner's
  phase breakdown behind :class:`~repro.core.engine.PlanTimings`) creates
  its own :class:`Tracer` and calls ``tracer.span(...)`` explicitly,
  without enabling the global facade — fine-grained instrumentation stays
  off.
* **Global tracing.** ``with tracing() as tracer:`` installs a tracer as
  the process-wide active one; every facade call in the block records into
  it, including per-chunk worker shards shipped back across the process
  pool (see :func:`capture` and :meth:`Tracer.attach`).

Durations come from :func:`time.perf_counter` (monotonic). Exporters and
tests that compare trace *content* must compare names and counters only —
never durations, which vary run to run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import ReproError


class ObsError(ReproError):
    """Misuse of the observability layer (bad nesting, negative counts)."""


@dataclass
class SpanRecord:
    """One finished span: a picklable, mergeable tree node.

    ``name``
        Dotted span label (``plan.topology``, ``engine.chunk:paths``).
    ``duration_s``
        Monotonic-clock wall time between enter and exit. Never compare
        this across runs; it exists for profiling output only.
    ``count``
        How many raw spans this record stands for (1 until records are
        collapsed by :func:`repro.obs.exporters.aggregate`).
    ``counters``
        Named non-negative totals accumulated while the span was open.
    ``children``
        Sub-spans in completion order, including worker shards grafted in
        by :meth:`Tracer.attach`.
    """

    name: str
    duration_s: float = 0.0
    count: int = 1
    counters: dict[str, float] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def child(self, name: str) -> "SpanRecord | None":
        """The first direct child named ``name`` (or ``None``)."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find(self, name: str) -> list["SpanRecord"]:
        """Every record in the tree (including self) named ``name``."""
        return [rec for rec in self.walk() if rec.name == name]

    def total(self, counter: str) -> float:
        """Sum of ``counter`` over the whole tree.

        Counters merge by summation, so this total is independent of how
        the work was chunked or which process recorded each shard.
        """
        return sum(rec.counters.get(counter, 0) for rec in self.walk())

    def counter_totals(self, prefix: str = "") -> dict[str, float]:
        """All counter totals over the tree, optionally prefix-filtered."""
        out: dict[str, float] = {}
        for rec in self.walk():
            for name, value in rec.counters.items():
                if name.startswith(prefix):
                    out[name] = out.get(name, 0) + value
        return out

    def n_spans(self) -> int:
        """Number of records in the tree (self included)."""
        return sum(1 for _ in self.walk())


def merge_counters(
    into: dict[str, float], other: dict[str, float]
) -> dict[str, float]:
    """Merge ``other``'s counters into ``into`` (summing) and return it.

    Summation is associative and commutative: merging worker shards in any
    grouping or order yields the same totals (property-tested).
    """
    for name, value in other.items():
        into[name] = into.get(name, 0) + value
    return into


class Span:
    """An open span: a context manager that finishes its record on exit."""

    __slots__ = ("record", "_tracer", "_t0")

    def __init__(self, record: SpanRecord, tracer: "Tracer") -> None:
        self.record = record
        self._tracer = tracer
        self._t0 = 0.0

    def incr(self, name: str, n: float = 1) -> None:
        """Add ``n`` (non-negative) to this span's ``name`` counter."""
        if n < 0:
            raise ObsError(f"counter {name!r} increment must be >= 0, got {n}")
        counters = self.record.counters
        counters[name] = counters.get(name, 0) + n

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.record.duration_s = time.perf_counter() - self._t0
        self._tracer._pop(self)


class _NullSpan:
    """The disabled-tracing fast path: every operation is a no-op."""

    __slots__ = ()

    def incr(self, name: str, n: float = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


#: Shared no-op span returned by the facade when tracing is disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """One span tree under construction.

    The root span opens at construction and closes at :meth:`finish` (or
    the first :meth:`record` call); :meth:`span` opens children under the
    innermost open span.
    """

    def __init__(self, name: str = "trace") -> None:
        self._root = SpanRecord(name=name)
        self._t0 = time.perf_counter()
        self._stack: list[Span] = []
        self._finished = False

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str) -> Span:
        """A new child span of the innermost open span (enter to start)."""
        return Span(SpanRecord(name=name), self)

    def _push(self, span: Span) -> None:
        if self._finished:
            raise ObsError("tracer already finished")
        parent = self._stack[-1].record if self._stack else self._root
        parent.children.append(span.record)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObsError(f"span {span.record.name!r} closed out of order")
        self._stack.pop()

    def incr(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the innermost open span's (or root's) counter."""
        if n < 0:
            raise ObsError(f"counter {name!r} increment must be >= 0, got {n}")
        record = self._stack[-1].record if self._stack else self._root
        record.counters[name] = record.counters.get(name, 0) + n

    def attach(self, record: SpanRecord) -> None:
        """Graft a finished shard (e.g. from a worker process) as a child."""
        parent = self._stack[-1].record if self._stack else self._root
        parent.children.append(record)

    # -- completion --------------------------------------------------------

    def finish(self) -> None:
        """Close the root span (idempotent; open children are an error)."""
        if self._finished:
            return
        if self._stack:
            raise ObsError(
                f"cannot finish tracer with open span "
                f"{self._stack[-1].record.name!r}"
            )
        self._root.duration_s = time.perf_counter() - self._t0
        self._finished = True

    def record(self) -> SpanRecord:
        """The finished root record (finishes the tracer if needed)."""
        self.finish()
        return self._root


# -- global facade ---------------------------------------------------------

_ACTIVE: Tracer | None = None


def enabled() -> bool:
    """Whether global tracing is on (a tracer is installed)."""
    return _ACTIVE is not None


def current() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def span(name: str):
    """A span on the active tracer, or :data:`NULL_SPAN` when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name)


def incr(name: str, n: float = 1) -> None:
    """Bump a counter on the active tracer's innermost span (no-op off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.incr(name, n)


def attach(record: SpanRecord | None) -> None:
    """Graft a worker shard into the active trace (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None and record is not None:
        tracer.attach(record)


@contextmanager
def tracing(name: str = "trace") -> Iterator[Tracer]:
    """Enable global tracing for the block; yields the installed tracer.

    Nested ``tracing`` blocks stack: the inner tracer records alone until
    it exits, then the outer one resumes (the inner tree is *not* grafted
    automatically). After the block, read results via ``tracer.record()``.
    """
    global _ACTIVE
    prev = _ACTIVE
    tracer = Tracer(name)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev
        tracer.finish()


@contextmanager
def capture(name: str) -> Iterator[Tracer]:
    """A fresh, self-contained capture, regardless of the active tracer.

    Used on the worker side of a process pool: the chunk runs under its
    own tracer whose finished record is returned (pickled) to the parent,
    which grafts it with :func:`attach`. Inside the block the capture is
    the globally active tracer, so facade-instrumented code records into
    the shard.
    """
    global _ACTIVE
    prev = _ACTIVE
    tracer = Tracer(name)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev
        tracer.finish()


#: Bounded power-of-two histogram buckets for value distributions.
_BUCKET_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def bucket_label(value: float) -> str:
    """The bounded power-of-two bucket a value falls in (``le_N``/``gt_256``).

    Distribution counters (``hose.flow.fibers[le_8]`` etc.) use these
    labels so the counter namespace stays finite and shard merges stay
    associative no matter how values are spread across workers.
    """
    for bound in _BUCKET_BOUNDS:
        if value <= bound:
            return f"le_{bound}"
    return f"gt_{_BUCKET_BOUNDS[-1]}"
