"""Itemized network cost from an equipment inventory.

Designs (Iris, EPS, hybrid) reduce to an :class:`Inventory` — how many of
each §3.3 component class the realized network needs — which this module
prices. Keeping the inventory explicit makes the Fig 12 ratios auditable
item by item.

Port-accounting convention (matches the §3.4 example): "DC ports" are the
capacity-facing transceivers at the DCs (f x lambda per DC, identical across
designs); everything else — hut transceivers and their switch ports for EPS,
duct-terminating OSS ports and amplifier loopback ports for Iris — is
"in-network". DC-internal OSS stages (OSS1/OSS2 fan-in, Fig 11) are tracked
separately and excluded from headline totals, as in the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.cost.pricebook import PriceBook
from repro.exceptions import ReproError


@dataclass(frozen=True)
class Inventory:
    """Equipment counts for one realized regional network.

    ``fiber_pair_spans`` counts (fiber-pair, duct) leases: a fiber-pair that
    traverses three ducts counts three spans, since leases are priced per
    span (§3.3). A cut-through fiber passing a hut unswitched still leases
    each underlying span.
    """

    dc_transceivers: int = 0
    dc_electrical_ports: int = 0
    innetwork_transceivers: int = 0
    innetwork_electrical_ports: int = 0
    oss_ports: int = 0
    oxc_ports: int = 0
    amplifiers: int = 0
    fiber_pair_spans: int = 0
    dc_oss_ports: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ReproError(f"inventory count {f.name} must be non-negative")

    @property
    def dc_ports(self) -> int:
        """Capacity-facing ports at the DCs (identical across designs)."""
        return self.dc_transceivers

    @property
    def in_network_ports(self) -> int:
        """Ports that must be managed inside the network (Fig 12(c))."""
        return (
            self.innetwork_transceivers
            + self.innetwork_electrical_ports
            + self.oss_ports
            + self.oxc_ports
        )

    @property
    def total_ports(self) -> int:
        """Every managed port, electrical or optical."""
        return (
            self.dc_transceivers
            + self.dc_electrical_ports
            + self.in_network_ports
            + self.dc_oss_ports
        )

    def combined(self, other: "Inventory") -> "Inventory":
        """Element-wise sum of two inventories."""
        return Inventory(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Priced inventory, $/year, by component class."""

    transceivers: float
    electrical_ports: float
    oss_ports: float
    oxc_ports: float
    amplifiers: float
    fiber: float
    dc_oss_ports: float = 0.0
    inventory: Inventory = field(default_factory=Inventory)

    @property
    def total(self) -> float:
        """Headline total (excludes the DC-internal OSS stages, per §3.4)."""
        return (
            self.transceivers
            + self.electrical_ports
            + self.oss_ports
            + self.oxc_ports
            + self.amplifiers
            + self.fiber
        )

    @property
    def total_with_dc_oss(self) -> float:
        """Total including the DC-internal OSS fan-in stages."""
        return self.total + self.dc_oss_ports

    @property
    def in_network_total(self) -> float:
        """Cost of in-network components only (Fig 12(a)'s third line).

        Excludes the capacity-facing DC transceivers and their switch ports,
        which are fixed across the design space.
        """
        return self.total - self.dc_cost

    @property
    def dc_cost(self) -> float:
        """Cost of the fixed, capacity-facing DC ports."""
        inv = self.inventory
        if inv.dc_transceivers == 0 and inv.dc_electrical_ports == 0:
            return 0.0
        total_xcvr = inv.dc_transceivers + inv.innetwork_transceivers
        total_eport = inv.dc_electrical_ports + inv.innetwork_electrical_ports
        xcvr_share = (
            self.transceivers * inv.dc_transceivers / total_xcvr
            if total_xcvr
            else 0.0
        )
        eport_share = (
            self.electrical_ports * inv.dc_electrical_ports / total_eport
            if total_eport
            else 0.0
        )
        return xcvr_share + eport_share


def estimate_cost(
    inventory: Inventory,
    prices: PriceBook | None = None,
    sr_for_innetwork: bool = False,
) -> CostBreakdown:
    """Price an inventory.

    ``sr_for_innetwork`` applies short-reach transceiver prices to the
    in-network (group-internal) transceivers, the optimistic "Electrical
    with SR" variant of Fig 7.
    """
    prices = prices or PriceBook.default()
    innetwork_price = (
        prices.transceiver_sr if sr_for_innetwork else prices.transceiver_dci
    )
    return CostBreakdown(
        transceivers=(
            inventory.dc_transceivers * prices.transceiver_dci
            + inventory.innetwork_transceivers * innetwork_price
        ),
        electrical_ports=(
            (inventory.dc_electrical_ports + inventory.innetwork_electrical_ports)
            * prices.electrical_port
        ),
        oss_ports=inventory.oss_ports * prices.oss_port,
        oxc_ports=inventory.oxc_ports * prices.oxc_port,
        amplifiers=inventory.amplifiers * prices.amplifier,
        fiber=inventory.fiber_pair_spans * prices.fiber_pair_span,
        dc_oss_ports=inventory.dc_oss_ports * prices.oss_port,
        inventory=inventory,
    )
