"""Component prices (§3.3), amortized to $/year.

The paper can only disclose coarse relative prices; those relativities are
what drive every cost result, so we encode them directly:

* DCI transceiver ~$10/Gbps => ~$1,300/yr for 400G after 3-year amortization.
* Electrical switch port: a transceiver costs roughly 10x an electrical port.
* Fiber-pair lease: ~$3,600/yr *per span*, independent of distance — about
  3x a transceiver. One fiber carries 40-64 transceivers' worth of traffic.
* OSS port: an order of magnitude below a transceiver ($100-200,
  unidirectional).
* OXC port: slightly above an OSS port (needs de/muxes).
* Amplifier: a few transceivers' worth, but amortized over a whole fiber.
* Short-reach transceiver (sub-2 km): about half a DCI transceiver. The
  paper does not state this price, but Fig 7's reading pins it: with SR
  group-internal links, semi-distributed topologies are "also more
  expensive than a centralized one" — which holds only if
  2(e + sr) + (e + dci) > 2(e + dci), i.e. sr > dci/2 - e/2. Used for the
  "Electrical with SR" variant of Fig 7 and the Fig 12(b) sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ReproError

#: Version stamp folded into :mod:`repro.store` artifact keys. Bump when a
#: :class:`PriceBook` field is added, removed, or changes meaning, so
#: price-dependent cached artifacts from older schemas miss instead of
#: silently pricing with stale semantics.
PRICEBOOK_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PriceBook:
    """Amortized $/year prices for every component class the designs use."""

    transceiver_dci: float = 1300.0
    transceiver_sr: float = 650.0
    electrical_port: float = 130.0
    fiber_pair_span: float = 3600.0
    oss_port: float = 150.0
    oxc_port: float = 250.0
    amplifier: float = 3900.0

    def __post_init__(self) -> None:
        for name in (
            "transceiver_dci",
            "transceiver_sr",
            "electrical_port",
            "fiber_pair_span",
            "oss_port",
            "oxc_port",
            "amplifier",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"price {name} must be non-negative")

    @classmethod
    def default(cls) -> "PriceBook":
        """The §3.3 reference prices."""
        return cls()

    def with_sr_priced_dci(self) -> "PriceBook":
        """Fig 12(b)'s sensitivity: DCI transceivers at short-reach prices.

        The paper calls this "unrealistically optimistic" for electrical
        designs; Iris keeps a cost advantage even then.
        """
        return replace(self, transceiver_dci=self.transceiver_sr)

    def scaled(self, factor: float) -> "PriceBook":
        """Uniformly scaled prices (useful for currency/epoch sensitivity).

        Ratios — the paper's reproduction target — are invariant under this.
        """
        if factor <= 0:
            raise ReproError("scale factor must be positive")
        return PriceBook(
            transceiver_dci=self.transceiver_dci * factor,
            transceiver_sr=self.transceiver_sr * factor,
            electrical_port=self.electrical_port * factor,
            fiber_pair_span=self.fiber_pair_span * factor,
            oss_port=self.oss_port * factor,
            oxc_port=self.oxc_port * factor,
            amplifier=self.amplifier * factor,
        )
