"""Cost model (§3.3): component prices and itemized network cost."""

from repro.cost.pricebook import PriceBook
from repro.cost.estimator import CostBreakdown, Inventory, estimate_cost

__all__ = ["PriceBook", "CostBreakdown", "Inventory", "estimate_cost"]
