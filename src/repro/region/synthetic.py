"""Seeded generator of Azure-like regional fiber maps.

Real region fiber maps are proprietary (the paper's own figures are mock-ups
"that resemble but do not represent Microsoft Azure's network maps"). This
module generates synthetic metro fiber plants with the same character:

* a backbone of fiber huts spread over a few tens of kilometres,
* a duct graph following street-level routing (lengths inflated by a route
  factor over the crow-flies distance),
* enough path diversity that duct cuts leave alternatives (the generator
  repairs the backbone to at least 3-edge-connectivity so that plans
  tolerating 2 cuts exist).

Everything is driven by an explicit :class:`random.Random` seed so ensembles
are reproducible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import networkx as nx

from repro.exceptions import RegionError
from repro.region.fibermap import FiberMap
from repro.region.geometry import Point


@dataclass(frozen=True)
class SyntheticMapConfig:
    """Knobs for the synthetic fiber-map generator.

    ``extent_km``
        Side of the square service region. Azure regions span "tens of
        kilometres"; the ensemble uses 25-50 km.
    ``grid_step_km``
        Spacing of the underlying hut lattice before jitter.
    ``jitter_km``
        Maximum displacement applied to each hut off the lattice.
    ``diagonal_probability``
        Probability of adding each lattice diagonal duct (extra diversity).
    ``skip_probability``
        Probability of *dropping* a lattice duct (maps are not full grids).
    ``route_factor_range``
        Duct fiber length = Euclidean distance x Uniform(range). Street
        routing makes fiber runs longer than geodesics.
    ``min_edge_connectivity``
        The backbone is repaired (shortest missing ducts added) until the
        hut graph is at least this edge-connected.
    """

    extent_km: float = 40.0
    grid_step_km: float = 10.0
    jitter_km: float = 2.5
    diagonal_probability: float = 0.45
    skip_probability: float = 0.10
    route_factor_range: tuple[float, float] = (1.15, 1.45)
    min_edge_connectivity: int = 3

    def __post_init__(self) -> None:
        if self.extent_km <= 0 or self.grid_step_km <= 0:
            raise RegionError("extent and grid step must be positive")
        if self.grid_step_km > self.extent_km:
            raise RegionError("grid step larger than extent")
        lo, hi = self.route_factor_range
        if not (1.0 <= lo <= hi):
            raise RegionError("route factors must be >= 1 and ordered")
        if not (0.0 <= self.diagonal_probability <= 1.0):
            raise RegionError("diagonal_probability must be in [0, 1]")
        if not (0.0 <= self.skip_probability < 1.0):
            raise RegionError("skip_probability must be in [0, 1)")
        if self.min_edge_connectivity < 1:
            raise RegionError("min_edge_connectivity must be >= 1")


def generate_fiber_map(
    seed: int, config: SyntheticMapConfig | None = None
) -> FiberMap:
    """Generate a hut-only fiber map; DCs are added later by placement.

    The construction: jittered lattice of huts; lattice-neighbour ducts with
    occasional skips; random diagonals; route-factor-inflated lengths; then a
    connectivity repair pass.
    """
    config = config or SyntheticMapConfig()
    rng = random.Random(seed)
    fmap = FiberMap()

    steps = max(2, int(round(config.extent_km / config.grid_step_km)))
    coords: dict[tuple[int, int], str] = {}
    for i in range(steps + 1):
        for j in range(steps + 1):
            name = f"H{i}{chr(ord('a') + j)}"
            x = i * config.grid_step_km + rng.uniform(-config.jitter_km, config.jitter_km)
            y = j * config.grid_step_km + rng.uniform(-config.jitter_km, config.jitter_km)
            x = min(max(x, 0.0), config.extent_km)
            y = min(max(y, 0.0), config.extent_km)
            fmap.add_hut(name, x, y)
            coords[(i, j)] = name

    def route_factor() -> float:
        lo, hi = config.route_factor_range
        return rng.uniform(lo, hi)

    def add(u: str, v: str) -> None:
        if not fmap.has_duct(u, v):
            length = fmap.position(u).distance_to(fmap.position(v)) * route_factor()
            fmap.add_duct(u, v, length_km=max(length, 0.25))

    for (i, j), name in coords.items():
        if (i + 1, j) in coords and rng.random() >= config.skip_probability:
            add(name, coords[(i + 1, j)])
        if (i, j + 1) in coords and rng.random() >= config.skip_probability:
            add(name, coords[(i, j + 1)])
        if (i + 1, j + 1) in coords and rng.random() < config.diagonal_probability:
            add(name, coords[(i + 1, j + 1)])
        if (i + 1, j - 1) in coords and rng.random() < config.diagonal_probability:
            add(name, coords[(i + 1, j - 1)])

    _repair_connectivity(fmap, config, rng)
    return fmap


def _repair_connectivity(
    fmap: FiberMap, config: SyntheticMapConfig, rng: random.Random
) -> None:
    """Add shortest missing ducts until the hut backbone is robust enough."""
    graph = fmap.graph
    # First make it connected at all.
    while not nx.is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        best: tuple[float, str, str] | None = None
        for ca, cb in itertools.combinations(components, 2):
            for u in ca:
                pu = fmap.position(u)
                for v in cb:
                    d = pu.distance_to(fmap.position(v))
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        _, u, v = best
        fmap.add_duct(u, v, length_km=max(best[0] * 1.3, 0.25))

    # Then raise edge connectivity by linking the least-connected nodes to a
    # nearby non-neighbour.
    target = config.min_edge_connectivity
    guard = 0
    while nx.edge_connectivity(graph) < target:
        guard += 1
        if guard > 200:
            raise RegionError("connectivity repair did not converge")
        weakest = min(graph.nodes, key=lambda n: (graph.degree(n), n))
        candidates = [
            n
            for n in graph.nodes
            if n != weakest and not graph.has_edge(weakest, n)
        ]
        if not candidates:
            raise RegionError("cannot repair connectivity: graph is complete")
        pw = fmap.position(weakest)
        nearest = min(
            candidates, key=lambda n: (pw.distance_to(fmap.position(n)), n)
        )
        length = pw.distance_to(fmap.position(nearest)) * 1.3
        fmap.add_duct(weakest, nearest, length_km=max(length, 0.25))


def attach_dc(
    fmap: FiberMap,
    name: str,
    location: Point,
    rng: random.Random,
    attach_count: int = 3,
    stub_route_factor: float = 1.3,
) -> None:
    """Add DC ``name`` at ``location``, ducted to its nearest huts.

    Each DC gets ``attach_count`` access ducts (to distinct huts) so that
    2-cut failure tolerance remains achievable at the access.
    """
    huts = fmap.huts
    if len(huts) < attach_count:
        raise RegionError(
            f"need at least {attach_count} huts to attach a DC, have {len(huts)}"
        )
    fmap.add_dc(name, location.x, location.y)
    ranked = sorted(huts, key=lambda h: (location.distance_to(fmap.position(h)), h))
    for hut in ranked[:attach_count]:
        geo = location.distance_to(fmap.position(hut))
        jitter = rng.uniform(0.95, 1.1)
        fmap.add_duct(name, hut, length_km=max(geo * stub_route_factor * jitter, 0.2))
