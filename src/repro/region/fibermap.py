"""Fiber maps and region specifications (§2 of the paper).

A :class:`FiberMap` is the graph of DC sites, fiber huts, and fiber ducts
available in a region. Duct capacity (how many fibers to lease in each duct)
is an *output* of planning, not part of the map: per industry practice each
duct contains hundreds of fibers, of which only a fraction is lit.

A :class:`RegionSpec` bundles the map with the planner's other inputs: per-DC
network capacities (in fibers), the DWDM channel plan, and the operational
constraints (OC1-OC4).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx

from repro.exceptions import RegionError
from repro.region.geometry import Point
from repro.units import (
    GBPS_PER_WAVELENGTH_400ZR,
    MAX_SPAN_KM,
    SLA_MAX_FIBER_KM,
)

#: A duct is identified by its endpoint pair in canonical (sorted) order.
Duct = tuple[str, str]


def duct_key(u: str, v: str) -> Duct:
    """Canonical identifier for the duct between nodes ``u`` and ``v``."""
    if u == v:
        raise RegionError(f"duct endpoints must differ, got {u!r} twice")
    return (u, v) if u <= v else (v, u)


def pair_key(a: str, b: str) -> tuple[str, str]:
    """Canonical identifier for an unordered DC pair."""
    if a == b:
        raise RegionError(f"DC pair endpoints must differ, got {a!r} twice")
    return (a, b) if a <= b else (b, a)


class NodeKind(enum.Enum):
    """The two node types of a fiber map (§2: DCs and fiber huts)."""

    DC = "dc"
    HUT = "hut"


class FiberMap:
    """The region's available fiber plant: DCs, huts, and ducts.

    Thin wrapper over an undirected :class:`networkx.Graph`; nodes carry a
    ``kind`` and planar ``(x, y)`` coordinates in km, edges carry the duct's
    fiber ``length_km``.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # -- construction -------------------------------------------------------

    def add_hut(self, name: str, x: float, y: float) -> None:
        """Add a fiber hut (intermediate switching/amplification site)."""
        self._add_node(name, NodeKind.HUT, x, y)

    def add_dc(self, name: str, x: float, y: float) -> None:
        """Add a data center site."""
        self._add_node(name, NodeKind.DC, x, y)

    def _add_node(self, name: str, kind: NodeKind, x: float, y: float) -> None:
        if name in self._graph:
            raise RegionError(f"node {name!r} already exists")
        self._graph.add_node(name, kind=kind, x=float(x), y=float(y))

    def add_duct(self, u: str, v: str, length_km: float | None = None) -> Duct:
        """Add a fiber duct between two existing nodes.

        ``length_km`` defaults to the Euclidean distance between the nodes
        (i.e. a route factor of 1); synthetic maps generally pass an inflated
        length to model street-level routing.
        """
        for n in (u, v):
            if n not in self._graph:
                raise RegionError(f"cannot add duct: unknown node {n!r}")
        key = duct_key(u, v)
        if self._graph.has_edge(u, v):
            raise RegionError(f"duct {key} already exists")
        if length_km is None:
            length_km = self.position(u).distance_to(self.position(v))
        if length_km <= 0:
            raise RegionError(f"duct {key} must have positive length")
        self._graph.add_edge(u, v, length_km=float(length_km))
        return key

    def remove_duct(self, u: str, v: str) -> None:
        """Remove a duct (used when pruning spans beyond TC1 reach)."""
        if not self._graph.has_edge(u, v):
            raise RegionError(f"no duct between {u!r} and {v!r}")
        self._graph.remove_edge(u, v)

    def remove_node(self, name: str) -> None:
        """Remove a node and every duct incident to it.

        Used when a DC (or hut) site leaves the region entirely — e.g. a
        ``dc_detached`` delta; its tie-in ducts go with it.
        """
        if name not in self._graph:
            raise RegionError(f"cannot remove unknown node {name!r}")
        self._graph.remove_node(name)

    def copy(self) -> "FiberMap":
        """An independent deep copy of this map."""
        clone = FiberMap()
        clone._graph = self._graph.copy()
        return clone

    # -- inspection ----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying graph (treat as read-only)."""
        return self._graph

    @property
    def dcs(self) -> list[str]:
        """Names of all DC nodes, sorted."""
        return sorted(
            n for n, d in self._graph.nodes(data=True) if d["kind"] is NodeKind.DC
        )

    @property
    def huts(self) -> list[str]:
        """Names of all hut nodes, sorted."""
        return sorted(
            n for n, d in self._graph.nodes(data=True) if d["kind"] is NodeKind.HUT
        )

    @property
    def nodes(self) -> list[str]:
        """All node names, sorted."""
        return sorted(self._graph.nodes)

    @property
    def ducts(self) -> list[Duct]:
        """All duct keys, sorted."""
        return sorted(duct_key(u, v) for u, v in self._graph.edges)

    def kind(self, name: str) -> NodeKind:
        """The :class:`NodeKind` of node ``name``."""
        try:
            return self._graph.nodes[name]["kind"]
        except KeyError:
            raise RegionError(f"unknown node {name!r}") from None

    def position(self, name: str) -> Point:
        """Planar position of node ``name``."""
        try:
            data = self._graph.nodes[name]
        except KeyError:
            raise RegionError(f"unknown node {name!r}") from None
        return Point(data["x"], data["y"])

    def duct_length(self, u: str, v: str) -> float:
        """Fiber length of the duct between ``u`` and ``v`` in km."""
        try:
            return self._graph.edges[u, v]["length_km"]
        except KeyError:
            raise RegionError(f"no duct between {u!r} and {v!r}") from None

    def has_duct(self, u: str, v: str) -> bool:
        """Whether a duct exists between ``u`` and ``v``."""
        return self._graph.has_edge(u, v)

    def dc_pairs(self) -> list[tuple[str, str]]:
        """All unordered DC pairs, canonically ordered."""
        return [pair_key(a, b) for a, b in itertools.combinations(self.dcs, 2)]

    # -- paths ----------------------------------------------------------------

    def subgraph_without(self, failed_ducts: Iterable[Duct]) -> nx.Graph:
        """A graph view of the map with ``failed_ducts`` removed.

        A "fiber cut" in the paper is a duct destruction: all fibers in the
        duct are lost at once (OC4), so removal is at duct granularity.
        """
        excluded = {duct_key(u, v) for u, v in failed_ducts}
        if not excluded:
            return self._graph

        def edge_ok(u: str, v: str) -> bool:
            return duct_key(u, v) not in excluded

        return nx.subgraph_view(self._graph, filter_edge=edge_ok)

    def shortest_path(
        self, a: str, b: str, exclude_ducts: Iterable[Duct] = ()
    ) -> tuple[float, list[str]]:
        """Shortest fiber path from ``a`` to ``b``, optionally under failures.

        Returns ``(length_km, node_list)``. Raises
        :class:`networkx.NetworkXNoPath` if disconnected.
        """
        graph = self.subgraph_without(exclude_ducts)
        length, path = nx.single_source_dijkstra(
            graph, a, target=b, weight="length_km"
        )
        return length, path

    def fiber_distance(self, a: str, b: str) -> float:
        """Shortest-path fiber distance between two nodes, km."""
        return self.shortest_path(a, b)[0]

    def shortest_paths_from(
        self, source: str, exclude_ducts: Iterable[Duct] = ()
    ) -> tuple[dict[str, float], dict[str, list[str]]]:
        """Dijkstra distances and paths from ``source`` to every node."""
        graph = self.subgraph_without(exclude_ducts)
        return nx.single_source_dijkstra(graph, source, weight="length_km")

    def path_length(self, path: Sequence[str]) -> float:
        """Total fiber length of an explicit node path, km."""
        if len(path) < 2:
            return 0.0
        return sum(self.duct_length(u, v) for u, v in zip(path, path[1:]))

    def path_ducts(self, path: Sequence[str]) -> list[Duct]:
        """The ducts traversed by an explicit node path."""
        return [duct_key(u, v) for u, v in zip(path, path[1:])]

    # -- misc ------------------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"FiberMap(dcs={len(self.dcs)}, huts={len(self.huts)}, "
            f"ducts={self._graph.number_of_edges()})"
        )


@dataclass(frozen=True)
class OperationalConstraints:
    """The operational constraints OC1-OC4 of §3.1.

    ``sla_fiber_km``
        OC1: maximum DC-DC fiber distance implied by the latency SLA.
    ``failure_tolerance``
        OC4: number of simultaneous duct cuts that must be tolerated while
        OC1-OC3 continue to hold.
    ``require_shortest_path``
        OC3: route every DC pair over its shortest available physical path.
    ``max_span_km``
        TC1 (kept here because it prunes the input graph): longest duct that
        can be operated point-to-point without in-line amplification.
    """

    sla_fiber_km: float = SLA_MAX_FIBER_KM
    failure_tolerance: int = 2
    require_shortest_path: bool = True
    max_span_km: float = MAX_SPAN_KM

    def __post_init__(self) -> None:
        if self.sla_fiber_km <= 0:
            raise RegionError("SLA fiber distance must be positive")
        if self.failure_tolerance < 0:
            raise RegionError("failure tolerance must be non-negative")
        if self.max_span_km <= 0:
            raise RegionError("max span must be positive")


@dataclass(frozen=True)
class RegionSpec:
    """Everything the network designer is handed (§2): the three inputs.

    ``fiber_map``
        DC sites, fiber huts, and available ducts.
    ``dc_fibers``
        Per-DC network capacity expressed in fibers: capacity B Gbps
        translates to B / (C * lambda) fibers (§2).
    ``wavelengths_per_fiber``
        DWDM channel count per fiber (lambda; 40-64 in the paper).
    ``gbps_per_wavelength``
        Line rate per wavelength (C; 400 for 400ZR).
    ``constraints``
        Operational constraints OC1-OC4.
    """

    fiber_map: FiberMap
    dc_fibers: Mapping[str, int]
    wavelengths_per_fiber: int = 40
    gbps_per_wavelength: float = GBPS_PER_WAVELENGTH_400ZR
    constraints: OperationalConstraints = field(default_factory=OperationalConstraints)

    def __post_init__(self) -> None:
        dcs = set(self.fiber_map.dcs)
        declared = set(self.dc_fibers)
        if declared != dcs:
            missing = dcs - declared
            extra = declared - dcs
            raise RegionError(
                "dc_fibers must cover exactly the map's DCs; "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        for dc, fibers in self.dc_fibers.items():
            if not isinstance(fibers, int) or fibers <= 0:
                raise RegionError(f"DC {dc!r} capacity must be a positive int")
        if self.wavelengths_per_fiber <= 0:
            raise RegionError("wavelengths_per_fiber must be positive")
        if self.gbps_per_wavelength <= 0:
            raise RegionError("gbps_per_wavelength must be positive")

    @property
    def dcs(self) -> list[str]:
        """Names of the region's DCs, sorted."""
        return self.fiber_map.dcs

    def fibers(self, dc: str) -> int:
        """Capacity of ``dc`` in fibers."""
        try:
            return self.dc_fibers[dc]
        except KeyError:
            raise RegionError(f"unknown DC {dc!r}") from None

    def capacity_gbps(self, dc: str) -> float:
        """Capacity of ``dc`` in Gbps."""
        return self.fibers(dc) * self.wavelengths_per_fiber * self.gbps_per_wavelength

    def transceivers(self, dc: str) -> int:
        """Electrical ports / transceivers P = B / C required at ``dc`` (§2)."""
        return self.fibers(dc) * self.wavelengths_per_fiber

    def total_fibers(self) -> int:
        """Sum of all DC capacities in fibers."""
        return sum(self.dc_fibers.values())

    def pair_demand_fibers(self, a: str, b: str) -> int:
        """Worst-case hose demand of a DC pair: min of the two capacities."""
        return min(self.fibers(a), self.fibers(b))

    def iter_pairs(self) -> Iterator[tuple[str, str]]:
        """Iterate canonical DC pairs."""
        return iter(self.fiber_map.dc_pairs())
