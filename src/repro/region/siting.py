"""Siting-flexibility analysis (§2.2, Figs 4-6).

Where can the *next* DC go? Under the centralized design a new DC must sit
within ``SLA/2`` km of fiber from *each* hub (so any DC-hub-DC path meets the
SLA); under the distributed design it must sit within ``SLA`` km of fiber
from *each existing DC*. The permissible area is estimated by sampling a
candidate grid over the region and measuring fiber reach through the map,
"the same criteria as cloud operation teams follow".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import RegionError
from repro.region.fibermap import FiberMap
from repro.region.geometry import Point, area_from_mask, grid_points
from repro.region.placement import (
    candidate_fiber_distance,
    candidate_stub_distances,
    node_distance_maps,
)
from repro.units import SLA_MAX_FIBER_KM

#: Default half-width of the candidate window beyond the hut backbone: one
#: "fiber-reach" scale (~SLA/2 of geographic distance once street routing is
#: accounted for), so neither criterion is artificially clipped.
DEFAULT_SITING_MARGIN_KM = 65.0


@dataclass(frozen=True)
class ServiceArea:
    """A sampled permissible-siting region.

    ``area_km2`` is the Riemann estimate over the candidate grid;
    ``mask[i]`` says whether ``points[i]`` is permissible.
    """

    points: tuple[Point, ...]
    mask: tuple[bool, ...]
    area_km2: float

    @property
    def feasible_fraction(self) -> float:
        """Fraction of sampled candidate sites that are permissible."""
        if not self.mask:
            return 0.0
        return sum(self.mask) / len(self.mask)


def _sample(
    fmap: FiberMap,
    targets: Sequence[str],
    limit_km: float,
    extent_km: float,
    spacing_km: float,
    attach_count: int,
    stub_route_factor: float,
    margin_km: float,
) -> ServiceArea:
    if limit_km <= 0:
        raise RegionError("reach limit must be positive")
    if not targets:
        raise RegionError("service area needs at least one target node")
    if margin_km < 0:
        raise RegionError("margin must be non-negative")
    # Candidate sites extend beyond the built-up backbone: new DCs are
    # routinely sited on the outskirts (Fig 5's shaded areas), reaching the
    # fiber plant over an access stub to the nearest huts.
    window = extent_km + 2.0 * margin_km
    points = grid_points(window, spacing_km, origin=Point(-margin_km, -margin_km))
    stubs = candidate_stub_distances(fmap, points, attach_count, stub_route_factor)
    dist_maps = node_distance_maps(fmap, targets)
    mask = []
    for stub in stubs:
        ok = all(
            candidate_fiber_distance(stub, dist_maps[t]) <= limit_km for t in targets
        )
        mask.append(ok)
    return ServiceArea(
        points=tuple(points),
        mask=tuple(mask),
        area_km2=area_from_mask(mask, window),
    )


def centralized_service_area(
    fmap: FiberMap,
    hubs: Sequence[str],
    extent_km: float,
    sla_fiber_km: float = SLA_MAX_FIBER_KM,
    spacing_km: float = 2.0,
    attach_count: int = 3,
    stub_route_factor: float = 1.3,
    margin_km: float | None = None,
) -> ServiceArea:
    """Permissible area for a new DC under the centralized design.

    Every DC must be within ``sla/2`` km of fiber from each hub, so that any
    DC-hub-DC path stays within the SLA (§2.2: "the 120 km limit restricts
    each DC-hub connection to at most 60 km of fiber").

    ``margin_km`` widens the candidate window beyond the hut backbone
    (defaults to :data:`DEFAULT_SITING_MARGIN_KM`).
    """
    return _sample(
        fmap,
        list(hubs),
        sla_fiber_km / 2.0,
        extent_km,
        spacing_km,
        attach_count,
        stub_route_factor,
        DEFAULT_SITING_MARGIN_KM if margin_km is None else margin_km,
    )


def distributed_service_area(
    fmap: FiberMap,
    extent_km: float,
    dcs: Sequence[str] | None = None,
    sla_fiber_km: float = SLA_MAX_FIBER_KM,
    spacing_km: float = 2.0,
    attach_count: int = 3,
    stub_route_factor: float = 1.3,
    margin_km: float | None = None,
) -> ServiceArea:
    """Permissible area for a new DC under the distributed design.

    The new DC must be within ``sla`` km of fiber of every *existing DC*;
    hubs play no role.
    """
    targets = list(dcs) if dcs is not None else fmap.dcs
    return _sample(
        fmap,
        targets,
        sla_fiber_km,
        extent_km,
        spacing_km,
        attach_count,
        stub_route_factor,
        DEFAULT_SITING_MARGIN_KM if margin_km is None else margin_km,
    )


def render_service_area(
    area: ServiceArea, existing: Sequence[Point] = ()
) -> str:
    """ASCII rendering of a sampled service area (the Fig 5 visual).

    ``#`` marks permissible candidate sites, ``.`` impermissible ones, and
    ``D`` the positions in ``existing`` (snapped to the nearest sample).
    Rows print north-to-south.
    """
    if not area.points:
        raise RegionError("cannot render an empty service area")
    xs = sorted({p.x for p in area.points})
    ys = sorted({p.y for p in area.points})
    col = {x: i for i, x in enumerate(xs)}
    row = {y: i for i, y in enumerate(ys)}
    grid = [["." for _ in xs] for _ in ys]
    for point, ok in zip(area.points, area.mask):
        if ok:
            grid[row[point.y]][col[point.x]] = "#"
    for marker in existing:
        cx = min(xs, key=lambda x: abs(x - marker.x))
        cy = min(ys, key=lambda y: abs(y - marker.y))
        grid[row[cy]][col[cx]] = "D"
    return "\n".join("".join(r) for r in reversed(grid))


def flexibility_gain(
    fmap: FiberMap,
    hubs: Sequence[str],
    extent_km: float,
    dcs: Sequence[str] | None = None,
    sla_fiber_km: float = SLA_MAX_FIBER_KM,
    spacing_km: float = 2.0,
) -> float:
    """Fig 6's metric: distributed service area / centralized service area."""
    distributed = distributed_service_area(
        fmap, extent_km, dcs=dcs, sla_fiber_km=sla_fiber_km, spacing_km=spacing_km
    )
    centralized = centralized_service_area(
        fmap, hubs, extent_km, sla_fiber_km=sla_fiber_km, spacing_km=spacing_km
    )
    if centralized.area_km2 == 0:
        return float("inf") if distributed.area_km2 > 0 else 1.0
    return distributed.area_km2 / centralized.area_km2
