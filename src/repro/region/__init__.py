"""Regional substrate: fiber maps, synthetic regions, placement, siting."""

from repro.region.fibermap import (
    FiberMap,
    NodeKind,
    OperationalConstraints,
    RegionSpec,
    duct_key,
)
from repro.region.delta import DELTA_KINDS, RegionDelta, delta_from_dict
from repro.region.geometry import Point, euclidean_km
from repro.region.synthetic import SyntheticMapConfig, generate_fiber_map
from repro.region.placement import PlacementConfig, place_dcs
from repro.region.catalog import fiber_map_ensemble, region_ensemble, make_region
from repro.region.stats import map_stats, region_summary

__all__ = [
    "FiberMap",
    "NodeKind",
    "OperationalConstraints",
    "RegionSpec",
    "duct_key",
    "DELTA_KINDS",
    "RegionDelta",
    "delta_from_dict",
    "Point",
    "euclidean_km",
    "SyntheticMapConfig",
    "generate_fiber_map",
    "PlacementConfig",
    "place_dcs",
    "fiber_map_ensemble",
    "region_ensemble",
    "make_region",
    "map_stats",
    "region_summary",
]
