"""Descriptive statistics of fiber maps and regions.

Used to characterize the synthetic ensembles against the regime the paper
describes (regions of tens of km, short hop counts, metro route factors) and
to explain reproduction deviations quantitatively in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import RegionError
from repro.region.fibermap import FiberMap, RegionSpec


@dataclass(frozen=True)
class MapStats:
    """Shape of one fiber map / region."""

    dcs: int
    huts: int
    ducts: int
    mean_duct_km: float
    mean_route_factor: float
    mean_pair_distance_km: float
    max_pair_distance_km: float
    mean_pair_hops: float
    max_pair_hops: int


def _mean(values) -> float:
    values = list(values)
    if not values:
        raise RegionError("mean of empty data")
    return sum(values) / len(values)


def map_stats(fmap: FiberMap) -> MapStats:
    """Statistics over ducts and all DC-pair shortest paths."""
    ducts = fmap.ducts
    if not ducts:
        raise RegionError("fiber map has no ducts")
    lengths = [fmap.duct_length(u, v) for u, v in ducts]
    factors = []
    for u, v in ducts:
        geo = fmap.position(u).distance_to(fmap.position(v))
        if geo > 1e-6:
            factors.append(fmap.duct_length(u, v) / geo)

    pair_km: list[float] = []
    pair_hops: list[int] = []
    for a, b in fmap.dc_pairs():
        km, path = fmap.shortest_path(a, b)
        pair_km.append(km)
        pair_hops.append(len(path) - 1)

    return MapStats(
        dcs=len(fmap.dcs),
        huts=len(fmap.huts),
        ducts=len(ducts),
        mean_duct_km=_mean(lengths),
        mean_route_factor=_mean(factors) if factors else 1.0,
        mean_pair_distance_km=_mean(pair_km) if pair_km else 0.0,
        max_pair_distance_km=max(pair_km) if pair_km else 0.0,
        mean_pair_hops=_mean(pair_hops) if pair_hops else 0.0,
        max_pair_hops=max(pair_hops) if pair_hops else 0,
    )


def region_summary(region: RegionSpec) -> dict[str, float | int]:
    """A flat summary suitable for CLI tables and logs."""
    stats = map_stats(region.fiber_map)
    return {
        "dcs": stats.dcs,
        "huts": stats.huts,
        "ducts": stats.ducts,
        "total_capacity_tbps": sum(
            region.capacity_gbps(dc) for dc in region.dcs
        )
        / 1000.0,
        "mean_pair_distance_km": round(stats.mean_pair_distance_km, 1),
        "max_pair_distance_km": round(stats.max_pair_distance_km, 1),
        "mean_pair_hops": round(stats.mean_pair_hops, 2),
        "mean_route_factor": round(stats.mean_route_factor, 2),
        "sla_fiber_km": region.constraints.sla_fiber_km,
        "failure_tolerance": region.constraints.failure_tolerance,
    }
