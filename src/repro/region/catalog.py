"""Deterministic region ensembles standing in for the paper's datasets.

The paper evaluates on proprietary data: 10 real fiber maps (§6.1), Azure DC
locations across 22 regions (Fig 3) and 33 regions (Fig 6). This catalog
regenerates equivalently-shaped synthetic ensembles from fixed seeds so every
analysis and benchmark is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import RegionError
from repro.region.fibermap import FiberMap, OperationalConstraints, RegionSpec
from repro.region.placement import PlacementConfig, choose_hubs, place_dcs
from repro.region.synthetic import SyntheticMapConfig, generate_fiber_map

#: Seed namespace so different ensembles never overlap.
_MAP_SEED_BASE = 52_000
_PLACEMENT_SEED_BASE = 97_000


@dataclass(frozen=True)
class RegionInstance:
    """A fully-instantiated synthetic region: map + DCs + candidate hubs."""

    name: str
    spec: RegionSpec
    extent_km: float
    hubs: tuple[str, str]


def _map_config(rng: random.Random, size_hint: str = "medium") -> SyntheticMapConfig:
    """Sample a map configuration in the regime the paper describes."""
    if size_hint == "small":
        extent = rng.uniform(25.0, 32.0)
        step = rng.uniform(7.0, 9.0)
    elif size_hint == "medium":
        extent = rng.uniform(30.0, 42.0)
        step = rng.uniform(8.0, 11.0)
    elif size_hint == "large":
        extent = rng.uniform(40.0, 52.0)
        step = rng.uniform(10.0, 13.0)
    else:
        raise RegionError(f"unknown size hint {size_hint!r}")
    return SyntheticMapConfig(
        extent_km=extent,
        grid_step_km=step,
        jitter_km=step * 0.22,
        diagonal_probability=rng.uniform(0.35, 0.55),
        skip_probability=rng.uniform(0.05, 0.15),
    )


def fiber_map_ensemble(
    count: int = 10, seed: int = 2020
) -> list[tuple[FiberMap, float]]:
    """The "10 real region fiber maps" stand-in: ``count`` synthetic maps.

    Returns (map, extent_km) pairs; maps contain only huts and ducts.
    """
    if count < 1:
        raise RegionError("ensemble needs at least one map")
    out = []
    hints = ("small", "medium", "large")
    for i in range(count):
        rng = random.Random(_MAP_SEED_BASE + seed * 1_000 + i)
        config = _map_config(rng, hints[i % len(hints)])
        fmap = generate_fiber_map(seed=_MAP_SEED_BASE + seed * 1_000 + i, config=config)
        out.append((fmap, config.extent_km))
    return out


def make_region(
    map_index: int = 0,
    n_dcs: int = 5,
    dc_fibers: int = 8,
    wavelengths_per_fiber: int = 40,
    failure_tolerance: int = 2,
    seed: int = 2020,
    placement_seed: int | None = None,
    max_attempts: int = 8,
) -> RegionInstance:
    """Instantiate one region: pick map ``map_index``, place ``n_dcs`` DCs.

    Placement occasionally paints itself into a corner (the feasible area
    empties); the procedure retries with follow-on seeds up to
    ``max_attempts`` times, which mirrors how the randomized evaluation
    would simply resample.
    """
    maps = fiber_map_ensemble(count=map_index + 1, seed=seed)
    base_map, extent = maps[map_index]
    if placement_seed is None:
        placement_seed = _PLACEMENT_SEED_BASE + map_index * 101 + n_dcs

    last_error: Exception | None = None
    for attempt in range(max_attempts):
        fmap = base_map.copy()
        try:
            dcs = place_dcs(
                fmap,
                n_dcs,
                seed=placement_seed + attempt,
                config=PlacementConfig(),
                extent_km=extent,
            )
        except RegionError as exc:
            last_error = exc
            continue
        spec = RegionSpec(
            fiber_map=fmap,
            dc_fibers={dc: dc_fibers for dc in dcs},
            wavelengths_per_fiber=wavelengths_per_fiber,
            constraints=OperationalConstraints(failure_tolerance=failure_tolerance),
        )
        hubs = choose_hubs(fmap, separation_km=(3.0, 12.0))
        return RegionInstance(
            name=f"region-m{map_index}-n{n_dcs}",
            spec=spec,
            extent_km=extent,
            hubs=hubs,
        )
    raise RegionError(
        f"could not place {n_dcs} DCs on map {map_index} "
        f"after {max_attempts} attempts"
    ) from last_error


def region_ensemble(
    count: int = 22,
    n_dcs_range: tuple[int, int] = (5, 15),
    dc_fibers: int = 8,
    seed: int = 2020,
) -> list[RegionInstance]:
    """An ensemble of fully-placed regions (stands in for Fig 3's 22 and
    Fig 6's 33 Azure regions). DC counts cycle through ``n_dcs_range``.
    """
    lo, hi = n_dcs_range
    if not (1 <= lo <= hi):
        raise RegionError("n_dcs_range must be ordered and positive")
    out = []
    for i in range(count):
        n_dcs = lo + (i % (hi - lo + 1))
        instance = make_region(
            map_index=i % 10,
            n_dcs=n_dcs,
            dc_fibers=dc_fibers,
            seed=seed,
            placement_seed=_PLACEMENT_SEED_BASE + 7_777 + i * 31,
        )
        out.append(
            RegionInstance(
                name=f"region-{i:02d}-n{n_dcs}",
                spec=instance.spec,
                extent_km=instance.extent_km,
                hubs=instance.hubs,
            )
        )
    return out
