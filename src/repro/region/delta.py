"""Canonical region deltas: the operational events a region evolves by.

The paper's operational setting is a *living* region: ducts get cut (and
new ones trenched), DCs attach to and detach from the regional network,
and equipment prices move under the planner's cost model. Each such event
is a :class:`RegionDelta` — a small, canonical, JSON-encodable value that
maps one :class:`~repro.region.fibermap.RegionSpec` to the next.

Deltas are the unit of *incremental replanning*: the planner service
(:mod:`repro.service`) patches a cached plan by recomputing only the
failure scenarios and hose flows a delta touches, with the hard guarantee
that the patched plan is byte-identical to a cold replan of
``delta.apply_to_region(region)`` (see :func:`repro.service.apply_delta`).
This module owns only the delta *semantics* — what each kind means and how
it rewrites a region; the reuse machinery lives in the service layer.

Supported kinds (:data:`DELTA_KINDS`):

``duct_added`` / ``duct_cut``
    A duct appears in / disappears from the fiber map. A "cut" here is the
    *planning* view of a long-lived failure or decommissioning — transient
    cuts within the failure tolerance are the planner's own OC4 business
    and need no replan at all.
``dc_attached`` / ``dc_detached``
    A DC site joins (with its capacity and tie-in ducts) or leaves the
    region; detaching removes the site's incident ducts with it.
``dc_resized``
    A DC's network capacity (in fibers) changes; the map is untouched.
``price_changed``
    Pricebook fields move. Plans are price-free (costing happens
    downstream of planning), so this delta rewrites no region state; it
    exists so price events flow through the same service API and can
    invalidate *costed* artifacts keyed by pricebook.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.exceptions import RegionError
from repro.region.fibermap import Duct, RegionSpec, duct_key

#: Every delta kind this encoding (and the service's replanner) supports.
DELTA_KINDS = (
    "duct_added",
    "duct_cut",
    "dc_attached",
    "dc_detached",
    "dc_resized",
    "price_changed",
)

#: Encoding version folded into the wire/dict form, so a future shape
#: change invalidates queued requests loudly instead of misreading them.
DELTA_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RegionDelta:
    """One canonical region mutation (see the module docstring for kinds).

    Construct via the per-kind classmethods (:meth:`duct_added`,
    :meth:`duct_cut`, :meth:`dc_attached`, :meth:`dc_detached`,
    :meth:`dc_resized`, :meth:`price_changed`) rather than the raw
    constructor; they validate the kind-specific fields and canonicalize
    duct endpoints. Instances are immutable and hashable, so they can key
    caches and coalesce identical service requests.
    """

    kind: str
    duct: Duct | None = None
    length_km: float | None = None
    dc: str | None = None
    x: float | None = None
    y: float | None = None
    fibers: int | None = None
    ducts: tuple[tuple[str, float], ...] = ()
    prices: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise RegionError(
                f"unknown delta kind {self.kind!r}; supported: "
                f"{', '.join(DELTA_KINDS)}"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def duct_added(
        cls, u: str, v: str, length_km: float | None = None
    ) -> "RegionDelta":
        """A new duct between existing nodes ``u`` and ``v``.

        ``length_km`` defaults (at apply time) to the Euclidean distance,
        matching :meth:`~repro.region.fibermap.FiberMap.add_duct`.
        """
        if length_km is not None and length_km <= 0:
            raise RegionError("duct_added length_km must be positive")
        return cls(kind="duct_added", duct=duct_key(u, v), length_km=length_km)

    @classmethod
    def duct_cut(cls, u: str, v: str) -> "RegionDelta":
        """Permanent loss of the duct between ``u`` and ``v``."""
        return cls(kind="duct_cut", duct=duct_key(u, v))

    @classmethod
    def dc_attached(
        cls,
        name: str,
        x: float,
        y: float,
        fibers: int,
        ducts: "tuple[tuple[str, float | None], ...] | list" = (),
    ) -> "RegionDelta":
        """A new DC at ``(x, y)`` with ``fibers`` capacity and tie-in ducts.

        ``ducts`` is a sequence of ``(neighbor, length_km)`` tie-ins (at
        least one, or the new site would be unreachable); a ``None``
        length defaults to Euclidean at apply time.
        """
        if not isinstance(fibers, int) or fibers <= 0:
            raise RegionError("dc_attached fibers must be a positive int")
        tie_ins = tuple((str(n), length) for n, length in ducts)
        if not tie_ins:
            raise RegionError(
                f"dc_attached {name!r} needs at least one tie-in duct"
            )
        for neighbor, length in tie_ins:
            if neighbor == name:
                raise RegionError("dc_attached tie-in cannot self-loop")
            if length is not None and length <= 0:
                raise RegionError("dc_attached tie-in lengths must be positive")
        return cls(
            kind="dc_attached",
            dc=name,
            x=float(x),
            y=float(y),
            fibers=fibers,
            ducts=tie_ins,
        )

    @classmethod
    def dc_detached(cls, name: str) -> "RegionDelta":
        """DC ``name`` leaves the region (incident ducts go with it)."""
        return cls(kind="dc_detached", dc=name)

    @classmethod
    def dc_resized(cls, name: str, fibers: int) -> "RegionDelta":
        """DC ``name``'s capacity becomes ``fibers`` (map untouched)."""
        if not isinstance(fibers, int) or fibers <= 0:
            raise RegionError("dc_resized fibers must be a positive int")
        return cls(kind="dc_resized", dc=name, fibers=fibers)

    @classmethod
    def price_changed(cls, **overrides: float) -> "RegionDelta":
        """Pricebook field overrides (e.g. ``transceiver_400zr=...``).

        Field names are validated lazily against
        :class:`repro.cost.pricebook.PriceBook` in
        :meth:`apply_to_pricebook`, keeping the region layer free of cost
        imports.
        """
        if not overrides:
            raise RegionError("price_changed needs at least one field override")
        return cls(
            kind="price_changed",
            prices=tuple(sorted((k, float(v)) for k, v in overrides.items())),
        )

    # -- application ---------------------------------------------------------

    def apply_to_region(self, region: RegionSpec) -> RegionSpec:
        """The mutated region this delta maps ``region`` to.

        Pure: ``region`` is never modified (maps are copied before
        mutation). ``price_changed`` returns ``region`` itself — prices
        are not region state — which callers may use as the "this delta
        cannot change any plan" signal. Raises
        :class:`~repro.exceptions.RegionError` when the delta does not
        apply (unknown node, duplicate duct, ...).
        """
        if self.kind == "price_changed":
            return region
        if self.kind == "dc_resized":
            if self.dc not in region.dc_fibers:
                raise RegionError(f"dc_resized: unknown DC {self.dc!r}")
            dc_fibers = dict(region.dc_fibers)
            dc_fibers[str(self.dc)] = int(self.fibers)  # type: ignore[arg-type]
            return replace(region, dc_fibers=dc_fibers)

        fmap = region.fiber_map.copy()
        dc_fibers: Mapping[str, int] | dict[str, int] = region.dc_fibers
        if self.kind == "duct_added":
            assert self.duct is not None
            fmap.add_duct(self.duct[0], self.duct[1], length_km=self.length_km)
        elif self.kind == "duct_cut":
            assert self.duct is not None
            fmap.remove_duct(self.duct[0], self.duct[1])
        elif self.kind == "dc_attached":
            assert self.dc is not None and self.fibers is not None
            fmap.add_dc(self.dc, self.x, self.y)  # type: ignore[arg-type]
            for neighbor, length in self.ducts:
                fmap.add_duct(self.dc, neighbor, length_km=length)
            dc_fibers = dict(region.dc_fibers)
            dc_fibers[self.dc] = self.fibers
        elif self.kind == "dc_detached":
            assert self.dc is not None
            if self.dc not in fmap or self.dc not in region.dc_fibers:
                raise RegionError(f"dc_detached: unknown DC {self.dc!r}")
            fmap.remove_node(self.dc)
            dc_fibers = {
                dc: cap for dc, cap in region.dc_fibers.items() if dc != self.dc
            }
        return replace(region, fiber_map=fmap, dc_fibers=dc_fibers)

    def apply_to_pricebook(self, pricebook: Any) -> Any:
        """``pricebook`` with this delta's price overrides applied.

        Returns ``pricebook`` unchanged for non-price kinds. Unknown field
        names raise :class:`~repro.exceptions.RegionError`.
        """
        if self.kind != "price_changed":
            return pricebook
        from dataclasses import fields as dataclass_fields

        known = {f.name for f in dataclass_fields(pricebook)}
        overrides = dict(self.prices)
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise RegionError(
                f"price_changed: unknown pricebook field(s) {unknown}"
            )
        return replace(pricebook, **overrides)

    def touched_dcs(self) -> frozenset[str]:
        """DCs whose cached hose instances this delta may strand.

        The hose cache keys every entry by (pair set, DC capacities), so
        capacity changes *miss* — never collide — by construction; this
        set exists for memory hygiene in long-lived processes (see
        :func:`repro.core.hose.invalidate_hose_dcs`): a detached or
        resized DC's old-capacity instances can never be requested again.
        """
        if self.kind in ("dc_detached", "dc_resized"):
            return frozenset({str(self.dc)})
        return frozenset()

    # -- canonical encoding --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form (inverse: :func:`delta_from_dict`).

        Only the fields the kind uses are emitted, so two equal deltas
        encode to identical dicts and the encoding diffs cleanly.
        """
        out: dict[str, Any] = {
            "format_version": DELTA_FORMAT_VERSION,
            "kind": self.kind,
        }
        if self.kind in ("duct_added", "duct_cut"):
            assert self.duct is not None
            out["duct"] = list(self.duct)
            if self.kind == "duct_added" and self.length_km is not None:
                out["length_km"] = self.length_km
        elif self.kind == "dc_attached":
            out["dc"] = self.dc
            out["x"] = self.x
            out["y"] = self.y
            out["fibers"] = self.fibers
            out["ducts"] = [
                {"to": neighbor, "length_km": length}
                for neighbor, length in self.ducts
            ]
        elif self.kind in ("dc_detached", "dc_resized"):
            out["dc"] = self.dc
            if self.kind == "dc_resized":
                out["fibers"] = self.fibers
        elif self.kind == "price_changed":
            out["prices"] = dict(self.prices)
        return out


def delta_from_dict(data: dict[str, Any]) -> RegionDelta:
    """Inverse of :meth:`RegionDelta.to_dict`."""
    version = data.get("format_version")
    if version != DELTA_FORMAT_VERSION:
        raise RegionError(f"unsupported delta format version {version!r}")
    kind = data.get("kind")
    try:
        if kind == "duct_added":
            u, v = data["duct"]
            return RegionDelta.duct_added(u, v, length_km=data.get("length_km"))
        if kind == "duct_cut":
            u, v = data["duct"]
            return RegionDelta.duct_cut(u, v)
        if kind == "dc_attached":
            return RegionDelta.dc_attached(
                data["dc"],
                data["x"],
                data["y"],
                data["fibers"],
                ducts=tuple(
                    (entry["to"], entry.get("length_km"))
                    for entry in data["ducts"]
                ),
            )
        if kind == "dc_detached":
            return RegionDelta.dc_detached(data["dc"])
        if kind == "dc_resized":
            return RegionDelta.dc_resized(data["dc"], data["fibers"])
        if kind == "price_changed":
            return RegionDelta.price_changed(**data["prices"])
    except (KeyError, TypeError, ValueError) as exc:
        raise RegionError(f"malformed {kind!r} delta: {exc}") from exc
    raise RegionError(
        f"unknown delta kind {kind!r}; supported: {', '.join(DELTA_KINDS)}"
    )
