"""Randomized DC placement on a fiber map (the §6.1 procedure).

The paper evaluates on 10 real fiber maps with a randomized placement of
n in {5, 10, 15, 20} DCs: "the first DC is placed uniformly at random in the
service area, and each successive DC is placed randomly (in the more
restricted service area given reach from already placed DCs) with probability
of a candidate location being inversely proportional to its distance from the
nearest already placed DC."

This module reimplements that procedure on synthetic maps. Candidate
locations are a sampling grid over the region; reach is measured as *fiber*
distance through the map (candidate stubs to its nearest huts, then shortest
path), exactly as a deployment team would measure it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx

from repro.exceptions import RegionError
from repro.region.fibermap import FiberMap
from repro.region.geometry import Point, grid_points
from repro.region.synthetic import attach_dc
from repro.units import SLA_MAX_FIBER_KM


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for randomized DC placement.

    ``sla_fiber_km``
        Maximum fiber distance allowed between any two DCs (OC1).
    ``attach_count``
        Access ducts built from each new DC to its nearest huts.
    ``stub_route_factor``
        Street-routing inflation for the access stubs.
    ``candidate_spacing_km``
        Sampling grid pitch for candidate sites.
    ``min_separation_km``
        Never place two DCs closer than this (sites are distinct facilities).
    """

    sla_fiber_km: float = SLA_MAX_FIBER_KM
    attach_count: int = 3
    stub_route_factor: float = 1.3
    candidate_spacing_km: float = 2.0
    min_separation_km: float = 2.0


def candidate_stub_distances(
    fmap: FiberMap,
    candidates: Sequence[Point],
    attach_count: int,
    stub_route_factor: float,
) -> list[list[tuple[str, float]]]:
    """For each candidate, its ``attach_count`` nearest huts and stub lengths."""
    huts = fmap.huts
    if not huts:
        raise RegionError("fiber map has no huts")
    out: list[list[tuple[str, float]]] = []
    positions = {h: fmap.position(h) for h in huts}
    for point in candidates:
        ranked = sorted(huts, key=lambda h: (point.distance_to(positions[h]), h))
        chosen = ranked[: min(attach_count, len(ranked))]
        out.append(
            [(h, point.distance_to(positions[h]) * stub_route_factor) for h in chosen]
        )
    return out


def candidate_fiber_distance(
    stubs: Sequence[tuple[str, float]], dist_from_target: Mapping[str, float]
) -> float:
    """Fiber distance from a candidate to a target node.

    ``stubs`` is the candidate's (hut, stub_km) attachment list and
    ``dist_from_target`` the Dijkstra distance map rooted at the target.
    Unreachable huts are skipped; returns ``inf`` if none is reachable.
    """
    best = float("inf")
    for hut, stub_km in stubs:
        through = dist_from_target.get(hut)
        if through is not None:
            best = min(best, stub_km + through)
    return best


def node_distance_maps(
    fmap: FiberMap, targets: Sequence[str]
) -> dict[str, dict[str, float]]:
    """Dijkstra distance maps rooted at each target node."""
    out = {}
    for target in targets:
        out[target] = nx.single_source_dijkstra_path_length(
            fmap.graph, target, weight="length_km"
        )
    return out


def place_dcs(
    fmap: FiberMap,
    count: int,
    seed: int,
    config: PlacementConfig | None = None,
    extent_km: float | None = None,
) -> list[str]:
    """Place ``count`` DCs on ``fmap`` per the §6.1 procedure. Mutates the map.

    Returns the new DC names (``DC1`` .. ``DCn``). Raises
    :class:`RegionError` if the feasible area empties before ``count`` DCs
    are placed (the caller should retry with another seed or a larger map).
    """
    config = config or PlacementConfig()
    if count < 1:
        raise RegionError("must place at least one DC")
    rng = random.Random(seed)

    if extent_km is None:
        xs = [fmap.position(n).x for n in fmap.nodes]
        ys = [fmap.position(n).y for n in fmap.nodes]
        extent_km = max(max(xs) - min(xs), max(ys) - min(ys))
    candidates = grid_points(extent_km, config.candidate_spacing_km)
    stubs = candidate_stub_distances(
        fmap, candidates, config.attach_count, config.stub_route_factor
    )

    placed: list[str] = []
    placed_points: list[Point] = []
    dist_maps: dict[str, dict[str, float]] = {}
    available = list(range(len(candidates)))

    for index in range(count):
        feasible: list[int] = []
        weights: list[float] = []
        for ci in available:
            point = candidates[ci]
            if placed_points:
                nearest_geo = min(point.distance_to(p) for p in placed_points)
                if nearest_geo < config.min_separation_km:
                    continue
                reach_ok = all(
                    candidate_fiber_distance(stubs[ci], dist_maps[dc])
                    <= config.sla_fiber_km
                    for dc in placed
                )
                if not reach_ok:
                    continue
                weights.append(1.0 / max(nearest_geo, 1e-3))
            else:
                weights.append(1.0)
            feasible.append(ci)

        if not feasible:
            raise RegionError(
                f"no feasible candidate for DC {index + 1} of {count} "
                f"(seed {seed}); feasible area exhausted"
            )
        chosen = rng.choices(feasible, weights=weights[: len(feasible)], k=1)[0]
        point = candidates[chosen]
        name = f"DC{index + 1}"
        attach_dc(
            fmap,
            name,
            point,
            rng,
            attach_count=config.attach_count,
            stub_route_factor=config.stub_route_factor,
        )
        placed.append(name)
        placed_points.append(point)
        dist_maps[name] = nx.single_source_dijkstra_path_length(
            fmap.graph, name, weight="length_km"
        )
        available.remove(chosen)

    return placed


def choose_hubs(
    fmap: FiberMap, separation_km: tuple[float, float], seed: int = 0
) -> tuple[str, str]:
    """Pick two huts to act as the centralized design's hubs.

    Hubs are chosen near the region's centre (to maximize the service area,
    §2.2) with a mutual geographic separation inside ``separation_km``.
    The paper contrasts nearby hubs (4-7 km) with spread hubs (20-24 km).
    """
    lo, hi = separation_km
    if lo < 0 or hi < lo:
        raise RegionError("separation range must be ordered and non-negative")
    huts = fmap.huts
    if len(huts) < 2:
        raise RegionError("need at least two huts to choose hubs")
    xs = [fmap.position(h).x for h in huts]
    ys = [fmap.position(h).y for h in huts]
    centre = Point((min(xs) + max(xs)) / 2.0, (min(ys) + max(ys)) / 2.0)

    best: tuple[float, str, str] | None = None
    for i, h1 in enumerate(huts):
        p1 = fmap.position(h1)
        for h2 in huts[i + 1 :]:
            p2 = fmap.position(h2)
            sep = p1.distance_to(p2)
            if not (lo <= sep <= hi):
                continue
            centrality = p1.distance_to(centre) + p2.distance_to(centre)
            if best is None or centrality < best[0]:
                best = (centrality, h1, h2)
    if best is None:
        raise RegionError(
            f"no hut pair with separation in [{lo}, {hi}] km exists on this map"
        )
    return best[1], best[2]
