"""Planar geometry helpers for regional fiber maps.

Regions span tens of kilometres, so a flat Cartesian plane (coordinates in
km) is an adequate model; no geodesy is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.units import GEO_TO_FIBER_FACTOR


@dataclass(frozen=True)
class Point:
    """A location in the region plane, coordinates in kilometres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in km."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


def euclidean_km(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between two coordinate pairs, in km."""
    return math.hypot(ax - bx, ay - by)


def estimated_fiber_km(geo_km: float, factor: float = GEO_TO_FIBER_FACTOR) -> float:
    """Estimate fiber distance from geographic distance.

    The paper (Fig 3) estimates unknown DC-DC fiber distances with the
    industry rule of thumb of multiplying geo-distance by 2 [8, 15].
    """
    if geo_km < 0:
        raise ValueError("distance must be non-negative")
    return geo_km * factor


def bounding_box(points: Iterable[Point]) -> tuple[Point, Point]:
    """Axis-aligned bounding box (min corner, max corner) of ``points``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of empty point set")
    return (
        Point(min(p.x for p in pts), min(p.y for p in pts)),
        Point(max(p.x for p in pts), max(p.y for p in pts)),
    )


def grid_points(
    extent_km: float, spacing_km: float, origin: Point = Point(0.0, 0.0)
) -> list[Point]:
    """A square grid of candidate locations covering ``extent_km``.

    Used by the siting analysis to estimate service areas by sampling.
    The grid includes both boundary rows/columns.
    """
    if extent_km <= 0 or spacing_km <= 0:
        raise ValueError("extent and spacing must be positive")
    steps = int(round(extent_km / spacing_km))
    return [
        Point(origin.x + i * spacing_km, origin.y + j * spacing_km)
        for i in range(steps + 1)
        for j in range(steps + 1)
    ]


def area_from_mask(mask: Sequence[bool], extent_km: float) -> float:
    """Area in km^2 represented by the true cells of a sampled grid mask.

    Each sample point stands for an equal share of the ``extent_km`` square;
    this is a Monte-Carlo / Riemann estimate adequate for area *ratios*,
    which is what the paper's Fig 6 reports.
    """
    total = len(mask)
    if total == 0:
        return 0.0
    return extent_km * extent_km * sum(1 for m in mask if m) / total
