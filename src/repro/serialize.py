"""JSON serialization for regions and plans.

Regions round-trip exactly. Plans serialize to an audit-friendly summary
(provisioning per duct, amplifier sites, cut-throughs, costs) — the planner
is deterministic, so a plan is always recoverable from its region.

Instrumentation attached to a plan (:class:`~repro.core.engine.PlanTimings`
and the :class:`~repro.obs.SpanRecord` trace) is handled explicitly rather
than leaking through: the default summary includes only timing fields that
are invariant to execution environment (scenario and hose-lookup counts),
so serializing the same region's plan is byte-identical across repeated
runs, worker counts, and cache warmth. Backend identity, the cache
hit/miss split, wall-clock seconds, and the full span tree are opt-in via
``include_runtime`` / ``include_trace``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.engine import PlanTimings
from repro.core.plan import IrisPlan
from repro.exceptions import ReproError
from repro.obs import record_to_dict
from repro.region.fibermap import (
    FiberMap,
    NodeKind,
    OperationalConstraints,
    RegionSpec,
)

FORMAT_VERSION = 1


def fiber_map_to_dict(fmap: FiberMap) -> dict[str, Any]:
    """Plain-dict form of a fiber map."""
    return {
        "nodes": [
            {
                "name": name,
                "kind": fmap.kind(name).value,
                "x": fmap.position(name).x,
                "y": fmap.position(name).y,
            }
            for name in fmap.nodes
        ],
        "ducts": [
            {"u": u, "v": v, "length_km": fmap.duct_length(u, v)}
            for u, v in fmap.ducts
        ],
    }


def fiber_map_from_dict(data: dict[str, Any]) -> FiberMap:
    """Inverse of :func:`fiber_map_to_dict`."""
    fmap = FiberMap()
    try:
        for node in data["nodes"]:
            kind = NodeKind(node["kind"])
            if kind is NodeKind.DC:
                fmap.add_dc(node["name"], node["x"], node["y"])
            else:
                fmap.add_hut(node["name"], node["x"], node["y"])
        for duct in data["ducts"]:
            fmap.add_duct(duct["u"], duct["v"], length_km=duct["length_km"])
    except (KeyError, ValueError) as exc:
        raise ReproError(f"malformed fiber map data: {exc}") from exc
    return fmap


def region_to_json(region: RegionSpec, indent: int | None = 2) -> str:
    """Serialize a region specification to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "fiber_map": fiber_map_to_dict(region.fiber_map),
        "dc_fibers": dict(region.dc_fibers),
        "wavelengths_per_fiber": region.wavelengths_per_fiber,
        "gbps_per_wavelength": region.gbps_per_wavelength,
        "constraints": {
            "sla_fiber_km": region.constraints.sla_fiber_km,
            "failure_tolerance": region.constraints.failure_tolerance,
            "require_shortest_path": region.constraints.require_shortest_path,
            "max_span_km": region.constraints.max_span_km,
        },
    }
    return json.dumps(payload, indent=indent)


def region_from_json(text: str) -> RegionSpec:
    """Inverse of :func:`region_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid JSON: {exc}") from exc
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported format version {version!r}")
    try:
        constraints = OperationalConstraints(**data["constraints"])
        return RegionSpec(
            fiber_map=fiber_map_from_dict(data["fiber_map"]),
            dc_fibers=data["dc_fibers"],
            wavelengths_per_fiber=data["wavelengths_per_fiber"],
            gbps_per_wavelength=data["gbps_per_wavelength"],
            constraints=constraints,
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed region data: {exc}") from exc


def timings_to_dict(
    timings: PlanTimings, *, include_runtime: bool = False
) -> dict[str, Any]:
    """Explicit serialization of a plan's timing instrumentation.

    The default output holds only fields invariant to the execution
    environment: scenario count and total hose lookups (the cache
    hit/miss *split* shifts with worker count and cache warmth, but
    their sum does not). ``include_runtime`` adds the run-specific
    fields — backend identity, the hit/miss split, and wall-clock
    seconds — so audit files diff cleanly by default.
    """
    out: dict[str, Any] = {
        "scenarios_evaluated": timings.scenarios_evaluated,
        "hose_lookups": timings.hose_cache_hits + timings.hose_cache_misses,
    }
    if include_runtime:
        out["backend"] = timings.backend
        out["jobs"] = timings.jobs
        out["hose_cache_hits"] = timings.hose_cache_hits
        out["hose_cache_misses"] = timings.hose_cache_misses
        out["enumerate_s"] = timings.enumerate_s
        out["capacity_s"] = timings.capacity_s
        out["total_s"] = timings.total_s
    return out


def plan_to_dict(
    plan: IrisPlan,
    *,
    include_trace: bool = False,
    include_runtime: bool = False,
) -> dict[str, Any]:
    """Audit summary of an Iris plan.

    Timings and the span trace never leak implicitly: the ``timings``
    block carries environment-invariant fields only (see
    :func:`timings_to_dict`), and the full span tree appears solely when
    ``include_trace=True``.
    """
    out: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "base_capacity": {
            f"{u}~{v}": cap for (u, v), cap in sorted(plan.topology.edge_capacity.items())
        },
        "residual": {
            f"{u}~{v}": count for (u, v), count in sorted(plan.residual.items())
        },
        "amplifier_sites": dict(plan.amplifiers.site_counts),
        "cut_throughs": [
            {
                "via": list(link.via),
                "fiber_pairs": link.fiber_pairs,
                "length_km": link.length_km,
            }
            for link in plan.cut_throughs
        ],
        "scenarios_enumerated": len(plan.topology.scenario_paths),
        "scenarios_total": plan.topology.scenario_count_total,
        "total_fiber_pair_spans": plan.total_fiber_pair_spans(),
    }
    if plan.topology.timings is not None:
        out["timings"] = timings_to_dict(
            plan.topology.timings, include_runtime=include_runtime
        )
    if include_trace and plan.topology.trace is not None:
        out["trace"] = record_to_dict(
            plan.topology.trace, include_durations=include_runtime
        )
    return out


def plan_to_json(
    plan: IrisPlan,
    *,
    indent: int | None = 2,
    include_trace: bool = False,
    include_runtime: bool = False,
) -> str:
    """Serialize a plan summary to JSON (deterministic by default)."""
    return json.dumps(
        plan_to_dict(
            plan,
            include_trace=include_trace,
            include_runtime=include_runtime,
        ),
        indent=indent,
    )
