"""JSON serialization for regions and plans.

Regions round-trip exactly. Plans serialize two ways:

* the default audit-friendly *summary* (provisioning per duct, amplifier
  sites, cut-throughs, costs) — the planner is deterministic, so a plan is
  always recoverable from its region; and
* the lossless *full* form (``plan_to_dict(..., full=True)``), which adds
  the region, every scenario's shortest paths, the amplifier assignments,
  and the effective paths, so :func:`plan_from_dict` /
  :func:`plan_from_json` can reconstruct the complete
  :class:`~repro.core.plan.IrisPlan` without replanning. This is the
  encoding :mod:`repro.store` persists: a cached plan loaded back is
  bit-identical (``plan_to_json`` equality) to a freshly planned one.

Instrumentation attached to a plan (:class:`~repro.core.engine.PlanTimings`
and the :class:`~repro.obs.SpanRecord` trace) is handled explicitly rather
than leaking through: the default summary includes only timing fields that
are invariant to execution environment (scenario and hose-lookup counts),
so serializing the same region's plan is byte-identical across repeated
runs, worker counts, and cache warmth. Backend identity, the cache
hit/miss split, wall-clock seconds, and the full span tree are opt-in via
``include_runtime`` / ``include_trace``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

from repro.core.engine import PlanTimings
from repro.core.failures import Scenario
from repro.core.plan import (
    AmplifierPlan,
    CutThroughLink,
    EffectivePath,
    IrisPlan,
    Pair,
    TopologyPlan,
)
from repro.exceptions import ReproError
from repro.obs import record_to_dict
from repro.region.fibermap import (
    Duct,
    FiberMap,
    NodeKind,
    OperationalConstraints,
    RegionSpec,
    duct_key,
)

FORMAT_VERSION = 1


def fiber_map_to_dict(fmap: FiberMap) -> dict[str, Any]:
    """Plain-dict form of a fiber map."""
    return {
        "nodes": [
            {
                "name": name,
                "kind": fmap.kind(name).value,
                "x": fmap.position(name).x,
                "y": fmap.position(name).y,
            }
            for name in fmap.nodes
        ],
        "ducts": [
            {"u": u, "v": v, "length_km": fmap.duct_length(u, v)}
            for u, v in fmap.ducts
        ],
    }


def fiber_map_from_dict(data: dict[str, Any]) -> FiberMap:
    """Inverse of :func:`fiber_map_to_dict`."""
    fmap = FiberMap()
    try:
        for node in data["nodes"]:
            kind = NodeKind(node["kind"])
            if kind is NodeKind.DC:
                fmap.add_dc(node["name"], node["x"], node["y"])
            else:
                fmap.add_hut(node["name"], node["x"], node["y"])
        for duct in data["ducts"]:
            fmap.add_duct(duct["u"], duct["v"], length_km=duct["length_km"])
    except (KeyError, ValueError) as exc:
        raise ReproError(f"malformed fiber map data: {exc}") from exc
    return fmap


def region_to_dict(region: RegionSpec) -> dict[str, Any]:
    """Plain-dict form of a region specification (exact round-trip)."""
    return {
        "format_version": FORMAT_VERSION,
        "fiber_map": fiber_map_to_dict(region.fiber_map),
        "dc_fibers": dict(sorted(region.dc_fibers.items())),
        "wavelengths_per_fiber": region.wavelengths_per_fiber,
        "gbps_per_wavelength": region.gbps_per_wavelength,
        "constraints": {
            "sla_fiber_km": region.constraints.sla_fiber_km,
            "failure_tolerance": region.constraints.failure_tolerance,
            "require_shortest_path": region.constraints.require_shortest_path,
            "max_span_km": region.constraints.max_span_km,
        },
    }


def region_from_dict(data: dict[str, Any]) -> RegionSpec:
    """Inverse of :func:`region_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported format version {version!r}")
    try:
        constraints = OperationalConstraints(**data["constraints"])
        return RegionSpec(
            fiber_map=fiber_map_from_dict(data["fiber_map"]),
            dc_fibers=data["dc_fibers"],
            wavelengths_per_fiber=data["wavelengths_per_fiber"],
            gbps_per_wavelength=data["gbps_per_wavelength"],
            constraints=constraints,
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed region data: {exc}") from exc


def region_to_json(region: RegionSpec, indent: int | None = 2) -> str:
    """Serialize a region specification to JSON."""
    return json.dumps(region_to_dict(region), indent=indent)


def region_from_json(text: str) -> RegionSpec:
    """Inverse of :func:`region_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid JSON: {exc}") from exc
    return region_from_dict(data)


# -- duct / pair / scenario keys ----------------------------------------------
#
# JSON object keys must be strings: a duct or DC pair becomes "u~v" (node
# names never contain '~') and a failure scenario the sorted list of its
# duct strings. Everything is emitted in sorted order so the encoding is
# deterministic and diffs cleanly.


def _duct_str(duct: Duct) -> str:
    return f"{duct[0]}~{duct[1]}"


def _duct_from_str(text: str) -> Duct:
    parts = text.split("~")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ReproError(f"malformed duct key {text!r}")
    return duct_key(parts[0], parts[1])


def _scenario_to_list(scenario: Scenario) -> list[str]:
    return sorted(_duct_str(duct) for duct in scenario)


def _scenario_from_list(items: list[str]) -> Scenario:
    return Scenario(_duct_from_str(item) for item in items)


def _scenario_sort_key(scenario: Scenario) -> tuple[int, list[Duct]]:
    return (len(scenario), sorted(scenario))


def timings_to_dict(
    timings: PlanTimings, *, include_runtime: bool = False
) -> dict[str, Any]:
    """Explicit serialization of a plan's timing instrumentation.

    The default output holds only fields invariant to the execution
    environment: scenario count and total hose lookups (the cache
    hit/miss *split* shifts with worker count and cache warmth, but
    their sum does not). ``include_runtime`` adds the run-specific
    fields — backend identity, the hit/miss split, and wall-clock
    seconds — so audit files diff cleanly by default.
    """
    out: dict[str, Any] = {
        "scenarios_evaluated": timings.scenarios_evaluated,
        "hose_lookups": timings.hose_cache_hits + timings.hose_cache_misses,
    }
    if include_runtime:
        out["backend"] = timings.backend
        out["jobs"] = timings.jobs
        out["hose_cache_hits"] = timings.hose_cache_hits
        out["hose_cache_misses"] = timings.hose_cache_misses
        # Cold/incremental is a property of per-process cache warmth, so
        # it is runtime-variant by the same argument as the hit/miss split.
        out["hose_cold_solves"] = timings.hose_cold_solves
        out["hose_incremental_solves"] = timings.hose_incremental_solves
        out["enumerate_s"] = timings.enumerate_s
        out["capacity_s"] = timings.capacity_s
        out["total_s"] = timings.total_s
    return out


def _scenario_paths_to_list(
    scenario_paths: Mapping[Scenario, Mapping[Pair, tuple[str, ...]]],
) -> list[dict[str, Any]]:
    """Deterministic list form of a scenario -> pair -> path mapping."""
    return [
        {
            "scenario": _scenario_to_list(scenario),
            "paths": {
                _duct_str(pair): list(path)
                for pair, path in sorted(paths.items())
            },
        }
        for scenario, paths in sorted(
            scenario_paths.items(), key=lambda kv: _scenario_sort_key(kv[0])
        )
    ]


def _scenario_paths_from_list(
    entries: list[dict[str, Any]],
) -> dict[Scenario, dict[Pair, tuple[str, ...]]]:
    """Inverse of :func:`_scenario_paths_to_list`."""
    return {
        _scenario_from_list(entry["scenario"]): {
            _duct_from_str(pair): tuple(path)
            for pair, path in entry["paths"].items()
        }
        for entry in entries
    }


def topology_to_dict(topology: TopologyPlan) -> dict[str, Any]:
    """Lossless plain-dict form of an Algorithm-1 topology plan.

    Used by :mod:`repro.store` for artifacts that carry a bare topology
    (the EPS design, the sweep's tolerance-0 baseline) rather than a full
    Iris plan. Environment-invariant: only the invariant timing fields
    are kept (see :func:`timings_to_dict`).
    """
    out: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "edge_capacity": {
            _duct_str(duct): cap
            for duct, cap in sorted(topology.edge_capacity.items())
        },
        "scenario_paths": _scenario_paths_to_list(topology.scenario_paths),
        "scenarios_total": topology.scenario_count_total,
    }
    if topology.timings is not None:
        out["timings"] = timings_to_dict(topology.timings)
    return out


def topology_from_dict(data: dict[str, Any]) -> TopologyPlan:
    """Inverse of :func:`topology_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported format version {version!r}")
    try:
        return TopologyPlan(
            edge_capacity={
                _duct_from_str(key): int(cap)
                for key, cap in data["edge_capacity"].items()
            },
            scenario_paths=_scenario_paths_from_list(data["scenario_paths"]),
            scenario_count_total=int(data["scenarios_total"]),
            timings=_timings_from_dict(data.get("timings")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed topology data: {exc}") from exc


def plan_to_dict(
    plan: IrisPlan,
    *,
    include_trace: bool = False,
    include_runtime: bool = False,
    full: bool = False,
) -> dict[str, Any]:
    """Audit summary of an Iris plan.

    Timings and the span trace never leak implicitly: the ``timings``
    block carries environment-invariant fields only (see
    :func:`timings_to_dict`), and the full span tree appears solely when
    ``include_trace=True``.

    ``full=True`` additionally embeds the region, every scenario's
    shortest paths, the amplifier assignments, and the effective paths —
    everything :func:`plan_from_dict` needs to reconstruct the complete
    :class:`IrisPlan` without replanning. The full form is still
    environment-invariant by default (no wall times, no trace), so the
    same plan always encodes to the same bytes.
    """
    out: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "base_capacity": {
            f"{u}~{v}": cap for (u, v), cap in sorted(plan.topology.edge_capacity.items())
        },
        "residual": {
            f"{u}~{v}": count for (u, v), count in sorted(plan.residual.items())
        },
        "amplifier_sites": dict(plan.amplifiers.site_counts),
        "cut_throughs": [
            {
                "via": list(link.via),
                "fiber_pairs": link.fiber_pairs,
                "length_km": link.length_km,
            }
            for link in plan.cut_throughs
        ],
        "scenarios_enumerated": len(plan.topology.scenario_paths),
        "scenarios_total": plan.topology.scenario_count_total,
        "total_fiber_pair_spans": plan.total_fiber_pair_spans(),
    }
    if plan.topology.timings is not None:
        out["timings"] = timings_to_dict(
            plan.topology.timings, include_runtime=include_runtime
        )
    if include_trace and plan.topology.trace is not None:
        out["trace"] = record_to_dict(
            plan.topology.trace, include_durations=include_runtime
        )
    if full:
        out["region"] = region_to_dict(plan.region)
        out["scenario_paths"] = _scenario_paths_to_list(
            plan.topology.scenario_paths
        )
        out["amplifier_assignments"] = [
            {
                "scenario": _scenario_to_list(scenario),
                "pair": _duct_str(pair),
                "node": node,
            }
            for (scenario, pair), node in sorted(
                plan.amplifiers.assignments.items(),
                key=lambda kv: (_scenario_sort_key(kv[0][0]), kv[0][1]),
            )
        ]
        out["effective_paths"] = [
            {
                "scenario": _scenario_to_list(scenario),
                "pair": _duct_str(pair),
                "nodes": list(path.nodes),
                "hop_lengths_km": list(path.hop_lengths_km),
                "hop_chains": [list(chain) for chain in path.hop_chains],
                "amp_node": path.amp_node,
            }
            for (scenario, pair), path in sorted(
                plan.effective_paths.items(),
                key=lambda kv: (_scenario_sort_key(kv[0][0]), kv[0][1]),
            )
        ]
    return out


def plan_to_json(
    plan: IrisPlan,
    *,
    indent: int | None = 2,
    include_trace: bool = False,
    include_runtime: bool = False,
    full: bool = False,
) -> str:
    """Serialize a plan summary to JSON (deterministic by default)."""
    return json.dumps(
        plan_to_dict(
            plan,
            include_trace=include_trace,
            include_runtime=include_runtime,
            full=full,
        ),
        indent=indent,
    )


def _timings_from_dict(data: dict[str, Any] | None) -> PlanTimings | None:
    """The environment-invariant :class:`PlanTimings` view of a stored plan.

    Wall times and the cache hit/miss split are run artifacts that the
    full encoding deliberately omits; the reconstruction keeps the two
    invariant fields (scenario count, total hose lookups) and zeroes the
    rest, labelling the backend ``"store"`` so runtime-opted-in audits can
    tell a loaded plan from a planned one.
    """
    if data is None:
        return None
    return PlanTimings(
        enumerate_s=0.0,
        capacity_s=0.0,
        total_s=0.0,
        scenarios_evaluated=int(data.get("scenarios_evaluated", 0)),
        hose_cache_hits=0,
        hose_cache_misses=int(data.get("hose_lookups", 0)),
        backend="store",
        jobs=1,
    )


def plan_from_dict(data: dict[str, Any]) -> IrisPlan:
    """Inverse of ``plan_to_dict(..., full=True)``.

    Reconstructs the complete :class:`IrisPlan` — region, topology,
    amplifiers, cut-throughs, residual fibers, effective paths — from the
    lossless encoding. Summary-only dicts (without the ``full=True``
    fields) raise :class:`ReproError`: a summary is an audit artifact,
    not a plan.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported format version {version!r}")
    missing = {"region", "scenario_paths", "effective_paths"} - set(data)
    if missing:
        raise ReproError(
            "not a full plan encoding (missing "
            f"{', '.join(sorted(missing))}); serialize with full=True"
        )
    try:
        region = region_from_dict(data["region"])
        edge_capacity: dict[Duct, int] = {
            _duct_from_str(key): int(cap)
            for key, cap in data["base_capacity"].items()
        }
        scenario_paths = _scenario_paths_from_list(data["scenario_paths"])
        topology = TopologyPlan(
            edge_capacity=edge_capacity,
            scenario_paths=scenario_paths,
            scenario_count_total=int(data["scenarios_total"]),
            timings=_timings_from_dict(data.get("timings")),
        )
        amplifiers = AmplifierPlan(
            site_counts={
                site: int(count)
                for site, count in data["amplifier_sites"].items()
            },
            assignments={
                (
                    _scenario_from_list(entry["scenario"]),
                    _duct_from_str(entry["pair"]),
                ): entry["node"]
                for entry in data.get("amplifier_assignments", [])
            },
        )
        cut_throughs = tuple(
            CutThroughLink(
                via=tuple(entry["via"]),
                fiber_pairs=int(entry["fiber_pairs"]),
                length_km=float(entry["length_km"]),
            )
            for entry in data["cut_throughs"]
        )
        residual: dict[Duct, int] = {
            _duct_from_str(key): int(count)
            for key, count in data["residual"].items()
        }
        effective_paths: dict[tuple[Scenario, Pair], EffectivePath] = {
            (
                _scenario_from_list(entry["scenario"]),
                _duct_from_str(entry["pair"]),
            ): EffectivePath(
                nodes=tuple(entry["nodes"]),
                hop_lengths_km=tuple(entry["hop_lengths_km"]),
                hop_chains=tuple(
                    tuple(chain) for chain in entry["hop_chains"]
                ),
                amp_node=entry["amp_node"],
            )
            for entry in data["effective_paths"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed plan data: {exc}") from exc
    return IrisPlan(
        region=region,
        topology=topology,
        amplifiers=amplifiers,
        cut_throughs=cut_throughs,
        residual=residual,
        effective_paths=effective_paths,
    )


def plan_from_json(text: str) -> IrisPlan:
    """Inverse of ``plan_to_json(..., full=True)``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid JSON: {exc}") from exc
    return plan_from_dict(data)
