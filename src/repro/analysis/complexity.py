"""Management-complexity accounting (§2.3 Outcome #3, §6.1).

Beyond dollars, the paper argues designs differ in what must be *managed*:
equipment sites, ports, and device classes. Iris "reduces network
complexity by reducing the total number of ports, electrical or optical,
that need to be managed" while still requiring "management of in-network
equipment across multiple sites, instead of just two hubs" for distributed
topologies. This module quantifies those statements for a planned region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import IrisPlan
from repro.designs.eps import eps_inventory
from repro.region.fibermap import NodeKind


@dataclass(frozen=True)
class ComplexitySummary:
    """What one design asks operators to manage."""

    design: str
    equipment_sites: int
    in_network_sites: int  # sites that are not DCs
    managed_ports: int
    in_network_ports: int
    device_classes: int


def iris_complexity(plan: IrisPlan) -> ComplexitySummary:
    """Iris: OSSes at used nodes, amplifiers, transceivers at DCs only."""
    region = plan.region
    used = plan.topology.used_nodes()
    in_network_sites = {
        n for n in used if region.fiber_map.kind(n) is NodeKind.HUT
    }
    inv = plan.inventory()
    # Device classes: OSS, amplifier, transceiver, channel emulator.
    return ComplexitySummary(
        design="iris",
        equipment_sites=len(used),
        in_network_sites=len(in_network_sites),
        managed_ports=inv.total_ports,
        in_network_ports=inv.in_network_ports,
        device_classes=4,
    )


def eps_complexity(plan: IrisPlan) -> ComplexitySummary:
    """EPS: electrical switches wherever a segment terminates."""
    region = plan.region
    inv = eps_inventory(region, plan.topology)
    # Termination sites: DCs plus every hut where a segment ends (the
    # degree!=2 nodes of the used topology) — recompute via segments.
    import networkx as nx

    used = nx.Graph()
    for (u, v), cap in plan.topology.edge_capacity.items():
        if cap > 0:
            used.add_edge(u, v)
    dcs = set(region.fiber_map.dcs)
    switching = {n for n in used.nodes if n in dcs or used.degree(n) != 2}
    in_network = {
        n for n in switching if region.fiber_map.kind(n) is NodeKind.HUT
    }
    # Device classes: electrical switch, transceiver, amplifier.
    return ComplexitySummary(
        design="eps",
        equipment_sites=len(switching),
        in_network_sites=len(in_network),
        managed_ports=inv.total_ports,
        in_network_ports=inv.in_network_ports,
        device_classes=3,
    )


def port_reduction_factor(plan: IrisPlan) -> float:
    """§3: Iris reduces in-network ports "by an order of magnitude"."""
    eps = eps_complexity(plan)
    iris = iris_complexity(plan)
    if iris.in_network_ports == 0:
        return float("inf")
    return eps.in_network_ports / iris.in_network_ports
