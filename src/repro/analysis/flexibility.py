"""Fig 6: siting-area increase of the distributed approach.

For each region in an ensemble, the permissible area for the next DC under
the distributed criterion (within SLA fiber reach of every existing DC)
divided by the area under the centralized criterion (within SLA/2 of both
hubs). The paper reports 2-5x across 33 regions, shrinking (but staying
>= 2x) as regions hold more DCs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.engine import get_backend, map_in_chunks, worker_safe
from repro.exceptions import ReproError
from repro.region.catalog import RegionInstance
from repro.region.siting import (
    centralized_service_area,
    distributed_service_area,
)


@worker_safe
def _instance_gains(
    spacing_km: float, chunk: list[RegionInstance]
) -> list[tuple[str, float]]:
    """Worker: one (name, gain) per instance (module-level for pickling)."""
    out: list[tuple[str, float]] = []
    for instance in chunk:
        region = instance.spec
        distributed = distributed_service_area(
            region.fiber_map,
            instance.extent_km,
            sla_fiber_km=region.constraints.sla_fiber_km,
            spacing_km=spacing_km,
        )
        centralized = centralized_service_area(
            region.fiber_map,
            instance.hubs,
            instance.extent_km,
            sla_fiber_km=region.constraints.sla_fiber_km,
            spacing_km=spacing_km,
        )
        if centralized.area_km2 <= 0:
            gain = float("inf")
        else:
            gain = distributed.area_km2 / centralized.area_km2
        out.append((instance.name, gain))
    return out


def flexibility_gains(
    instances: Sequence[RegionInstance],
    spacing_km: float = 2.5,
    jobs: int | None = 1,
    backend: str | None = None,
) -> list[tuple[str, float]]:
    """(region name, area gain) per region, in ensemble order.

    ``jobs`` fans the per-region service-area rasterization out over
    worker processes (``backend`` names the execution backend); output
    order is ensemble order either way.
    """
    if not instances:
        raise ReproError("empty ensemble")
    with get_backend(jobs, backend) as backend:
        return map_in_chunks(
            backend, _instance_gains, spacing_km, list(instances)
        )
