"""Per-figure analyses of the paper's evaluation."""

from repro.analysis.latency import latency_inflation_ratios, cdf, fraction_at_least
from repro.analysis.flexibility import flexibility_gains
from repro.analysis.portcost import port_cost_table
from repro.analysis.designspace import (
    SweepPoint,
    SweepRecord,
    default_mini_sweep,
    full_paper_sweep,
    run_sweep,
)
from repro.analysis.toy import toy_example_summary
from repro.analysis.complexity import (
    eps_complexity,
    iris_complexity,
    port_reduction_factor,
)

__all__ = [
    "latency_inflation_ratios",
    "cdf",
    "fraction_at_least",
    "flexibility_gains",
    "port_cost_table",
    "SweepPoint",
    "SweepRecord",
    "default_mini_sweep",
    "full_paper_sweep",
    "run_sweep",
    "toy_example_summary",
    "eps_complexity",
    "iris_complexity",
    "port_reduction_factor",
]
