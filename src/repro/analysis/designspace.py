"""Fig 12: the cost/ports design-space sweep.

The paper sweeps 10 real fiber maps x n in {5,10,15,20} DCs x f in {8,16,32}
fibers x lambda in {40,64} wavelengths — 240 scenarios — and compares Iris,
hybrid, and EPS realizations of the same Algorithm-1 topology. Headlines:

* 12(a): EPS >= 5x Iris for 80% of scenarios; hybrid ~= Iris; in-network-only
  cost >= 10x for 80%.
* 12(b): Iris keeps a large advantage even at short-reach transceiver prices.
* 12(c): EPS needs many times more in-network ports than DC ports; Iris <1x.
* 12(d): Iris tolerating 2 cuts is >2x cheaper than EPS tolerating none.

``default_mini_sweep`` is a reduced grid sized for CI/benchmarks (the full
grid plans 20-DC regions and runs for hours, matching the paper's note that
planning itself takes minutes per large region); ``full_paper_sweep`` is the
complete 240-point grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.engine import get_backend, map_in_chunks
from repro.core.planner import IrisPlanner
from repro.cost.estimator import estimate_cost
from repro.exceptions import InfeasibleRegionError, PlanningError
from repro.cost.pricebook import PriceBook
from repro.designs.eps import eps_inventory
from repro.designs.hybrid import hybridize
from repro.region.catalog import make_region
from repro.region.fibermap import OperationalConstraints, RegionSpec


@dataclass(frozen=True)
class SweepPoint:
    """One input scenario of the Fig 12 grid."""

    map_index: int
    n_dcs: int
    dc_fibers: int
    wavelengths: int


@dataclass(frozen=True)
class SweepRecord:
    """All Fig 12 quantities for one scenario."""

    point: SweepPoint
    iris_cost: float
    eps_cost: float
    hybrid_cost: float
    iris_cost_sr: float
    eps_cost_sr: float
    iris_innetwork_cost: float
    eps_innetwork_cost: float
    iris_port_ratio: float  # in-network ports / DC ports
    eps_port_ratio: float
    eps_tol0_cost: float  # EPS provisioned with no failure tolerance

    @property
    def eps_over_iris(self) -> float:
        """Fig 12(a)'s headline ratio."""
        return self.eps_cost / self.iris_cost

    @property
    def eps_over_hybrid(self) -> float:
        """EPS vs the hybrid realization."""
        return self.eps_cost / self.hybrid_cost

    @property
    def eps_over_iris_innetwork(self) -> float:
        """In-network components only (Fig 12(a)'s sharper line)."""
        return self.eps_innetwork_cost / self.iris_innetwork_cost

    @property
    def eps_over_iris_sr(self) -> float:
        """Fig 12(b): the ratio at short-reach transceiver prices."""
        return self.eps_cost_sr / self.iris_cost_sr

    @property
    def eps_tol0_over_iris(self) -> float:
        """Fig 12(d): unprotected EPS vs 2-failure-tolerant Iris."""
        return self.eps_tol0_cost / self.iris_cost


def default_mini_sweep() -> list[SweepPoint]:
    """A reduced grid preserving the paper's axes (maps, n, f, lambda)."""
    return [
        SweepPoint(map_index=m, n_dcs=n, dc_fibers=f, wavelengths=lam)
        for m in range(4)
        for n in (5, 10)
        for f in (8, 16)
        for lam in (40, 64)
    ]


def full_paper_sweep() -> list[SweepPoint]:
    """The complete 240-scenario grid of §6.1 (hours of planning)."""
    return [
        SweepPoint(map_index=m, n_dcs=n, dc_fibers=f, wavelengths=lam)
        for m in range(10)
        for n in (5, 10, 15, 20)
        for f in (8, 16, 32)
        for lam in (40, 64)
    ]


def _plan_sweep_point(
    failure_tolerance: int, chunk: list[SweepPoint]
) -> list[tuple]:
    """Worker: the (expensive) planning products for a chunk of grid points.

    One entry per point: (instance, iris plan, tolerance-0 spec, tolerance-0
    topology). Module-level so the sweep can fan grid points out over a
    process pool; each worker plans serially (no nested pools).
    """
    out: list[tuple] = []
    for point in chunk:
        # Randomized placement occasionally yields a region the planner
        # proves infeasible (e.g. disconnected once Iris-unusable ducts
        # are pruned): resample the placement, as the paper's
        # randomized methodology implicitly does.
        last_error: Exception | None = None
        for attempt in range(6):
            instance = make_region(
                map_index=point.map_index,
                n_dcs=point.n_dcs,
                dc_fibers=point.dc_fibers,
                wavelengths_per_fiber=point.wavelengths,
                failure_tolerance=failure_tolerance,
                placement_seed=None if attempt == 0 else 881 * attempt,
            )
            try:
                plan = IrisPlanner(instance.spec).plan()
                break
            except (InfeasibleRegionError, PlanningError) as exc:
                last_error = exc
        else:
            raise PlanningError(
                f"no feasible placement for {point} after resampling"
            ) from last_error
        tol0_spec = RegionSpec(
            fiber_map=instance.spec.fiber_map,
            dc_fibers=instance.spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        tol0_topology = IrisPlanner(tol0_spec).plan_topology()
        out.append((instance, plan, tol0_spec, tol0_topology))
    return out


def run_sweep(
    points: Iterable[SweepPoint],
    prices: PriceBook | None = None,
    failure_tolerance: int = 2,
    jobs: int | None = 1,
) -> list[SweepRecord]:
    """Plan and price every scenario. Plans are cached per (map, n, f)
    since the wavelength count only affects pricing.

    ``jobs`` fans the per-(map, n, f) planning out over worker processes
    (grid-point parallelism); pricing stays in the parent, so records are
    identical to a serial run.
    """
    prices = prices or PriceBook.default()
    sr_prices = prices.with_sr_priced_dci()
    points = list(points)

    # The distinct (map, n, f) plan keys, in first-occurrence order; each
    # is planned once with the wavelengths of its first point (wavelengths
    # only affect pricing, which happens per point below).
    key_points: dict[tuple[int, int, int], SweepPoint] = {}
    for point in points:
        key = (point.map_index, point.n_dcs, point.dc_fibers)
        key_points.setdefault(key, point)
    with get_backend(jobs) as backend:
        planned = map_in_chunks(
            backend,
            _plan_sweep_point,
            failure_tolerance,
            list(key_points.values()),
            # Each grid point is minutes of work at paper scale: chunk at
            # one point per task so the pool load-balances.
            chunks_per_worker=max(len(key_points), 1),
        )
    plan_cache = dict(zip(key_points, planned))

    records: list[SweepRecord] = []
    for point in points:
        key = (point.map_index, point.n_dcs, point.dc_fibers)
        instance, plan, tol0_spec, tol0_topology = plan_cache[key]

        region = RegionSpec(
            fiber_map=instance.spec.fiber_map,
            dc_fibers=instance.spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=instance.spec.constraints,
        )
        # Re-bind the plan's region so inventories use this lambda.
        from dataclasses import replace

        plan_l = replace(plan, region=region)
        iris_inv = plan_l.inventory()
        eps_inv = eps_inventory(region, plan_l.topology)
        hybrid_inv = hybridize(plan_l).inventory()
        tol0_region = RegionSpec(
            fiber_map=tol0_spec.fiber_map,
            dc_fibers=tol0_spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=tol0_spec.constraints,
        )
        eps_tol0_inv = eps_inventory(tol0_region, tol0_topology)

        iris = estimate_cost(iris_inv, prices)
        eps = estimate_cost(eps_inv, prices)
        hybrid = estimate_cost(hybrid_inv, prices)
        records.append(
            SweepRecord(
                point=point,
                iris_cost=iris.total,
                eps_cost=eps.total,
                hybrid_cost=hybrid.total,
                iris_cost_sr=estimate_cost(iris_inv, sr_prices).total,
                eps_cost_sr=estimate_cost(eps_inv, sr_prices).total,
                iris_innetwork_cost=iris.in_network_total,
                eps_innetwork_cost=eps.in_network_total,
                iris_port_ratio=(
                    iris_inv.in_network_ports / iris_inv.dc_ports
                ),
                eps_port_ratio=(
                    eps_inv.in_network_ports / eps_inv.dc_ports
                ),
                eps_tol0_cost=estimate_cost(eps_tol0_inv, prices).total,
            )
        )
    return records
