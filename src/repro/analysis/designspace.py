"""Fig 12: the cost/ports design-space sweep.

The paper sweeps 10 real fiber maps x n in {5,10,15,20} DCs x f in {8,16,32}
fibers x lambda in {40,64} wavelengths — 240 scenarios — and compares Iris,
hybrid, and EPS realizations of the same Algorithm-1 topology. Headlines:

* 12(a): EPS >= 5x Iris for 80% of scenarios; hybrid ~= Iris; in-network-only
  cost >= 10x for 80%.
* 12(b): Iris keeps a large advantage even at short-reach transceiver prices.
* 12(c): EPS needs many times more in-network ports than DC ports; Iris <1x.
* 12(d): Iris tolerating 2 cuts is >2x cheaper than EPS tolerating none.

``default_mini_sweep`` is a reduced grid sized for CI/benchmarks (the full
grid plans 20-DC regions and runs for hours, matching the paper's note that
planning itself takes minutes per large region); ``full_paper_sweep`` is the
complete 240-point grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.engine import get_backend, worker_safe
from repro.core.planner import IrisPlanner
from repro.cost.estimator import estimate_cost
from repro.exceptions import InfeasibleRegionError, PlanningError, ReproError
from repro.cost.pricebook import PriceBook
from repro.designs.eps import eps_inventory
from repro.designs.hybrid import hybridize
from repro.region.catalog import RegionInstance, make_region
from repro.region.fibermap import OperationalConstraints, RegionSpec

if TYPE_CHECKING:
    from repro.store import PlanStore


@dataclass(frozen=True)
class SweepPoint:
    """One input scenario of the Fig 12 grid."""

    map_index: int
    n_dcs: int
    dc_fibers: int
    wavelengths: int


@dataclass(frozen=True)
class SweepRecord:
    """All Fig 12 quantities for one scenario."""

    point: SweepPoint
    iris_cost: float
    eps_cost: float
    hybrid_cost: float
    iris_cost_sr: float
    eps_cost_sr: float
    iris_innetwork_cost: float
    eps_innetwork_cost: float
    iris_port_ratio: float  # in-network ports / DC ports
    eps_port_ratio: float
    eps_tol0_cost: float  # EPS provisioned with no failure tolerance

    @property
    def eps_over_iris(self) -> float:
        """Fig 12(a)'s headline ratio."""
        return self.eps_cost / self.iris_cost

    @property
    def eps_over_hybrid(self) -> float:
        """EPS vs the hybrid realization."""
        return self.eps_cost / self.hybrid_cost

    @property
    def eps_over_iris_innetwork(self) -> float:
        """In-network components only (Fig 12(a)'s sharper line)."""
        return self.eps_innetwork_cost / self.iris_innetwork_cost

    @property
    def eps_over_iris_sr(self) -> float:
        """Fig 12(b): the ratio at short-reach transceiver prices."""
        return self.eps_cost_sr / self.iris_cost_sr

    @property
    def eps_tol0_over_iris(self) -> float:
        """Fig 12(d): unprotected EPS vs 2-failure-tolerant Iris."""
        return self.eps_tol0_cost / self.iris_cost


def default_mini_sweep() -> list[SweepPoint]:
    """A reduced grid preserving the paper's axes (maps, n, f, lambda)."""
    return [
        SweepPoint(map_index=m, n_dcs=n, dc_fibers=f, wavelengths=lam)
        for m in range(4)
        for n in (5, 10)
        for f in (8, 16)
        for lam in (40, 64)
    ]


def full_paper_sweep() -> list[SweepPoint]:
    """The complete 240-scenario grid of §6.1 (hours of planning)."""
    return [
        SweepPoint(map_index=m, n_dcs=n, dc_fibers=f, wavelengths=lam)
        for m in range(10)
        for n in (5, 10, 15, 20)
        for f in (8, 16, 32)
        for lam in (40, 64)
    ]


@worker_safe
def _plan_sweep_point(
    failure_tolerance: int, chunk: list[SweepPoint]
) -> list[tuple]:
    """Worker: the (expensive) planning products for a chunk of grid points.

    One entry per point: (instance, iris plan, tolerance-0 spec, tolerance-0
    topology). Module-level so the sweep can fan grid points out over a
    process pool; each worker plans serially (no nested pools).
    """
    out: list[tuple] = []
    for point in chunk:
        # Randomized placement occasionally yields a region the planner
        # proves infeasible (e.g. disconnected once Iris-unusable ducts
        # are pruned): resample the placement, as the paper's
        # randomized methodology implicitly does.
        last_error: Exception | None = None
        for attempt in range(6):
            instance = make_region(
                map_index=point.map_index,
                n_dcs=point.n_dcs,
                dc_fibers=point.dc_fibers,
                wavelengths_per_fiber=point.wavelengths,
                failure_tolerance=failure_tolerance,
                placement_seed=None if attempt == 0 else 881 * attempt,
            )
            try:
                plan = IrisPlanner(instance.spec).plan()
                break
            except (InfeasibleRegionError, PlanningError) as exc:
                last_error = exc
        else:
            raise PlanningError(
                f"no feasible placement for {point} after resampling"
            ) from last_error
        tol0_spec = RegionSpec(
            fiber_map=instance.spec.fiber_map,
            dc_fibers=instance.spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        tol0_topology = IrisPlanner(tol0_spec).plan_topology()
        out.append((instance, plan, tol0_spec, tol0_topology))
    return out


def _cell_key(point: SweepPoint, failure_tolerance: int) -> str:
    """The store key for one sweep cell's planning products.

    A cell is one distinct (map, n, f) — planned once with the
    wavelengths of its representative point — so the key covers exactly
    the inputs :func:`_plan_sweep_point` consumes. Prices are absent by
    design: pricing happens per point in the parent, on top of the cell.
    """
    from repro.store import artifact_key

    return artifact_key(
        "sweep-cell",
        {
            "map_index": point.map_index,
            "n_dcs": point.n_dcs,
            "dc_fibers": point.dc_fibers,
            "wavelengths": point.wavelengths,
            "failure_tolerance": failure_tolerance,
            "catalog_seed": 2020,  # make_region's default ensemble seed
        },
    )


def _encode_sweep_cell(cell: tuple) -> dict[str, Any]:
    """The storable form of one ``_plan_sweep_point`` entry."""
    from repro.serialize import plan_to_dict, region_to_dict, topology_to_dict

    instance, plan, tol0_spec, tol0_topology = cell
    return {
        "instance": {
            "name": instance.name,
            "extent_km": instance.extent_km,
            "hubs": list(instance.hubs),
            "region": region_to_dict(instance.spec),
        },
        "plan": plan_to_dict(plan, full=True),
        "tol0_region": region_to_dict(tol0_spec),
        "tol0_topology": topology_to_dict(tol0_topology),
    }


def _decode_sweep_cell(payload: dict[str, Any]) -> tuple:
    """Inverse of :func:`_encode_sweep_cell`; raises on malformed payloads."""
    from repro.serialize import (
        plan_from_dict,
        region_from_dict,
        topology_from_dict,
    )

    try:
        inst = payload["instance"]
        instance = RegionInstance(
            name=inst["name"],
            spec=region_from_dict(inst["region"]),
            extent_km=float(inst["extent_km"]),
            hubs=tuple(inst["hubs"]),
        )
        return (
            instance,
            plan_from_dict(payload["plan"]),
            region_from_dict(payload["tol0_region"]),
            topology_from_dict(payload["tol0_topology"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed sweep cell: {exc}") from exc


# Sentinel distinguishing "caller never passed this keyword" from any real
# value, so :func:`run_sweep` only warns about explicit legacy usage.
_UNSET: Any = object()


def run_sweep(
    points: Iterable[SweepPoint],
    prices: PriceBook | None = None,
    failure_tolerance: int = 2,
    jobs: "int | None | Any" = _UNSET,
    store: "PlanStore | None | Any" = _UNSET,
) -> list[SweepRecord]:
    """Plan and price every scenario (the historical entry point).

    .. deprecated::
        Passing the execution options (``jobs``, ``store``) directly is
        deprecated in favor of :func:`repro.api.sweep` with a single
        :class:`repro.api.PlannerConfig`; doing so emits a
        :class:`DeprecationWarning` but behaves identically. The domain
        arguments (``points``, ``prices``, ``failure_tolerance``) are
        not deprecated.
    """
    explicit = {
        name: value
        for name, value in (("jobs", jobs), ("store", store))
        if value is not _UNSET
    }
    if explicit:
        import warnings

        warnings.warn(
            "run_sweep's loose execution options ("
            + ", ".join(sorted(explicit))
            + ") are deprecated; use repro.api.sweep(points, "
            "config=PlannerConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return _run_sweep(
        points, prices=prices, failure_tolerance=failure_tolerance, **explicit
    )


def _run_sweep(
    points: Iterable[SweepPoint],
    *,
    prices: PriceBook | None = None,
    failure_tolerance: int = 2,
    jobs: int | None = 1,
    backend: str | None = None,
    store: "PlanStore | None" = None,
) -> list[SweepRecord]:
    """Plan and price every scenario. Plans are cached per (map, n, f)
    since the wavelength count only affects pricing.

    ``jobs`` fans the per-(map, n, f) planning out over worker processes
    (grid-point parallelism); pricing stays in the parent, so records are
    identical to a serial run. ``backend`` selects the execution backend
    by name (see :func:`repro.core.engine.get_backend`).

    ``store`` checkpoints each cell's planning products as that cell
    finishes (not at the end of the sweep), so an interrupted campaign
    resumed against the same store replans only the incomplete cells and
    produces byte-identical records. Cached and fresh cells go through
    the same pricing code, so warm records equal cold ones exactly.
    """
    prices = prices or PriceBook.default()
    sr_prices = prices.with_sr_priced_dci()
    points = list(points)

    # The distinct (map, n, f) plan keys, in first-occurrence order; each
    # is planned once with the wavelengths of its first point (wavelengths
    # only affect pricing, which happens per point below).
    key_points: dict[tuple[int, int, int], SweepPoint] = {}
    for point in points:
        key = (point.map_index, point.n_dcs, point.dc_fibers)
        key_points.setdefault(key, point)

    plan_cache: dict[tuple[int, int, int], tuple] = {}
    pending: list[tuple[tuple[int, int, int], SweepPoint]] = []
    for key, point in key_points.items():
        cached = (
            store.get(_cell_key(point, failure_tolerance))
            if store is not None
            else None
        )
        if cached is not None:
            try:
                plan_cache[key] = _decode_sweep_cell(cached)
                continue
            except ReproError:
                pass  # stale cell: replan it below, the put heals the entry
        pending.append((key, point))

    if pending:
        # One point per chunk: the pool load-balances (each grid point is
        # minutes of work at paper scale) and every completed cell can be
        # checkpointed the moment its result streams back.
        chunks = [[point] for _, point in pending]
        with get_backend(jobs, backend) as engine_backend:
            for (key, point), result in zip(
                pending,
                engine_backend.iter_chunks(
                    _plan_sweep_point, failure_tolerance, chunks
                ),
            ):
                (cell,) = result
                plan_cache[key] = cell
                if store is not None:
                    store.put(
                        _cell_key(point, failure_tolerance),
                        _encode_sweep_cell(cell),
                        kind="sweep-cell",
                    )

    records: list[SweepRecord] = []
    for point in points:
        key = (point.map_index, point.n_dcs, point.dc_fibers)
        instance, plan, tol0_spec, tol0_topology = plan_cache[key]

        region = RegionSpec(
            fiber_map=instance.spec.fiber_map,
            dc_fibers=instance.spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=instance.spec.constraints,
        )
        # Re-bind the plan's region so inventories use this lambda.
        from dataclasses import replace

        plan_l = replace(plan, region=region)
        iris_inv = plan_l.inventory()
        eps_inv = eps_inventory(region, plan_l.topology)
        hybrid_inv = hybridize(plan_l).inventory()
        tol0_region = RegionSpec(
            fiber_map=tol0_spec.fiber_map,
            dc_fibers=tol0_spec.dc_fibers,
            wavelengths_per_fiber=point.wavelengths,
            constraints=tol0_spec.constraints,
        )
        eps_tol0_inv = eps_inventory(tol0_region, tol0_topology)

        iris = estimate_cost(iris_inv, prices)
        eps = estimate_cost(eps_inv, prices)
        hybrid = estimate_cost(hybrid_inv, prices)
        records.append(
            SweepRecord(
                point=point,
                iris_cost=iris.total,
                eps_cost=eps.total,
                hybrid_cost=hybrid.total,
                iris_cost_sr=estimate_cost(iris_inv, sr_prices).total,
                eps_cost_sr=estimate_cost(eps_inv, sr_prices).total,
                iris_innetwork_cost=iris.in_network_total,
                eps_innetwork_cost=eps.in_network_total,
                iris_port_ratio=(
                    iris_inv.in_network_ports / iris_inv.dc_ports
                ),
                eps_port_ratio=(
                    eps_inv.in_network_ports / eps_inv.dc_ports
                ),
                eps_tol0_cost=estimate_cost(eps_tol0_inv, prices).total,
            )
        )
    return records
