"""Fig 7: relative port-cost breakdown across the design spectrum."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.pricebook import PriceBook
from repro.designs.portmodel import PortModel


@dataclass(frozen=True)
class PortCostRow:
    """One bar group of Fig 7, normalized to the centralized electrical cost."""

    groups: int
    electrical: float
    electrical_sr: float
    optical: float
    total_ports: int


def port_cost_table(
    n_dcs: int = 16, prices: PriceBook | None = None
) -> list[PortCostRow]:
    """The Fig 7 table for an ``n_dcs``-DC region."""
    model = PortModel(n_dcs=n_dcs, prices=prices or PriceBook.default())
    baseline = model.point(1).cost_electrical
    rows = []
    for point in model.sweep():
        rows.append(
            PortCostRow(
                groups=point.groups,
                electrical=point.cost_electrical / baseline,
                electrical_sr=point.cost_electrical_sr / baseline,
                optical=point.cost_optical / baseline,
                total_ports=point.total_ports,
            )
        )
    return rows
