"""Fig 3: latency inflation of hub paths over direct DC-DC paths.

For every DC pair in every region of an ensemble: the DC-hub-DC fiber
distance (via the better of the two hubs) divided by the estimated direct
DC-DC fiber distance (geo-distance x 2, the industry rule the paper uses
when no direct fiber route is provisioned).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.engine import get_backend, map_in_chunks, worker_safe
from repro.designs.centralized import CentralizedDesign
from repro.exceptions import ReproError
from repro.region.catalog import RegionInstance
from repro.region.geometry import estimated_fiber_km


#: Route factor for the hypothetical *direct* DC-DC fiber route. The paper
#: estimates direct routes as 2x geo-distance because its hub paths ride
#: real-world fiber; our synthetic ducts carry explicit route factors of
#: ~1.15-1.45, so the consistent direct estimate uses the generator's mean.
DIRECT_ROUTE_FACTOR = 1.3


@worker_safe
def _instance_ratios(
    direct_route_factor: float, chunk: list[RegionInstance]
) -> list[list[float]]:
    """Worker: per-instance ratio lists (module-level for pickling)."""
    out: list[list[float]] = []
    for instance in chunk:
        region = instance.spec
        design = CentralizedDesign(region, hubs=instance.hubs)
        fmap = region.fiber_map
        ratios: list[float] = []
        for a, b in region.iter_pairs():
            direct_km = estimated_fiber_km(
                fmap.position(a).distance_to(fmap.position(b)),
                direct_route_factor,
            )
            if direct_km <= 0:
                continue
            hub_km = design.pair_distance_km(a, b)
            ratios.append(hub_km / direct_km)
        out.append(ratios)
    return out


def latency_inflation_ratios(
    instances: Sequence[RegionInstance],
    direct_route_factor: float = DIRECT_ROUTE_FACTOR,
    jobs: int | None = 1,
    backend: str | None = None,
) -> list[float]:
    """All DC pairs' hub-path / direct-path distance ratios.

    ``jobs`` fans the per-region computation out over worker processes
    (``backend`` names the execution backend); the result order
    (ensemble order, pairs within each region) is backend-independent.
    """
    with get_backend(jobs, backend) as backend:
        per_instance = map_in_chunks(
            backend, _instance_ratios, direct_route_factor, list(instances)
        )
    ratios = [r for chunk in per_instance for r in chunk]
    if not ratios:
        raise ReproError("ensemble produced no DC pairs")
    return ratios


def cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) points of the empirical CDF."""
    if not values:
        raise ReproError("cdf of empty data")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of values >= threshold (the paper's '>2x for 20%' reading)."""
    if not values:
        raise ReproError("fraction of empty data")
    return sum(1 for v in values if v >= threshold) / len(values)
