"""The §3.4 motivating example (Fig 10), end to end.

Four DCs of 160 Tbps (f = 10 fiber-pairs at lambda = 40 x 400 Gbps) on the
semi-distributed topology of Fig 1(e). The paper's numbers: F_E = 60
fiber-pairs and T_E = 4800 transceivers electrically; T_O = 1600 transceivers
optically with residual fiber on top; the electrical design costs ~2.7x more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.planner import plan_region
from repro.cost.estimator import estimate_cost
from repro.cost.pricebook import PriceBook
from repro.designs.eps import eps_inventory
from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)


def toy_region(spoke_km: float = 10.0, trunk_km: float = 20.0) -> RegionSpec:
    """The Fig 10 region: two DCs per hub, hubs joined by a trunk."""
    fmap = FiberMap()
    fmap.add_hut("H1", 0.0, 0.0)
    fmap.add_hut("H2", trunk_km, 0.0)
    for name, (x, y) in {
        "DC1": (-5.0, 5.0),
        "DC2": (-5.0, -5.0),
        "DC3": (trunk_km + 5.0, 5.0),
        "DC4": (trunk_km + 5.0, -5.0),
    }.items():
        fmap.add_dc(name, x, y)
    fmap.add_duct("DC1", "H1", length_km=spoke_km)
    fmap.add_duct("DC2", "H1", length_km=spoke_km)
    fmap.add_duct("DC3", "H2", length_km=spoke_km)
    fmap.add_duct("DC4", "H2", length_km=spoke_km)
    fmap.add_duct("H1", "H2", length_km=trunk_km)
    return RegionSpec(
        fiber_map=fmap,
        dc_fibers={f"DC{i}": 10 for i in range(1, 5)},
        wavelengths_per_fiber=40,
        constraints=OperationalConstraints(failure_tolerance=0),
    )


@dataclass(frozen=True)
class ToySummary:
    """Paper-vs-measured quantities of the §3.4 example."""

    eps_fiber_pairs: int
    eps_transceivers: int
    iris_transceivers: int
    iris_fiber_pairs: int
    cost_ratio: float
    simplified_cost_ratio: float


def toy_example_summary(prices: PriceBook | None = None) -> ToySummary:
    """Reproduce every §3.4 number from the planner and cost model."""
    prices = prices or PriceBook.default()
    region = toy_region()
    plan = plan_region(region)
    iris_inv = plan.inventory()
    eps_inv = eps_inventory(region, plan.topology)

    iris_cost = estimate_cost(iris_inv, prices)
    eps_cost = estimate_cost(eps_inv, prices)

    t_e = eps_inv.dc_transceivers + eps_inv.innetwork_transceivers
    t_o = iris_inv.dc_transceivers
    f_e = eps_inv.fiber_pair_spans
    f_o = iris_inv.fiber_pair_spans
    simplified = (
        prices.transceiver_dci * t_e + prices.fiber_pair_span * f_e
    ) / (prices.transceiver_dci * t_o + prices.fiber_pair_span * f_o)

    return ToySummary(
        eps_fiber_pairs=f_e,
        eps_transceivers=t_e,
        iris_transceivers=t_o,
        iris_fiber_pairs=f_o,
        cost_ratio=eps_cost.total / iris_cost.total,
        simplified_cost_ratio=simplified,
    )
