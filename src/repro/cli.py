"""Command-line interface: ``iris <subcommand>``.

Subcommands map onto the paper's workflow:

* ``region``    — generate a synthetic region and describe or export it
* ``plan``      — run the Iris planner on a region (built-in or JSON file)
* ``cost``      — itemized Iris / EPS / hybrid cost comparison
* ``portmodel`` — the §2.4 analytic port model (Fig 7)
* ``sweep``     — the Fig 12 design-space sweep (mini grid by default)
* ``simulate``  — one Iris-vs-EPS flow-level comparison (Figs 17-18)
* ``testbed``   — the Fig 14 reconfiguration/BER experiment
* ``analyze``   — latency inflation + siting flexibility over an ensemble
* ``failover``  — a duct-cut drill through the control plane
* ``lint``      — reprolint: domain-aware static analysis of planner invariants
* ``store``     — inspect/maintain the content-addressed artifact store
* ``serve``     — run the planner daemon (JSON-over-TCP, see ``repro.service``)
* ``submit``    — submit a planning job (optionally with a region delta)
* ``jobs``      — list a running daemon's jobs and counters

``iris --version`` prints the package version.

Any subcommand that accepts ``--trace``/``--trace-json PATH`` runs under
:mod:`repro.obs` tracing: ``--trace`` prints the span tree (with counters)
to stderr, ``--trace-json`` writes the trace as JSON lines. Tracing is off
unless one of the flags is given.

``plan`` and ``sweep`` accept ``--store DIR`` (default: the ``IRIS_STORE``
environment variable) to checkpoint planning products in a
:class:`repro.store.PlanStore`; ``--no-store`` opts out even when the
variable is set. Cached results are bit-identical to fresh ones, so the
commands' stdout does not change with cache warmth — store traffic is
reported on stderr. ``iris sweep --resume`` requires a store and replans
only the cells missing from it.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from pathlib import Path

from repro.exceptions import ReproError


@contextlib.contextmanager
def _maybe_traced(args):
    """Run the command body under tracing when ``--trace*`` was given."""
    from repro import obs

    if not getattr(args, "trace", False) and not getattr(args, "trace_json", None):
        yield
        return
    with obs.tracing("iris") as tracer:
        yield
    record = tracer.record()
    if args.trace:
        print(obs.render_tree(record), file=sys.stderr)
    if args.trace_json:
        obs.write_trace_json(args.trace_json, record)
        print(f"wrote trace to {args.trace_json}", file=sys.stderr)


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span/counter tree to stderr",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the trace as JSON lines to PATH",
    )


def _load_region(args):
    from repro.region.catalog import make_region
    from repro.serialize import region_from_json

    if args.region_file:
        return region_from_json(Path(args.region_file).read_text()), None
    instance = make_region(
        map_index=args.map_index,
        n_dcs=args.dcs,
        dc_fibers=args.fibers,
        wavelengths_per_fiber=args.wavelengths,
        failure_tolerance=args.tolerance,
    )
    return instance.spec, instance


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1=serial, 0=all CPUs)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "process", "steal"),
        default=None,
        help="execution backend (default: serial for --jobs 1, "
        "work-stealing otherwise)",
    )


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=os.environ.get("IRIS_STORE"),
        help="artifact store directory (default: $IRIS_STORE)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run without the artifact store even if $IRIS_STORE is set",
    )


def _open_store(args):
    """The command's :class:`PlanStore`, or ``None`` when storing is off."""
    if getattr(args, "no_store", False) or not getattr(args, "store", None):
        return None
    from repro.store import PlanStore

    return PlanStore(args.store)


def _report_store_traffic(store) -> None:
    """One stderr line of session traffic (stdout stays cache-invariant)."""
    if store is None:
        return
    print(
        f"store: {store.hits} hit(s), {store.misses} miss(es), "
        f"{store.puts} put(s)",
        file=sys.stderr,
    )


def _add_region_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--region-file", help="load a region JSON instead")
    parser.add_argument("--map-index", type=int, default=0, help="catalog map (0-9)")
    parser.add_argument("--dcs", type=int, default=5, help="number of DCs")
    parser.add_argument("--fibers", type=int, default=8, help="fibers per DC")
    parser.add_argument("--wavelengths", type=int, default=40)
    parser.add_argument("--tolerance", type=int, default=2, help="duct cuts tolerated")


def cmd_region(args) -> int:
    """Generate or load a region and describe it."""
    from repro.serialize import region_to_json

    from repro.region.stats import region_summary

    region, instance = _load_region(args)
    fmap = region.fiber_map
    print(f"region: {len(fmap.dcs)} DCs, {len(fmap.huts)} huts, {len(fmap.ducts)} ducts")
    summary = region_summary(region)
    print(f"  mean DC-DC distance: {summary['mean_pair_distance_km']} km "
          f"(max {summary['max_pair_distance_km']} km, "
          f"mean {summary['mean_pair_hops']} hops, "
          f"route factor {summary['mean_route_factor']})")
    for dc in fmap.dcs:
        print(
            f"  {dc}: {region.fibers(dc)} fibers "
            f"({region.capacity_gbps(dc) / 1000:.0f} Tbps)"
        )
    if instance is not None:
        print(f"  candidate hubs: {instance.hubs[0]}, {instance.hubs[1]}")
    if args.out:
        Path(args.out).write_text(region_to_json(region))
        print(f"wrote {args.out}")
    return 0


def cmd_plan(args) -> int:
    """Run the Iris planner and summarize the plan."""
    from repro.api import PlannerConfig
    from repro.api import plan as api_plan
    from repro.serialize import plan_to_json

    region, _ = _load_region(args)
    store = _open_store(args)
    design = getattr(args, "design", "iris")
    traffic = None
    if design == "robust":
        from repro.designs.robust import TrafficEnsembleSpec

        traffic = TrafficEnsembleSpec(
            count=args.traffic, seed=args.traffic_seed
        )
    config = PlannerConfig(
        jobs=args.jobs, backend=args.backend, store=store, traffic=traffic
    )
    with _maybe_traced(args):
        plan = api_plan(region, design=design, config=config)
    _report_store_traffic(store)
    if design == "robust":
        print(f"design: robust ({args.traffic} traffic matrices, "
              f"seed {args.traffic_seed})")
    print(f"scenarios: {len(plan.topology.scenario_paths)} enumerated "
          f"(of {plan.topology.scenario_count_total} raw)")
    if plan.topology.timings is not None:
        print(f"planning time: {plan.topology.timings.summary()}")
    print(f"base fiber-pairs: {plan.topology.total_fiber_pairs()}")
    print(f"residual fiber-pair spans: {plan.residual_fiber_pairs()}")
    print(f"in-line amplifiers: {plan.amplifiers.total_amplifiers} "
          f"at {len(plan.amplifiers.site_counts)} site(s)")
    print(f"cut-through links: {len(plan.cut_throughs)}")
    violations = plan.validate()
    print(f"constraint violations: {len(violations)}")
    if args.out:
        Path(args.out).write_text(plan_to_json(plan))
        print(f"wrote {args.out}")
    return 0


def cmd_cost(args) -> int:
    """Itemized Iris / hybrid / EPS cost comparison."""
    from repro.core.planner import plan_region
    from repro.cost.estimator import estimate_cost
    from repro.designs.eps import eps_inventory
    from repro.designs.hybrid import hybridize

    region, _ = _load_region(args)
    plan = plan_region(region)
    iris = estimate_cost(plan.inventory())
    eps = estimate_cost(eps_inventory(region, plan.topology))
    hybrid = estimate_cost(hybridize(plan).inventory())

    print(f"{'design':<10}{'$/yr':>14}{'transceivers':>14}{'fiber':>12}"
          f"{'switching':>12}{'amps':>10}")
    for name, cost in (("iris", iris), ("hybrid", hybrid), ("eps", eps)):
        switching = cost.oss_ports + cost.oxc_ports + cost.electrical_ports
        print(
            f"{name:<10}{cost.total:>14,.0f}{cost.transceivers:>14,.0f}"
            f"{cost.fiber:>12,.0f}{switching:>12,.0f}{cost.amplifiers:>10,.0f}"
        )
    print(f"EPS / Iris cost ratio: {eps.total / iris.total:.2f}x")
    return 0


def cmd_portmodel(args) -> int:
    """Print the Fig 7 analytic port-cost table."""
    from repro.analysis.portcost import port_cost_table

    print(f"{'groups':>8}{'ports':>8}{'electrical':>12}{'with SR':>10}{'optical':>10}")
    for row in port_cost_table(n_dcs=args.dcs):
        print(
            f"{row.groups:>8}{row.total_ports:>8}{row.electrical:>12.2f}"
            f"{row.electrical_sr:>10.2f}{row.optical:>10.2f}"
        )
    return 0


def cmd_sweep(args) -> int:
    """Run the Fig 12 design-space sweep and print ratios."""
    from repro.analysis.designspace import default_mini_sweep, full_paper_sweep
    from repro.api import PlannerConfig
    from repro.api import sweep as api_sweep

    points = full_paper_sweep() if args.full else default_mini_sweep()
    if args.limit:
        points = points[: args.limit]
    store = _open_store(args)
    if args.resume and store is None:
        print(
            "usage error: --resume needs an artifact store "
            "(--store DIR or $IRIS_STORE)",
            file=sys.stderr,
        )
        return 2
    config = PlannerConfig(jobs=args.jobs, backend=args.backend, store=store)
    with _maybe_traced(args):
        records = api_sweep(points, config=config)
    _report_store_traffic(store)
    print(f"{'map':>4}{'n':>4}{'f':>4}{'lam':>5}{'EPS/Iris':>10}"
          f"{'EPS/Hybrid':>12}{'in-net':>8}{'EPS0/Iris2':>12}")
    for r in records:
        p = r.point
        print(
            f"{p.map_index:>4}{p.n_dcs:>4}{p.dc_fibers:>4}{p.wavelengths:>5}"
            f"{r.eps_over_iris:>10.1f}{r.eps_over_hybrid:>12.1f}"
            f"{r.eps_over_iris_innetwork:>8.1f}{r.eps_tol0_over_iris:>12.2f}"
        )
    ratios = sorted(r.eps_over_iris for r in records)
    print(f"median EPS/Iris: {ratios[len(ratios) // 2]:.1f}x "
          f"(min {ratios[0]:.1f}, max {ratios[-1]:.1f})")
    return 0


def cmd_simulate(args) -> int:
    """One Iris-vs-EPS flow-level comparison."""
    from repro.api import simulate as api_simulate
    from repro.simulation.scenarios import ScenarioConfig

    config = ScenarioConfig(
        n_dcs=args.dcs,
        utilization=args.utilization,
        workload=args.workload,
        duration_s=args.duration,
        change_interval_s=args.interval,
        max_change=None if args.unbounded else args.change,
        seed=args.seed,
        traffic_backend=args.traffic_backend,
        interarrival=args.interarrival,
    )
    with _maybe_traced(args):
        result = api_simulate(config)
    s = result.summary
    print(f"flows: {s.iris_flows} (unfinished: {s.iris_unfinished})")
    print(f"reconfigurations: {result.reconfigurations}, "
          f"fibers moved: {result.fibers_moved}")
    print(f"99th-pct FCT slowdown (Iris/EPS): all={s.p99_all:.3f} "
          f"short={s.p99_short:.3f} median={s.p50_all:.3f}")
    return 0


def cmd_testbed(args) -> int:
    """Run the Fig 14 reconfiguration/BER experiment."""
    from repro.testbed.experiments import run_reconfiguration_experiment

    summary = run_reconfiguration_experiment(
        duration_s=args.duration,
        reconfig_period_s=args.period,
        two_huts=args.two_huts,
    )
    print(f"reconfigurations: {summary.reconfigurations}")
    print(f"max pre-FEC BER: {summary.max_prefec_ber:.2e} "
          f"(SD-FEC threshold {summary.fec_threshold:.0e})")
    print(f"recovery time: {summary.recovery_time_s * 1000:.0f} ms")
    print(f"signal availability: {summary.availability() * 100:.3f}%")
    print(f"error-free post-FEC: {summary.always_below_threshold}")
    return 0


def cmd_analyze(args) -> int:
    """Latency-inflation and siting-flexibility summaries."""
    from repro.analysis.flexibility import flexibility_gains
    from repro.analysis.latency import fraction_at_least, latency_inflation_ratios
    from repro.region.catalog import region_ensemble

    instances = region_ensemble(count=args.regions, n_dcs_range=(5, 9))
    ratios = latency_inflation_ratios(
        instances, jobs=args.jobs, backend=args.backend
    )
    print(f"latency inflation over {len(ratios)} DC pairs "
          f"({args.regions} regions):")
    for threshold in (1.0, 1.5, 2.0, 4.0):
        frac = fraction_at_least(ratios, threshold)
        print(f"  >= {threshold:.1f}x: {frac * 100:5.1f}%")
    gains = flexibility_gains(
        instances, spacing_km=4.0, jobs=args.jobs, backend=args.backend
    )
    values = sorted(g for _, g in gains)
    print(f"siting-area gain (distributed / centralized): "
          f"median {values[len(values) // 2]:.1f}x, "
          f"range {values[0]:.1f}-{values[-1]:.1f}x")
    return 0


def cmd_failover(args) -> int:
    """Duct-cut drill: light circuits, cut, fail over, repair."""
    region, _ = _load_region(args)
    with _maybe_traced(args):
        return _failover_drill(region)


def _failover_drill(region) -> int:
    from repro.control.controller import IrisController
    from repro.core.planner import plan_region
    from repro.region.fibermap import duct_key

    plan = plan_region(region)
    controller = IrisController(plan)
    dcs = region.dcs
    demand = {
        (dcs[i], dcs[i + 1]): region.capacity_gbps(dcs[i]) / 4
        for i in range(len(dcs) - 1)
    }
    controller.apply_demands(demand)
    print(f"lit circuits: {dict(controller.current_target.fibers)}")

    # Cut the busiest duct on any lit path.
    base = plan.topology.base_paths
    duct_use: dict[tuple, int] = {}
    for pair in controller.current_target.pairs():
        path = base[pair]
        for u, v in zip(path, path[1:]):
            duct_use[duct_key(u, v)] = duct_use.get(duct_key(u, v), 0) + 1
    cut = max(duct_use, key=lambda d: (duct_use[d], d))
    print(f"cutting duct {cut} (carries {duct_use[cut]} circuit group(s))")
    report = controller.report_duct_failure(*cut)
    print(f"failover: drained={list(report.drained_pairs)} "
          f"connects={report.connects} disconnects={report.disconnects} "
          f"dataplane-impact={report.duration_s * 1000:.0f} ms")
    print(f"audit: {controller.audit() or 'clean'}")
    report = controller.report_duct_repair(*cut)
    print(f"repair: drained={list(report.drained_pairs)} "
          f"restored shortest paths, audit "
          f"{controller.audit() or 'clean'}")
    return 0


def _lint_rule_selection(args):
    """The rule subset a lint invocation runs (``--disable`` applied)."""
    from repro.lint import all_rules

    disabled = {
        rule_id.strip().upper()
        for spec in (args.disable or [])
        for rule_id in spec.split(",")
        if rule_id.strip()
    }
    if not disabled:
        return None, disabled
    return [r for r in all_rules() if r.rule_id not in disabled], disabled


def _lint_fix(args, selected) -> int:
    """``iris lint --fix [--dry-run]``: apply conservative autofixes."""
    from repro.lint import (
        LintUsageError,
        fix_sources,
        iter_python_files,
        unified_diff,
    )

    try:
        files = iter_python_files(args.paths)
        if not files:
            raise LintUsageError("no Python files to lint under the given paths")
    except LintUsageError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    sources = [(str(p), p.read_text(encoding="utf-8")) for p in files]
    report = fix_sources(
        sources,
        rules=selected,
        report_unused_noqa=args.report_unused_noqa,
    )
    if args.dry_run:
        diff = unified_diff(dict(sources), report)
        if diff:
            print(diff, end="")
        print(
            f"would apply {report.total_applied} fix(es) in "
            f"{len(report.changed_paths())} file(s)",
            file=sys.stderr,
        )
    else:
        for path in report.changed_paths():
            Path(path).write_text(report.files[path], encoding="utf-8")
        print(
            f"applied {report.total_applied} fix(es) in "
            f"{len(report.changed_paths())} file(s)",
            file=sys.stderr,
        )
    for finding in report.remaining:
        print(finding.format())
    return 1 if report.remaining else 0


def cmd_lint(args) -> int:
    """Run reprolint; exit 0 clean, 1 findings, 2 usage error."""
    import json

    from repro.lint import LintUsageError, all_rules, lint_paths

    if args.list_rules:
        for lint_rule in all_rules():
            print(f"{lint_rule.rule_id}  {lint_rule.title}")
            print(f"      {lint_rule.invariant}")
        return 0
    selected, _disabled = _lint_rule_selection(args)
    if args.dry_run and not args.fix:
        print("usage error: --dry-run requires --fix", file=sys.stderr)
        return 2
    if args.fix:
        return _lint_fix(args, selected)
    try:
        findings = lint_paths(
            args.paths,
            rules=selected,
            report_unused_noqa=args.report_unused_noqa,
            store=_open_store(args),
        )
    except LintUsageError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        payload = {
            "version": 1,
            "findings": [finding.to_dict() for finding in findings],
            "summary": {
                "findings": len(findings),
                "files_flagged": len({finding.path for finding in findings}),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro import __version__
        from repro.lint import to_sarif

        rules = selected if selected is not None else all_rules()
        print(
            json.dumps(
                to_sarif(findings, rules, version=__version__),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
    if findings:
        flagged = len({finding.path for finding in findings})
        print(f"{len(findings)} finding(s) in {flagged} file(s)", file=sys.stderr)
        return 1
    return 0


def _require_store(args):
    """The store a ``store`` subcommand operates on, or ``None`` + usage error."""
    if not args.store:
        print(
            "usage error: store commands need --store DIR or $IRIS_STORE",
            file=sys.stderr,
        )
        return None
    from repro.store import PlanStore

    return PlanStore(args.store)


def cmd_store_stats(args) -> int:
    """Inventory the store (entries, blobs, bytes, kinds, session traffic)."""
    import json

    store = _require_store(args)
    if store is None:
        return 2
    stats = store.stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"store: {stats.root}")
    print(f"  entries: {stats.entries} ({stats.blobs} blob(s), "
          f"{stats.total_bytes:,} bytes)")
    for kind, count in sorted(stats.kinds.items()):
        print(f"  kind {kind}: {count}")
    if stats.orphan_blobs:
        print(f"  orphan blobs: {stats.orphan_blobs} (run `iris store gc`)")
    return 0


def cmd_store_gc(args) -> int:
    """Collect orphan blobs, stale tmp files, and dead manifest entries."""
    store = _require_store(args)
    if store is None:
        return 2
    result = store.gc()
    print(f"removed {result.removed_blobs} blob(s), "
          f"dropped {result.dropped_entries} manifest entr(ies), "
          f"reclaimed {result.reclaimed_bytes:,} bytes")
    return 0


def cmd_store_verify(args) -> int:
    """Re-verify every blob digest; exit 1 if problems were found."""
    store = _require_store(args)
    if store is None:
        return 2
    problems = store.verify(repair=args.repair)
    for problem in problems:
        print(problem)
    if problems:
        action = "repaired" if args.repair else "found"
        print(f"{len(problems)} problem(s) {action}", file=sys.stderr)
        return 1
    print("store verified clean")
    return 0


def cmd_serve(args) -> int:
    """Run the planner daemon until SIGTERM/SIGINT (then drain)."""
    import signal

    from repro.service import PlannerService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        jobs=args.jobs,
        backend=args.backend,
        job_timeout_s=args.job_timeout,
    )
    service = PlannerService(config, store=_open_store(args)).start()
    host, port = service.address
    print(f"iris daemon listening on {host}:{port}", file=sys.stderr)
    if args.port_file:
        Path(args.port_file).write_text(f"{port}\n")

    def _drain(signum, _frame):
        print(
            f"signal {signal.Signals(signum).name}: draining "
            f"(up to {args.drain_timeout:.0f}s)",
            file=sys.stderr,
        )
        import threading

        threading.Thread(
            target=service.drain, args=(args.drain_timeout,), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    service.wait_closed()
    print("iris daemon stopped", file=sys.stderr)
    return 0


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient((args.host, args.port))


def cmd_submit(args) -> int:
    """Submit one planning job to a running daemon and wait for the plan."""
    import json

    from repro.region.delta import delta_from_dict

    region, _ = _load_region(args)
    delta = None
    if args.delta_file:
        delta = delta_from_dict(json.loads(Path(args.delta_file).read_text()))
    elif args.delta:
        delta = delta_from_dict(json.loads(args.delta))
    with _service_client(args) as client:
        submitted = client.submit(region, delta=delta)
        job_id = submitted["job_id"]
        print(
            f"submitted {job_id}"
            + (" (coalesced onto an in-flight job)" if submitted["coalesced"] else ""),
            file=sys.stderr,
        )
        if args.no_wait:
            print(job_id)
            return 0
        result = client.result(job_id, timeout_s=args.timeout)
    stats = result.get("delta_stats")
    print(f"job {job_id}: {result['state']} ({result['outcome']})")
    if stats is not None:
        print(
            f"  delta: mode={stats['mode']} realization={stats['realization']} "
            f"scenarios reused={stats['scenarios_reused']} "
            f"computed={stats['scenarios_computed']}"
        )
    if args.out:
        Path(args.out).write_text(result["plan"])
        print(f"wrote {args.out}")
    return 0


def cmd_jobs(args) -> int:
    """List a running daemon's jobs and counters."""
    with _service_client(args) as client:
        jobs = client.jobs()
        stats = client.stats()
    if not jobs:
        print("no jobs")
    for job in jobs:
        line = f"{job['job_id']:<12}{job['state']:<9}{job.get('outcome') or '-':<9}"
        if job.get("waiters", 1) > 1:
            line += f" waiters={job['waiters']}"
        if job.get("error"):
            line += f" error: {job['error']}"
        print(line)
    counters = stats["counters"]
    print(
        f"counters: queued={counters['queued']} coalesced={counters['coalesced']} "
        f"store={counters['store_hits']} patched={counters['patched']} "
        f"cold={counters['cold']} failed={counters['failed']} "
        f"rejected={counters['rejected']}",
        file=sys.stderr,
    )
    return 0


def _add_service_address_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="daemon host")
    parser.add_argument(
        "--port", type=int, required=True, help="daemon port (see iris serve)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The iris argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="iris",
        description="Regional DCI planning and evaluation (SIGCOMM'20 Iris reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("region", help="generate/describe a region")
    _add_region_args(p)
    p.add_argument("--out", help="write region JSON here")
    p.set_defaults(func=cmd_region)

    p = sub.add_parser("plan", help="run the Iris planner")
    _add_region_args(p)
    _add_jobs_arg(p)
    _add_trace_args(p)
    _add_store_args(p)
    p.add_argument(
        "--design",
        choices=("iris", "robust"),
        default="iris",
        help="planning mode: hose-envelope iris (default) or "
        "multi-TM robust",
    )
    p.add_argument(
        "--traffic",
        type=int,
        default=5,
        metavar="N",
        help="robust mode: number of sampled traffic matrices",
    )
    p.add_argument(
        "--traffic-seed",
        type=int,
        default=2020,
        help="robust mode: ensemble sampling seed",
    )
    p.add_argument("--out", help="write plan JSON here")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("cost", help="Iris vs EPS vs hybrid costs")
    _add_region_args(p)
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser("portmodel", help="the §2.4 analytic port model")
    p.add_argument("--dcs", type=int, default=16)
    p.set_defaults(func=cmd_portmodel)

    p = sub.add_parser("sweep", help="the Fig 12 design-space sweep")
    p.add_argument("--full", action="store_true", help="run all 240 scenarios")
    p.add_argument("--limit", type=int, default=0, help="only the first N points")
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from the store (requires one)",
    )
    _add_jobs_arg(p)
    _add_trace_args(p)
    _add_store_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("simulate", help="flow-level Iris vs EPS comparison")
    p.add_argument("--dcs", type=int, default=6)
    p.add_argument("--utilization", type=float, default=0.4)
    p.add_argument("--workload", default="web1")
    p.add_argument("--duration", type=float, default=15.0)
    p.add_argument("--interval", type=float, default=5.0)
    p.add_argument("--change", type=float, default=0.5)
    p.add_argument("--unbounded", action="store_true")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--traffic-backend",
        choices=("poisson", "flowgen"),
        default="poisson",
        help="flow arrivals: per-pair Poisson (default) or the "
        "flow-centric generator (size x interarrival x locality)",
    )
    p.add_argument(
        "--interarrival",
        choices=("poisson", "smooth", "bursty"),
        default="bursty",
        help="interarrival shape for --traffic-backend flowgen",
    )
    _add_trace_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("testbed", help="the Fig 14 BER/reconfiguration run")
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--period", type=float, default=60.0)
    p.add_argument("--two-huts", action="store_true")
    p.set_defaults(func=cmd_testbed)

    p = sub.add_parser("analyze", help="latency + siting analysis (Figs 3, 6)")
    p.add_argument("--regions", type=int, default=10)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("failover", help="duct-cut drill via the controller")
    _add_region_args(p)
    _add_trace_args(p)
    p.set_defaults(func=cmd_failover)

    p = sub.add_parser(
        "lint",
        help="reprolint static analysis (determinism/unit/pool-safety rules)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print each rule id, title, and the invariant it guards",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "findings output format (json feeds CI artifacts; sarif is "
            "SARIF 2.1.0 for native PR annotation)"
        ),
    )
    p.add_argument(
        "--report-unused-noqa",
        action="store_true",
        help="also flag '# repro: noqa' comments that suppress nothing (R900)",
    )
    p.add_argument(
        "--fix",
        action="store_true",
        help="apply conservative autofixes (sorted() wraps, keyword-only "
        "migration, stale-noqa removal) and report what remains",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diff instead of writing files",
    )
    p.add_argument(
        "--disable",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to skip (repeatable), "
        "e.g. --disable R006,R011",
    )
    _add_store_args(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "store",
        help="inspect/maintain the content-addressed artifact store",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    for name, func, help_text in (
        ("stats", cmd_store_stats, "inventory + session counters"),
        ("gc", cmd_store_gc, "remove orphan blobs and dead manifest entries"),
        ("verify", cmd_store_verify, "re-check every blob digest"),
    ):
        ps = store_sub.add_parser(name, help=help_text)
        ps.add_argument(
            "--store",
            metavar="DIR",
            default=os.environ.get("IRIS_STORE"),
            help="artifact store directory (default: $IRIS_STORE)",
        )
        if name == "stats":
            ps.add_argument(
                "--json", action="store_true", help="machine-readable output"
            )
        if name == "verify":
            ps.add_argument(
                "--repair",
                action="store_true",
                help="delete corrupt blobs and fix the manifest",
            )
        ps.set_defaults(func=func)

    p = sub.add_parser("serve", help="run the planner daemon (repro.service)")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port here once listening (for scripts/tests)",
    )
    p.add_argument("--workers", type=int, default=2, help="worker threads")
    p.add_argument(
        "--queue-size", type=int, default=16, help="bounded request queue"
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline (cancelled via the engine's CancelToken)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="grace period for in-flight jobs on SIGTERM/SIGINT",
    )
    _add_jobs_arg(p)
    _add_store_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a planning job to a running daemon"
    )
    _add_service_address_args(p)
    _add_region_args(p)
    p.add_argument(
        "--delta",
        metavar="JSON",
        help="inline RegionDelta JSON applied to the region before planning",
    )
    p.add_argument(
        "--delta-file",
        metavar="PATH",
        help="file holding the RegionDelta JSON (overrides --delta)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="how long to wait for the result",
    )
    p.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting",
    )
    p.add_argument("--out", help="write the plan JSON here")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list a daemon's jobs and counters")
    _add_service_address_args(p)
    p.set_defaults(func=cmd_jobs)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
