"""Exception hierarchy shared across the repro package."""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RegionError(ReproError):
    """A region specification is malformed or internally inconsistent."""


class InfeasibleRegionError(RegionError):
    """No plan can satisfy the operational constraints on this region.

    Raised, for example, when a DC pair exceeds the SLA fiber distance under
    some tolerated failure scenario, or when the fiber map disconnects.

    ``scenario``/``pair`` identify the failing failure scenario and DC pair
    when known; they are typed loosely to keep this module free of imports
    from the core planner (which itself raises these errors).
    """

    def __init__(
        self, message: str, scenario: Any = None, pair: Any = None
    ) -> None:
        super().__init__(message)
        self.scenario = scenario
        self.pair = pair

    def __reduce__(self) -> tuple[Any, ...]:
        # Default exception pickling only replays ``args``, dropping the
        # scenario/pair attributes when a worker process raises; preserve
        # them across the pool boundary.
        message = self.args[0] if self.args else ""
        return (self.__class__, (message, self.scenario, self.pair))


class PlanningError(ReproError):
    """The planner could not produce a plan meeting all constraints."""


class ConstraintViolation(ReproError):
    """An optical-layer technology constraint (TC1-TC4) is violated."""

    def __init__(
        self, message: str, constraint: str | None = None, path: Any = None
    ) -> None:
        super().__init__(message)
        self.constraint = constraint
        self.path = path

    def __reduce__(self) -> tuple[Any, ...]:
        message = self.args[0] if self.args else ""
        return (self.__class__, (message, self.constraint, self.path))


class DeviceError(ReproError):
    """A (simulated) optical device rejected or failed a command."""


class ControlPlaneError(ReproError):
    """The controller could not converge the network to the target state."""


class SimulationError(ReproError):
    """The flow-level simulator was given an inconsistent configuration."""


class ServiceError(ReproError):
    """The planner service rejected, failed, or could not reach a request.

    Raised client-side for transport failures, protocol mismatches, and
    error responses (including queue-full rejections and job timeouts).
    """


class JobCancelled(ReproError):
    """A planning job was cancelled (client timeout, drain, or shutdown).

    Raised from :meth:`repro.core.engine.CancelToken.checkpoint` inside
    backend fan-outs, unwinding the plan cleanly through the engine's
    interrupt path (pool terminated, no orphaned workers).
    """
