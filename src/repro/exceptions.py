"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class RegionError(ReproError):
    """A region specification is malformed or internally inconsistent."""


class InfeasibleRegionError(RegionError):
    """No plan can satisfy the operational constraints on this region.

    Raised, for example, when a DC pair exceeds the SLA fiber distance under
    some tolerated failure scenario, or when the fiber map disconnects.
    """

    def __init__(self, message, scenario=None, pair=None):
        super().__init__(message)
        self.scenario = scenario
        self.pair = pair

    def __reduce__(self):
        # Default exception pickling only replays ``args``, dropping the
        # scenario/pair attributes when a worker process raises; preserve
        # them across the pool boundary.
        message = self.args[0] if self.args else ""
        return (self.__class__, (message, self.scenario, self.pair))


class PlanningError(ReproError):
    """The planner could not produce a plan meeting all constraints."""


class ConstraintViolation(ReproError):
    """An optical-layer technology constraint (TC1-TC4) is violated."""

    def __init__(self, message, constraint=None, path=None):
        super().__init__(message)
        self.constraint = constraint
        self.path = path

    def __reduce__(self):
        message = self.args[0] if self.args else ""
        return (self.__class__, (message, self.constraint, self.path))


class DeviceError(ReproError):
    """A (simulated) optical device rejected or failed a command."""


class ControlPlaneError(ReproError):
    """The controller could not converge the network to the target state."""


class SimulationError(ReproError):
    """The flow-level simulator was given an inconsistent configuration."""
