"""Physical constants and unit helpers used throughout the package.

All distances are kilometres, powers are dBm (or dB for relative values),
bandwidths are Gbps, and times are seconds unless a name says otherwise.
The numbers below come straight from the paper (Figs 8-9, §3.2-§3.3).
"""

from __future__ import annotations

import math

# --- Speed of light / latency -------------------------------------------------

#: Speed of light in silica fiber, km per second (refractive index ~1.468).
SPEED_OF_LIGHT_FIBER_KM_S = 204_190.0

#: Industry rule of thumb: fiber distance ~= 2x geographic distance [8, 15].
GEO_TO_FIBER_FACTOR = 2.0


def rtt_ms(fiber_km: float) -> float:
    """Round-trip propagation latency in milliseconds over ``fiber_km``."""
    return 2.0 * fiber_km / SPEED_OF_LIGHT_FIBER_KM_S * 1e3


def fiber_km_for_rtt_ms(rtt: float) -> float:
    """Inverse of :func:`rtt_ms`: one-way fiber distance for a target RTT."""
    return rtt * 1e-3 * SPEED_OF_LIGHT_FIBER_KM_S / 2.0


# --- Optical layer (Fig 8, §3.2) ---------------------------------------------

#: Typical regional fiber attenuation, dB per km [20].
FIBER_LOSS_DB_PER_KM = 0.25

#: Typical EDFA gain, dB.
AMPLIFIER_GAIN_DB = 20.0

#: EDFA noise figure, dB (measured ~4.5 dB in the paper's testbed).
AMPLIFIER_NOISE_FIGURE_DB = 4.5

#: Maximum unamplified fiber span: 20 dB gain / 0.25 dB/km = 80 km (TC1).
MAX_SPAN_KM = AMPLIFIER_GAIN_DB / FIBER_LOSS_DB_PER_KM

#: SLA limit on DC-DC fiber distance (OC1): 120 km [20].
SLA_MAX_FIBER_KM = 120.0

#: 400ZR tolerable end-to-end OSNR penalty, dB (Fig 8).
MAX_OSNR_PENALTY_DB = 11.0

#: Margin reserved for transmission impairments and gain ripple, dB (§3.2).
OSNR_MARGIN_DB = 2.0

#: Resulting amplifier OSNR budget: 9 dB => at most 3 amplifiers (TC2).
AMPLIFIER_OSNR_BUDGET_DB = MAX_OSNR_PENALTY_DB - OSNR_MARGIN_DB

#: Maximum amplifiers end-to-end implied by the 9 dB budget (Fig 9).
MAX_AMPLIFIERS_PER_PATH = 3

#: At most one *extra in-line* amplifier per path (beyond the terminal pair).
MAX_INLINE_AMPLIFIERS = 1

#: Power budget available for reconfiguration elements at 120 km with one
#: extra amplifier (TC4): 40 dB total minus 30 dB fiber loss.
RECONFIG_POWER_BUDGET_DB = 10.0

#: Optical space switch insertion loss, dB (TC4).
OSS_INSERTION_LOSS_DB = 1.5

#: Optical cross-connect insertion loss, dB (TC4).
OXC_INSERTION_LOSS_DB = 9.0

#: Maximum OSS traversals end-to-end: floor(10 / 1.5) = 6 (TC4).
MAX_OSS_PER_PATH = int(RECONFIG_POWER_BUDGET_DB // OSS_INSERTION_LOSS_DB)

#: Maximum OXCs end-to-end: 1 (TC4).
MAX_OXC_PER_PATH = 1

#: Longest duct an all-optical (Iris) path can use. TC1's 80 km applies to
#: OSS-free point-to-point links; on an Iris path every unamplified run
#: containing a duct also pays at least two OSS traversals (its endpoints'
#: switches), so ducts beyond (gain - 2 x OSS loss) / fiber loss = 68 km can
#: never close the run budget and are pruned from planning outright.
IRIS_MAX_DUCT_KM = (
    AMPLIFIER_GAIN_DB - 2 * OSS_INSERTION_LOSS_DB
) / FIBER_LOSS_DB_PER_KM

#: Minimum received OSNR for DP-16QAM at the SD-FEC pre-FEC threshold
#: (~19.5 dB from the BER model) plus operating margin, dB (0.1 nm ref).
RX_OSNR_THRESHOLD_DB = 20.0

#: Transmit launch power per channel, dBm (400ZR class).
TX_POWER_DBM = -10.0

#: Receiver minimum input power per channel, dBm.
RX_SENSITIVITY_DBM = -12.0

#: Soft-decision FEC pre-FEC BER threshold (§6.2).
FEC_BER_THRESHOLD = 2e-2

#: Post-FEC residual BER when operating below the pre-FEC threshold (§6.2).
POST_FEC_BER = 1e-15

#: Mux/demux (WSS) insertion loss, dB.
WSS_INSERTION_LOSS_DB = 6.0

# --- Data plane ----------------------------------------------------------------

#: 400ZR line rate per wavelength, Gbps.
GBPS_PER_WAVELENGTH_400ZR = 400.0

#: Today's deployed equivalent, Gbps [20].
GBPS_PER_WAVELENGTH_100G = 100.0

#: DWDM wavelengths per fiber in the C-band (paper uses 40-64).
WAVELENGTHS_PER_FIBER_CHOICES = (40, 64)

#: Reconfiguration constants measured on the testbed (§6.2).
OSS_SWITCH_TIME_S = 0.020
SIGNAL_RECOVERY_TIME_S = 0.050
TWO_HUT_SWITCH_TIME_S = 0.070


# --- dB helpers ------------------------------------------------------------------


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB. ``ratio`` must be positive."""
    if ratio <= 0:
        raise ValueError(f"dB undefined for non-positive ratio {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert absolute power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm. ``mw`` must be positive."""
    if mw <= 0:
        raise ValueError(f"dBm undefined for non-positive power {mw!r}")
    return 10.0 * math.log10(mw)


def fibers_for_gbps(gbps: float, wavelengths: int, gbps_per_wavelength: float) -> int:
    """Number of fibers needed for ``gbps`` of capacity (B / (C * lambda)).

    Rounds up: capacity that fills a fraction of a fiber still needs the fiber.
    """
    if gbps < 0:
        raise ValueError("capacity must be non-negative")
    if wavelengths <= 0 or gbps_per_wavelength <= 0:
        raise ValueError("wavelengths and per-wavelength rate must be positive")
    return math.ceil(gbps / (wavelengths * gbps_per_wavelength))
