"""OSNR to BER translation for DP-16QAM coherent signals (§6.2, Fig 14).

The testbed transceivers run dual-polarization 16-QAM with soft-decision FEC
(2e-2 pre-FEC threshold, <1e-15 post-FEC). We use the standard textbook
chain [30]: OSNR (0.1 nm reference) -> per-symbol SNR -> Gray-coded square
16-QAM bit error probability.
"""

from __future__ import annotations

import math

from scipy.special import erfc, erfcinv

from repro.units import FEC_BER_THRESHOLD, POST_FEC_BER, db_to_linear, linear_to_db

#: OSNR reference bandwidth (0.1 nm at 1550 nm), GHz.
OSNR_REFERENCE_GHZ = 12.5

#: Polarizations in a DP signal.
DP_POLARIZATIONS = 2


def snr_from_osnr_db(
    osnr_db: float, baud_gbaud: float, polarizations: int = DP_POLARIZATIONS
) -> float:
    """Per-symbol linear SNR from OSNR.

    SNR = OSNR * 2 * B_ref / (p * R_s): ASE in both polarizations counts
    toward OSNR while each polarization tributary only sees half.
    """
    if baud_gbaud <= 0:
        raise ValueError("baud rate must be positive")
    if polarizations not in (1, 2):
        raise ValueError("polarizations must be 1 or 2")
    return db_to_linear(osnr_db) * 2.0 * OSNR_REFERENCE_GHZ / (
        polarizations * baud_gbaud
    )


def ber_16qam(snr_linear: float) -> float:
    """Gray-coded square 16-QAM bit error rate at per-symbol SNR ``snr``.

    BER = (3/8) * erfc( sqrt(SNR / 10) ), the standard high-SNR expression.
    """
    if snr_linear < 0:
        raise ValueError("SNR must be non-negative")
    return 0.375 * float(erfc(math.sqrt(snr_linear / 10.0)))


def prefec_ber_from_osnr_db(osnr_db: float, baud_gbaud: float = 59.84) -> float:
    """Pre-FEC BER of a DP-16QAM channel at ``osnr_db``."""
    return ber_16qam(snr_from_osnr_db(osnr_db, baud_gbaud))


def post_fec_ber(prefec: float, threshold: float = FEC_BER_THRESHOLD) -> float:
    """Post-FEC BER: essentially error-free below the SD-FEC threshold.

    Above threshold the code fails to converge and errors pass through,
    which we model as the uncorrected BER.
    """
    if not (0.0 <= prefec <= 0.5):
        raise ValueError("pre-FEC BER must be in [0, 0.5]")
    return POST_FEC_BER if prefec <= threshold else prefec


def required_osnr_db(
    ber_target: float = FEC_BER_THRESHOLD, baud_gbaud: float = 59.84
) -> float:
    """Minimum OSNR for a DP-16QAM channel to hit ``ber_target`` pre-FEC."""
    if not (0.0 < ber_target < 0.375):
        raise ValueError("BER target must be in (0, 0.375)")
    snr = 10.0 * float(erfcinv(ber_target / 0.375)) ** 2
    osnr_linear = snr * DP_POLARIZATIONS * baud_gbaud / (2.0 * OSNR_REFERENCE_GHZ)
    return linear_to_db(osnr_linear)
