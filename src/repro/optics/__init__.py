"""Optical physical-layer substrate (§3.2, Figs 8-9, §6.2).

Models the point-to-point DCI optical chain of Fig 8 — transceivers, WSS
mux/demux, optical space switches, EDFAs, power limiters, fiber spans — well
enough to reproduce the paper's physical-layer results: the OSNR-vs-amplifier
law (Fig 9), the technology constraints TC1-TC4, and the testbed BER
behaviour (Fig 14).
"""

from repro.optics.components import (
    Amplifier,
    FiberSpan,
    OpticalSpaceSwitch,
    OpticalCrossConnect,
    PowerLimiter,
    Transceiver,
    WavelengthSelectiveSwitch,
)
from repro.optics.budget import LinkBudget, LinkBudgetResult, evaluate_chain
from repro.optics.osnr import cascade_penalty_db, osnr_after_amplifiers_db
from repro.optics.ber import (
    ber_16qam,
    post_fec_ber,
    prefec_ber_from_osnr_db,
    required_osnr_db,
)
from repro.optics.constraints import (
    PathProfile,
    check_path,
    max_oss_traversals,
    violations,
)
from repro.optics.spectrum import ChannelPlan, SpectrumLoad

__all__ = [
    "Amplifier",
    "FiberSpan",
    "OpticalSpaceSwitch",
    "OpticalCrossConnect",
    "PowerLimiter",
    "Transceiver",
    "WavelengthSelectiveSwitch",
    "LinkBudget",
    "LinkBudgetResult",
    "evaluate_chain",
    "cascade_penalty_db",
    "osnr_after_amplifiers_db",
    "ber_16qam",
    "post_fec_ber",
    "prefec_ber_from_osnr_db",
    "required_osnr_db",
    "PathProfile",
    "check_path",
    "max_oss_traversals",
    "violations",
    "ChannelPlan",
    "SpectrumLoad",
]
