"""C-band channel plans and ASE channel emulation (§5.1 "Channel emulation").

Iris transmits the full C-band per fiber even when only some wavelengths
carry data: unused slots are filled with shaped ASE noise so that every
amplifier sees a constant, uniform spectral load regardless of which "live"
channels a reconfiguration moved. This is what lets amplifiers run at fixed
gain with no online power management (TC3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.exceptions import ReproError

#: Start of the C-band grid, THz.
C_BAND_START_THZ = 191.30


@dataclass(frozen=True)
class ChannelPlan:
    """A DWDM grid: ``count`` channels spaced ``spacing_ghz`` apart."""

    count: int = 40
    spacing_ghz: float = 100.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ReproError("channel plan needs at least one channel")
        if self.spacing_ghz <= 0:
            raise ReproError("channel spacing must be positive")

    def frequency_thz(self, index: int) -> float:
        """Centre frequency of channel ``index``."""
        if not (0 <= index < self.count):
            raise ReproError(f"channel index {index} out of range 0..{self.count - 1}")
        return C_BAND_START_THZ + index * self.spacing_ghz / 1000.0

    def indices(self) -> range:
        """All channel indices."""
        return range(self.count)


@dataclass(frozen=True)
class SpectrumLoad:
    """Which channels of a fiber are live vs ASE-filled.

    Invariant (checked): live and emulated sets are disjoint and together
    cover the whole plan — the fiber always carries a full C-band load.
    """

    plan: ChannelPlan
    live: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        bad = [i for i in self.live if not (0 <= i < self.plan.count)]
        if bad:
            raise ReproError(f"live channels out of plan range: {sorted(bad)}")

    @property
    def emulated(self) -> frozenset[int]:
        """Channels filled by the ASE channel emulator."""
        return frozenset(self.plan.indices()) - self.live

    @property
    def is_fully_loaded(self) -> bool:
        """Always true by construction; kept as an explicit audit hook."""
        return len(self.live) + len(self.emulated) == self.plan.count

    def add_live(self, channels: Iterable[int]) -> "SpectrumLoad":
        """Turn ``channels`` live (removing them from ASE emulation)."""
        return SpectrumLoad(self.plan, self.live | frozenset(channels))

    def drop_live(self, channels: Iterable[int]) -> "SpectrumLoad":
        """Return ``channels`` to ASE emulation."""
        dropping = frozenset(channels)
        missing = dropping - self.live
        if missing:
            raise ReproError(f"cannot drop non-live channels {sorted(missing)}")
        return SpectrumLoad(self.plan, self.live - dropping)

    def total_channels(self) -> int:
        """Total spectral load seen by amplifiers: always the full plan."""
        return self.plan.count
