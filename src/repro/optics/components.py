"""Optical component models for the DCI chain of Fig 8.

Each element reports how it transforms a propagating channel's signal power
and accumulated ASE noise; the budget engine (:mod:`repro.optics.budget`)
folds a chain of elements to an end-to-end received power and OSNR.

Noise bookkeeping uses the 0.1 nm (12.5 GHz) reference bandwidth customary
for OSNR. The quantum reference floor h*nu*B_ref at 193.4 THz is ~-58 dBm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConstraintViolation
from repro.units import (
    AMPLIFIER_GAIN_DB,
    AMPLIFIER_NOISE_FIGURE_DB,
    FIBER_LOSS_DB_PER_KM,
    OSS_INSERTION_LOSS_DB,
    OXC_INSERTION_LOSS_DB,
    RX_OSNR_THRESHOLD_DB,
    RX_SENSITIVITY_DBM,
    TX_POWER_DBM,
    WSS_INSERTION_LOSS_DB,
    db_to_linear,
    dbm_to_mw,
)

#: h * nu * B_ref in dBm for the 0.1 nm OSNR reference bandwidth.
QUANTUM_NOISE_FLOOR_DBM = -58.0


@dataclass(frozen=True)
class OpticalState:
    """A channel in flight: signal power (dBm) and ASE noise power (mW)."""

    signal_dbm: float
    noise_mw: float

    def attenuate(self, loss_db: float) -> "OpticalState":
        """Apply a passive loss: signal and noise drop together."""
        if loss_db < 0:
            raise ValueError("loss must be non-negative")
        return OpticalState(
            signal_dbm=self.signal_dbm - loss_db,
            noise_mw=self.noise_mw / db_to_linear(loss_db),
        )


@dataclass(frozen=True)
class FiberSpan:
    """An uninterrupted run of fiber (a "fiber span", §2)."""

    length_km: float
    loss_db_per_km: float = FIBER_LOSS_DB_PER_KM

    def __post_init__(self) -> None:
        if self.length_km < 0:
            raise ValueError("span length must be non-negative")
        if self.loss_db_per_km <= 0:
            raise ValueError("fiber loss must be positive")

    @property
    def loss_db(self) -> float:
        """Total span attenuation, dB."""
        return self.length_km * self.loss_db_per_km

    def propagate(self, state: OpticalState) -> OpticalState:
        """Attenuate the channel by the span loss."""
        return state.attenuate(self.loss_db)


@dataclass(frozen=True)
class Amplifier:
    """An EDFA operated at fixed gain (§5.1's one-time design decision).

    Amplifies signal and incoming noise by ``gain_db`` and adds its own ASE:
    N_add = NF * G * (h nu B_ref), i.e. noise figure referred to the input.
    """

    gain_db: float = AMPLIFIER_GAIN_DB
    noise_figure_db: float = AMPLIFIER_NOISE_FIGURE_DB
    max_input_dbm: float = 10.0

    def __post_init__(self) -> None:
        if self.gain_db <= 0:
            raise ValueError("amplifier gain must be positive")
        if self.noise_figure_db < 0:
            raise ValueError("noise figure must be non-negative")

    def propagate(self, state: OpticalState) -> OpticalState:
        """Amplify signal and noise, adding the EDFA's own ASE."""
        if state.signal_dbm > self.max_input_dbm:
            raise ConstraintViolation(
                f"amplifier input power {state.signal_dbm:.1f} dBm exceeds "
                f"{self.max_input_dbm:.1f} dBm; deploy a power limiter (TC3)",
                constraint="TC3",
            )
        gain = db_to_linear(self.gain_db)
        ase = (
            db_to_linear(self.noise_figure_db)
            * gain
            * dbm_to_mw(QUANTUM_NOISE_FLOOR_DBM)
        )
        return OpticalState(
            signal_dbm=state.signal_dbm + self.gain_db,
            noise_mw=state.noise_mw * gain + ase,
        )


@dataclass(frozen=True)
class PowerLimiter:
    """Bounds the input optical power to the next element (TC3, §5.1).

    Iris places one before each amplifier so fixed-gain amps never see
    excessive input after a reconfiguration shortens their input span.
    """

    max_output_dbm: float

    def propagate(self, state: OpticalState) -> OpticalState:
        """Clamp the channel to the configured maximum power."""
        excess = state.signal_dbm - self.max_output_dbm
        if excess <= 0:
            return state
        return state.attenuate(excess)


@dataclass(frozen=True)
class OpticalSpaceSwitch:
    """An OSS: fiber-granularity switching, ~1.5 dB insertion loss (TC4)."""

    insertion_loss_db: float = OSS_INSERTION_LOSS_DB

    def propagate(self, state: OpticalState) -> OpticalState:
        """Apply the switch's insertion loss."""
        return state.attenuate(self.insertion_loss_db)


@dataclass(frozen=True)
class OpticalCrossConnect:
    """An OXC: wavelength-granularity switching, ~9 dB insertion loss (TC4)."""

    insertion_loss_db: float = OXC_INSERTION_LOSS_DB

    def propagate(self, state: OpticalState) -> OpticalState:
        """Apply the cross-connect's insertion loss."""
        return state.attenuate(self.insertion_loss_db)


@dataclass(frozen=True)
class WavelengthSelectiveSwitch:
    """A WSS used as mux/demux at the DC edge (Fig 8)."""

    insertion_loss_db: float = WSS_INSERTION_LOSS_DB

    def propagate(self, state: OpticalState) -> OpticalState:
        """Apply the mux/demux insertion loss."""
        return state.attenuate(self.insertion_loss_db)


@dataclass(frozen=True)
class Transceiver:
    """A DCI coherent transceiver (400ZR class: 400 Gbps DP-16QAM).

    ``launch`` emits a channel whose OSNR is referenced to the quantum noise
    floor (the cleanest physically meaningful reference); penalties reported
    by the budget engine are relative to this launch OSNR, which makes the
    first amplifier's penalty equal its noise figure, as measured in Fig 9.
    """

    tx_power_dbm: float = TX_POWER_DBM
    rx_sensitivity_dbm: float = RX_SENSITIVITY_DBM
    rx_osnr_threshold_db: float = RX_OSNR_THRESHOLD_DB
    baud_gbaud: float = 59.84
    tunable: bool = True

    def launch(self) -> OpticalState:
        """The channel state at the transmitter output."""
        return OpticalState(
            signal_dbm=self.tx_power_dbm,
            noise_mw=dbm_to_mw(QUANTUM_NOISE_FLOOR_DBM),
        )

    def can_receive(self, power_dbm: float, osnr_db: float) -> bool:
        """Whether the receiver closes the link at this power and OSNR."""
        return (
            power_dbm >= self.rx_sensitivity_dbm
            and osnr_db >= self.rx_osnr_threshold_db
        )
