"""Technology constraint checkers TC1-TC4 (§3.2) as used by the planner.

A planned DC-DC path is summarized as a :class:`PathProfile`: its effective
hops (fiber runs between consecutive OSS switching points), where the (at
most one) in-line amplifier sits, and the resulting OSS traversal layout.

The operative physical rule is a per-run power budget. A "run" is the fiber
between consecutive amplification points (path ends count: the source
transmits and the destination amplifies before the demux, Fig 11). Each
amplifier contributes its 20 dB of gain to the run it terminates, so each
run's total loss — fiber at 0.25 dB/km plus 1.5 dB per OSS traversal — must
fit within 20 dB. This single rule reproduces the paper's discrete limits:

* TC1: an OSS-free run reaches at most 20/0.25 = 80 km;
* TC2: the 9 dB cascaded-amplifier OSNR budget allows 3 amplifiers
  end-to-end, i.e. at most one *in-line* amplifier;
* TC4: at 120 km with one in-line amplifier, 40 dB total minus 30 dB of
  fiber leaves 10 dB, i.e. at most 6 OSS traversals end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConstraintViolation
from repro.optics.budget import LinkBudgetResult
from repro.optics.components import Transceiver
from repro.units import (
    AMPLIFIER_GAIN_DB,
    FIBER_LOSS_DB_PER_KM,
    MAX_INLINE_AMPLIFIERS,
    MAX_OSS_PER_PATH,
    OSS_INSERTION_LOSS_DB,
    SLA_MAX_FIBER_KM,
)


def max_oss_traversals() -> int:
    """TC4: at most 6 OSSes fit the 10 dB reconfiguration budget (§3.2)."""
    return MAX_OSS_PER_PATH


@dataclass(frozen=True)
class RunBudget:
    """Loss accounting for one unamplified run."""

    fiber_km: float
    oss_traversals: int
    fiber_loss_db_per_km: float = FIBER_LOSS_DB_PER_KM
    oss_loss_db: float = OSS_INSERTION_LOSS_DB

    @property
    def loss_db(self) -> float:
        """Total run loss: fiber plus OSS insertion."""
        return (
            self.fiber_km * self.fiber_loss_db_per_km
            + self.oss_traversals * self.oss_loss_db
        )

    def fits(self, gain_db: float = AMPLIFIER_GAIN_DB) -> bool:
        """Whether the terminating amplifier can compensate this run."""
        return self.loss_db <= gain_db + 1e-9


@dataclass(frozen=True)
class PathProfile:
    """The optical shape of one planned DC-DC path.

    ``span_lengths_km``
        Fiber length of each effective hop — the runs between consecutive
        OSS switching points. Hops merged by a cut-through link appear as a
        single (longer) entry: the bypassed huts are passed unswitched.
    ``inline_amp_after_span``
        Index of the hop after which the single in-line amplifier sits
        (i.e. the amplifier lives at the switching point ending that hop),
        or ``None``. Must be strictly interior.
    """

    span_lengths_km: tuple[float, ...]
    inline_amp_after_span: int | None = None

    def __post_init__(self) -> None:
        if not self.span_lengths_km:
            raise ConstraintViolation("a path must contain at least one span")
        if any(s < 0 for s in self.span_lengths_km):
            raise ConstraintViolation("span lengths must be non-negative")
        amp = self.inline_amp_after_span
        if amp is not None and not (0 <= amp < len(self.span_lengths_km) - 1):
            raise ConstraintViolation(
                "in-line amplifier must sit strictly inside the path"
            )

    @property
    def total_km(self) -> float:
        """End-to-end fiber distance."""
        return sum(self.span_lengths_km)

    @property
    def inline_amp_count(self) -> int:
        """Number of in-line amplifiers (0 or 1 by construction)."""
        return 0 if self.inline_amp_after_span is None else 1

    @property
    def oss_traversals(self) -> int:
        """Total OSS passes end-to-end.

        One per switching point (source egress OSS, each interior point,
        destination ingress OSS) plus one extra at the amplification hut,
        whose loopback amplifier makes the signal cross its OSS twice.
        """
        return len(self.span_lengths_km) + 1 + self.inline_amp_count

    def runs(self) -> list[RunBudget]:
        """The unamplified runs with their fiber and OSS loads (see module
        docstring for the traversal arithmetic)."""
        spans = self.span_lengths_km
        k = len(spans)
        amp = self.inline_amp_after_span
        if amp is None:
            return [RunBudget(fiber_km=sum(spans), oss_traversals=k + 1)]
        first = RunBudget(
            fiber_km=sum(spans[: amp + 1]),
            oss_traversals=amp + 2,
        )
        second = RunBudget(
            fiber_km=sum(spans[amp + 1 :]),
            oss_traversals=k - amp,
        )
        return [first, second]

    def unamplified_runs_km(self) -> list[float]:
        """Fiber distance of each unamplified run (TC1's quantity)."""
        return [run.fiber_km for run in self.runs()]

    def with_amp_after_span(self, index: int | None) -> "PathProfile":
        """This profile with the in-line amplifier (re)positioned."""
        return PathProfile(self.span_lengths_km, index)


def violations(
    profile: PathProfile,
    sla_fiber_km: float = SLA_MAX_FIBER_KM,
    amplifier_gain_db: float = AMPLIFIER_GAIN_DB,
    max_inline_amps: int = MAX_INLINE_AMPLIFIERS,
) -> list[str]:
    """All constraint violations of ``profile`` (empty list = compliant)."""
    problems: list[str] = []
    if profile.total_km > sla_fiber_km + 1e-9:
        problems.append(
            f"OC1: path length {profile.total_km:.1f} km exceeds the "
            f"{sla_fiber_km:.0f} km SLA"
        )
    if profile.inline_amp_count > max_inline_amps:
        problems.append(
            f"TC2: {profile.inline_amp_count} in-line amplifiers exceed "
            f"the budget of {max_inline_amps}"
        )
    for i, run in enumerate(profile.runs()):
        if not run.fits(amplifier_gain_db):
            problems.append(
                f"TC1/TC4: run {i} loses {run.loss_db:.1f} dB "
                f"({run.fiber_km:.1f} km fiber + {run.oss_traversals} OSS) "
                f"against a {amplifier_gain_db:.0f} dB amplifier budget"
            )
    return problems


def check_path(
    profile: PathProfile,
    sla_fiber_km: float = SLA_MAX_FIBER_KM,
    amplifier_gain_db: float = AMPLIFIER_GAIN_DB,
) -> None:
    """Raise :class:`ConstraintViolation` if ``profile`` breaks any rule."""
    problems = violations(profile, sla_fiber_km, amplifier_gain_db)
    if problems:
        raise ConstraintViolation("; ".join(problems), path=profile)


def amp_fix_candidates(profile: PathProfile) -> list[int]:
    """Span indices where one in-line amplifier would make ``profile`` meet
    every run budget. Empty when no single amplifier suffices."""
    if profile.inline_amp_after_span is not None:
        return []
    out = []
    for index in range(len(profile.span_lengths_km) - 1):
        candidate = profile.with_amp_after_span(index)
        if all(run.fits() for run in candidate.runs()):
            out.append(index)
    return out


def budget_for_profile(
    profile: PathProfile, transceiver: Transceiver | None = None
) -> LinkBudgetResult:
    """Run ``profile`` through the full link-budget engine.

    The chain mirrors the profile's traversal arithmetic: source OSS, each
    effective hop followed by its switching OSS, the in-line amplifier in
    loopback (+1 OSS) where placed, terminal amplifier and ingress OSS at
    the destination. Tests use this to confirm that the closed-form rules
    imply a link the budget engine also closes.
    """
    from repro.optics.budget import evaluate_chain
    from repro.optics.components import (
        Amplifier,
        FiberSpan,
        OpticalSpaceSwitch,
        PowerLimiter,
    )

    spans = profile.span_lengths_km
    amp_index = profile.inline_amp_after_span
    chain: list = [OpticalSpaceSwitch()]  # source egress OSS
    for i, length in enumerate(spans):
        chain.append(FiberSpan(length))
        if i < len(spans) - 1:
            chain.append(OpticalSpaceSwitch())  # switching point OSS pass
            if amp_index is not None and i == amp_index:
                # Loopback amplification: amplify, then cross the OSS again
                # on the way out (the +1 traversal charged to run 2).
                chain.append(PowerLimiter(-15.0))
                chain.append(Amplifier())
                chain.append(OpticalSpaceSwitch())
    chain.append(PowerLimiter(-15.0))
    chain.append(Amplifier())  # terminal amplifier at the destination
    chain.append(OpticalSpaceSwitch())  # destination ingress OSS
    return evaluate_chain(chain, transceiver)
