"""End-to-end optical link budget evaluation (Fig 8's arithmetic).

``evaluate_chain`` folds a transmit state through an ordered list of
components (fiber spans, switches, amplifiers, limiters) and reports received
power, OSNR, and the OSNR penalty relative to launch. The planner's TC1-TC4
constraints are the closed-form shadow of this engine; tests assert the two
agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.optics.components import (
    Amplifier,
    FiberSpan,
    OpticalSpaceSwitch,
    OpticalState,
    PowerLimiter,
    Transceiver,
)
from repro.units import linear_to_db, dbm_to_mw


class Component(Protocol):
    """Anything that can transform an in-flight optical state."""

    def propagate(self, state: OpticalState) -> OpticalState:
        """Transform the in-flight channel state."""
        ...


@dataclass(frozen=True)
class LinkBudgetResult:
    """Outcome of propagating one channel across a component chain."""

    rx_power_dbm: float
    osnr_db: float
    reference_osnr_db: float
    amplifier_count: int
    total_fiber_km: float
    total_loss_db: float

    @property
    def osnr_penalty_db(self) -> float:
        """The Fig 9 quantity: OSNR degradation charged to amplification.

        Measured as the paper's testbed does: relative to the
        quantum-limited OSNR of the *unamplified* signal at the same
        (weakest) power point in the chain — the reading under which the
        first amplifier costs exactly its noise figure and each doubling
        of the cascade ~3 dB more.
        """
        return max(0.0, self.reference_osnr_db - self.osnr_db)

    def closes(self, transceiver: Transceiver) -> bool:
        """Whether ``transceiver`` can receive this channel."""
        return transceiver.can_receive(self.rx_power_dbm, self.osnr_db)


def _osnr_db(state: OpticalState) -> float:
    signal_mw = dbm_to_mw(state.signal_dbm)
    return linear_to_db(signal_mw / state.noise_mw)


def evaluate_chain(
    components: Sequence[Component],
    transceiver: Transceiver | None = None,
) -> LinkBudgetResult:
    """Propagate one channel through ``components`` and report the budget."""
    from repro.optics.components import QUANTUM_NOISE_FLOOR_DBM

    transceiver = transceiver or Transceiver()
    state = transceiver.launch()
    min_signal_dbm = state.signal_dbm

    amplifier_count = 0
    fiber_km = 0.0
    for component in components:
        if isinstance(component, Amplifier):
            amplifier_count += 1
        if isinstance(component, FiberSpan):
            fiber_km += component.length_km
        state = component.propagate(state)
        min_signal_dbm = min(min_signal_dbm, state.signal_dbm)

    # The reference is the quantum-limited OSNR at the chain's weakest
    # point: what an OSA would report for the clean, unamplified signal
    # there. See LinkBudgetResult.osnr_penalty_db.
    reference_osnr = min_signal_dbm - QUANTUM_NOISE_FLOOR_DBM
    return LinkBudgetResult(
        rx_power_dbm=state.signal_dbm,
        osnr_db=_osnr_db(state),
        reference_osnr_db=reference_osnr,
        amplifier_count=amplifier_count,
        total_fiber_km=fiber_km,
        total_loss_db=transceiver.tx_power_dbm - state.signal_dbm,
    )


@dataclass(frozen=True)
class LinkBudget:
    """Builder for common chains: spans interleaved with OSSes and amps.

    ``segments``: fiber span lengths (km) in order.
    ``oss_after``: number of OSS traversals after each segment (the source
    DC's egress OSS is prepended automatically when ``dc_edges`` is true).
    ``amp_after``: whether an in-line amplifier (preceded by a power limiter,
    per §5.1) follows each segment.
    """

    segments: tuple[float, ...]
    oss_after: tuple[int, ...]
    amp_after: tuple[bool, ...]
    dc_edges: bool = True
    amp_max_input_dbm: float = -15.0

    def __post_init__(self) -> None:
        n = len(self.segments)
        if len(self.oss_after) != n or len(self.amp_after) != n:
            raise ValueError("segments, oss_after, amp_after must align")

    def components(self) -> list[Component]:
        """Materialize the ordered component chain."""
        chain: list[Component] = []
        if self.dc_edges:
            chain.append(OpticalSpaceSwitch())
        for length, oss_count, amp in zip(
            self.segments, self.oss_after, self.amp_after
        ):
            chain.append(FiberSpan(length))
            chain.extend(OpticalSpaceSwitch() for _ in range(oss_count))
            if amp:
                chain.append(PowerLimiter(self.amp_max_input_dbm))
                chain.append(Amplifier())
        if self.dc_edges:
            # Terminal amplification + receive OSS at the destination (Fig 11).
            chain.append(PowerLimiter(self.amp_max_input_dbm))
            chain.append(Amplifier())
            chain.append(OpticalSpaceSwitch())
        return chain

    def evaluate(self, transceiver: Transceiver | None = None) -> LinkBudgetResult:
        """Propagate a channel through the chain and report the budget."""
        return evaluate_chain(self.components(), transceiver)


def path_budget(
    span_lengths_km: Iterable[float],
    inline_amp_after_span: int | None = None,
    transceiver: Transceiver | None = None,
) -> LinkBudgetResult:
    """Budget for a DC-DC path given its spans and one optional in-line amp.

    ``inline_amp_after_span`` is the index of the span after which the single
    allowed in-line amplifier sits (TC2), or ``None`` for no amplification.
    Every span boundary is an OSS switching point (fiber switching, §4.3).
    """
    segments = tuple(span_lengths_km)
    n = len(segments)
    if n == 0:
        raise ValueError("a path needs at least one span")
    oss_after = tuple(1 if i < n - 1 else 0 for i in range(n))
    amp_after = tuple(
        inline_amp_after_span is not None and i == inline_amp_after_span
        for i in range(n)
    )
    return LinkBudget(
        segments=segments, oss_after=oss_after, amp_after=amp_after
    ).evaluate(transceiver)
