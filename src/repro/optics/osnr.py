"""Cascaded-amplifier OSNR accumulation (Fig 9).

The paper measures the OSNR penalty of N cascaded EDFAs (attenuators matched
to the gain between them): the first amplifier costs its noise figure
(~4.5 dB) and each doubling thereafter ~3 dB more, in line with the classical
cascade analysis [32]. Closed form: penalty(N) = NF + 10 log10(N) dB.

With 400ZR's 11 dB tolerable penalty minus ~2 dB margin, the 9 dB budget
yields at most 3 amplifiers end-to-end (TC2); since each terminal DC hosts an
amplifier, at most one extra in-line amplifier fits on any path.
"""

from __future__ import annotations

import math

from repro.optics.budget import evaluate_chain, LinkBudgetResult
from repro.optics.components import Amplifier, FiberSpan, Transceiver
from repro.units import (
    AMPLIFIER_NOISE_FIGURE_DB,
    AMPLIFIER_OSNR_BUDGET_DB,
    AMPLIFIER_GAIN_DB,
    FIBER_LOSS_DB_PER_KM,
)


def cascade_penalty_db(
    n_amplifiers: int, noise_figure_db: float = AMPLIFIER_NOISE_FIGURE_DB
) -> float:
    """Closed-form OSNR penalty of ``n_amplifiers`` gain-matched EDFAs."""
    if n_amplifiers < 0:
        raise ValueError("amplifier count must be non-negative")
    if n_amplifiers == 0:
        return 0.0
    return noise_figure_db + 10.0 * math.log10(n_amplifiers)


def osnr_after_amplifiers_db(
    launch_osnr_db: float,
    n_amplifiers: int,
    noise_figure_db: float = AMPLIFIER_NOISE_FIGURE_DB,
) -> float:
    """OSNR remaining after a gain-matched cascade, from the closed form."""
    return launch_osnr_db - cascade_penalty_db(n_amplifiers, noise_figure_db)


def max_amplifiers_within_budget(
    budget_db: float = AMPLIFIER_OSNR_BUDGET_DB,
    noise_figure_db: float = AMPLIFIER_NOISE_FIGURE_DB,
    grace_db: float = 0.5,
) -> int:
    """Largest cascade whose penalty fits ``budget_db`` (3 for the paper).

    ``grace_db`` mirrors how the paper reads Fig 9: a 9 dB budget admits 3
    amplifiers even though the exact law gives 9.27 dB — measured penalties
    sit within half a dB of the idealized curve.
    """
    if budget_db + grace_db < noise_figure_db:
        return 0
    return int(
        math.floor(10.0 ** ((budget_db + grace_db - noise_figure_db) / 10.0))
    )


def emulated_cascade(
    n_amplifiers: int,
    gain_db: float = AMPLIFIER_GAIN_DB,
    noise_figure_db: float = AMPLIFIER_NOISE_FIGURE_DB,
) -> LinkBudgetResult:
    """Reproduce the Fig 9 experiment through the budget engine.

    Emulated loss (a fiber span whose loss matches the amplifier gain)
    between consecutive amplifiers, exactly as the paper's testbed inset.
    """
    if n_amplifiers < 0:
        raise ValueError("amplifier count must be non-negative")
    span_km = gain_db / FIBER_LOSS_DB_PER_KM
    chain: list = []
    for _ in range(n_amplifiers):
        chain.append(FiberSpan(span_km))
        chain.append(Amplifier(gain_db=gain_db, noise_figure_db=noise_figure_db))
    return evaluate_chain(chain, Transceiver())
