"""Canonical JSON encoding and digests: the store's addressing substrate.

Content addressing only works if the same value always encodes to the
same bytes. :func:`canonical_json` pins every degree of freedom JSON
leaves open: keys sorted, no insignificant whitespace, ASCII-only escapes,
NaN/Infinity rejected (they are not JSON and would never compare equal to
themselves anyway). Floats use Python's shortest-repr float formatting,
which is deterministic across platforms for IEEE-754 doubles and
round-trips exactly, so an encode/decode/encode cycle is a fixpoint.

Digests are plain SHA-256 over the UTF-8 canonical text. Keys and content
addresses share the same 64-hex-digit namespace.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.exceptions import ReproError


def canonical_json(value: Any) -> str:
    """The canonical (deterministic, minimal) JSON text of ``value``.

    Raises :class:`ReproError` for values outside the JSON model — the
    store only persists plain dict/list/str/int/float/bool/None trees, so
    a dataclass or a NaN reaching this boundary is a caller bug worth
    failing loudly on.
    """
    try:
        return json.dumps(
            value,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"value is not canonically serializable: {exc}") from exc


def sha256_hex(text: str) -> str:
    """Hex SHA-256 of ``text``'s UTF-8 bytes."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def digest(value: Any) -> str:
    """The content address of a JSON-model value: SHA-256 of its canonical text."""
    return sha256_hex(canonical_json(value))
