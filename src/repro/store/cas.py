"""The on-disk content-addressed store: atomic blobs + an index manifest.

Layout under the store root::

    <root>/
      index.json                    # the manifest: key -> {kind, size, sha}
      objects/<k[:2]>/<key>.json    # one blob per artifact key

Every blob is a self-verifying envelope — the canonical JSON of
``{"key", "kind", "content_sha256", "payload"}`` — so a read needs nothing
but the file: the payload's content digest is recomputed and compared on
every :meth:`PlanStore.get`. Any mismatch, torn write, or unparseable file
degrades to a **miss**, never a crash or a wrong hit; the caller replans
and the next :meth:`~PlanStore.put` heals the entry.

Crash safety is the whole design: all writes go to a same-directory tmp
file and land via ``os.replace`` (atomic on POSIX), an invariant reprolint
rule R008 machine-checks for this package. The manifest is an *advisory*
index — reads never require it, so a lost manifest update under concurrent
writers costs at most a ``gc``-collectable orphan, and two processes
putting the same key converge on identical bytes.

Observability: ``get``/``put``/``gc``/``verify`` run under
:mod:`repro.obs` spans (I/O wall time) and bump ``store.hits``,
``store.misses``, ``store.puts``, ``store.corrupt``, and
``store.evictions`` counters; the same session totals are kept on the
instance for :meth:`~PlanStore.stats`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import obs
from repro.exceptions import ReproError
from repro.store.canonical import canonical_json, sha256_hex
from repro.store.keys import STORE_SCHEMA_VERSION

_KEY_HEX_LEN = 64


@dataclass(frozen=True)
class GcResult:
    """What one :meth:`PlanStore.gc` pass removed."""

    removed_blobs: int
    dropped_entries: int
    reclaimed_bytes: int


@dataclass(frozen=True)
class StoreStats:
    """A store's persistent inventory plus this process's session traffic."""

    root: str
    entries: int
    blobs: int
    total_bytes: int
    kinds: dict[str, int]
    orphan_blobs: int
    hits: int
    misses: int
    puts: int
    corrupt: int
    evictions: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the ``iris store stats --json`` payload)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "blobs": self.blobs,
            "total_bytes": self.total_bytes,
            "kinds": dict(sorted(self.kinds.items())),
            "orphan_blobs": self.orphan_blobs,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt": self.corrupt,
                "evictions": self.evictions,
            },
        }


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically: same-dir tmp + ``os.replace``.

    The tmp file carries the writer's PID so concurrent processes never
    collide on it; the final rename is atomic, so readers observe either
    the old file or the complete new one — never a torn write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


class PlanStore:
    """A content-addressed artifact store rooted at one directory.

    Construction is cheap and touches nothing on disk; the directory tree
    appears on the first :meth:`put`. Instances carry only the root path
    and session counters, so they are picklable and safe to hand to the
    design registry or worker-free sweep code.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.evictions = 0

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """The advisory index file."""
        return self.root / "index.json"

    def blob_path(self, key: str) -> Path:
        """Where the blob for ``key`` lives (whether or not it exists)."""
        self._check_key(key)
        return self.root / "objects" / key[:2] / f"{key}.json"

    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) != _KEY_HEX_LEN or any(
            c not in "0123456789abcdef" for c in key
        ):
            raise ReproError(f"malformed store key {key!r}")

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self) -> dict[str, dict[str, Any]]:
        """The manifest's entry map; tolerant of absence and corruption.

        A missing or unreadable manifest is an empty index, not an error:
        blobs are self-verifying, so the worst case is ``stats`` and
        ``gc`` seeing orphans until the next ``put`` rewrites it.
        """
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("store_schema") != STORE_SCHEMA_VERSION
            or not isinstance(data.get("entries"), dict)
        ):
            return {}
        return data["entries"]

    def _write_manifest(self, entries: dict[str, dict[str, Any]]) -> None:
        _atomic_write_text(
            self.manifest_path,
            canonical_json(
                {
                    "store_schema": STORE_SCHEMA_VERSION,
                    "entries": dict(sorted(entries.items())),
                }
            ),
        )

    # -- core API ------------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """The payload stored under ``key``, or ``None`` on any miss.

        The content digest is re-verified on every read; corruption of
        any shape (torn write, bit rot, truncation, schema drift) counts
        ``store.corrupt`` and degrades to a miss so the caller replans.
        """
        with obs.span("store.get") as span:
            path = self.blob_path(key)
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                self.misses += 1
                span.incr("store.misses")
                return None
            payload = self._verified_payload(key, text)
            if payload is None:
                self.corrupt += 1
                self.misses += 1
                span.incr("store.corrupt")
                span.incr("store.misses")
                return None
            self.hits += 1
            span.incr("store.hits")
            span.incr("store.bytes_read", len(text))
            return payload

    @staticmethod
    def _verified_payload(key: str, text: str) -> dict[str, Any] | None:
        """Decode one blob envelope; ``None`` unless everything checks out."""
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(envelope, dict) or envelope.get("key") != key:
            return None
        payload = envelope.get("payload")
        content_sha = envelope.get("content_sha256")
        if payload is None or not isinstance(content_sha, str):
            return None
        try:
            actual = sha256_hex(canonical_json(payload))
        except ReproError:
            return None
        if actual != content_sha:
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any], kind: str = "artifact") -> str:
        """Store ``payload`` under ``key`` (idempotent; returns ``key``).

        The blob lands atomically before the manifest entry does, so a
        crash between the two leaves a readable blob the next manifest
        write or ``verify --repair`` re-indexes.
        """
        with obs.span("store.put") as span:
            text = canonical_json(payload)
            envelope = canonical_json(
                {
                    "key": key,
                    "kind": kind,
                    "content_sha256": sha256_hex(text),
                    "payload": payload,
                }
            )
            _atomic_write_text(self.blob_path(key), envelope)
            entries = self._load_manifest()
            entries[key] = {
                "kind": kind,
                "size": len(envelope),
                "content_sha256": sha256_hex(text),
            }
            self._write_manifest(entries)
            self.puts += 1
            span.incr("store.puts")
            span.incr("store.bytes_written", len(envelope))
        return key

    def _blob_files(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def gc(self) -> GcResult:
        """Collect garbage: orphan blobs, stale tmp files, dead entries.

        The manifest is the root set — blobs without a manifest entry are
        removed (they are at worst re-creatable cache entries), manifest
        entries without a blob are dropped. Counts ``store.evictions``
        per removed blob.
        """
        with obs.span("store.gc") as span:
            entries = self._load_manifest()
            removed = 0
            reclaimed = 0
            seen: set[str] = set()
            for path in self._blob_files():
                key = path.stem
                if key in entries:
                    seen.add(key)
                    continue
                try:
                    reclaimed += path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                removed += 1
            objects = self.root / "objects"
            stale_tmp = sorted(objects.glob("*/*.tmp")) if objects.is_dir() else []
            for path in stale_tmp:
                path.unlink(missing_ok=True)
            dropped = len(entries) - len(seen)
            if dropped:
                self._write_manifest(
                    {key: entries[key] for key in sorted(seen)}
                )
            self.evictions += removed
            span.incr("store.evictions", removed)
        return GcResult(
            removed_blobs=removed,
            dropped_entries=dropped,
            reclaimed_bytes=reclaimed,
        )

    def verify(self, *, repair: bool = False) -> list[str]:
        """Check every blob against its digest; list the problems found.

        With ``repair=True`` corrupt blobs are deleted and their manifest
        entries dropped (so they become ordinary misses); without it the
        store is left untouched — ``get`` already refuses to return them.
        """
        with obs.span("store.verify"):
            entries = self._load_manifest()
            problems: list[str] = []
            bad_keys: list[str] = []
            for path in self._blob_files():
                key = path.stem
                try:
                    text = path.read_text(encoding="utf-8")
                except OSError as exc:
                    problems.append(f"{key}: unreadable blob ({exc})")
                    bad_keys.append(key)
                    continue
                if self._verified_payload(key, text) is None:
                    problems.append(f"{key}: digest mismatch or malformed envelope")
                    bad_keys.append(key)
                elif key not in entries:
                    problems.append(f"{key}: valid blob missing from manifest")
            for key in sorted(set(entries) - {p.stem for p in self._blob_files()}):
                problems.append(f"{key}: manifest entry without blob")
            if repair and bad_keys:
                for key in bad_keys:
                    self.blob_path(key).unlink(missing_ok=True)
                    entries.pop(key, None)
                self._write_manifest(entries)
                self.corrupt += len(bad_keys)
        return problems

    def stats(self) -> StoreStats:
        """Inventory the store on disk plus this instance's session traffic."""
        entries = self._load_manifest()
        blobs = self._blob_files()
        kinds: dict[str, int] = {}
        for meta in entries.values():
            kind = str(meta.get("kind", "artifact"))
            kinds[kind] = kinds.get(kind, 0) + 1
        total_bytes = 0
        for path in blobs:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
        orphans = sum(1 for path in blobs if path.stem not in entries)
        return StoreStats(
            root=str(self.root),
            entries=len(entries),
            blobs=len(blobs),
            total_bytes=total_bytes,
            kinds=kinds,
            orphan_blobs=orphans,
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            corrupt=self.corrupt,
            evictions=self.evictions,
        )

    def __repr__(self) -> str:
        return f"PlanStore({str(self.root)!r})"
