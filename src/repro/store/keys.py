"""Artifact keys: SHA-256 over everything a cached artifact depends on.

A plan is a pure function of (fiber map, DC placement, design name, full
planner config, schema versions) — the region encoding carries the map and
placement, the config dict carries every planner option, and the version
stamps invalidate the whole store when an encoding or the pricebook schema
changes meaning. Anything that could change the artifact's bytes must be
in the key; anything that cannot (``jobs=``, tracing, cache warmth) must
stay out, or identical work would miss.

Keys are input-addressed: two callers asking for the same artifact compute
the same key without talking to each other. Blob integrity is separate —
the CAS re-verifies a *content* digest on every read.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from repro.cost.pricebook import PRICEBOOK_SCHEMA_VERSION, PriceBook
from repro.region.fibermap import RegionSpec
from repro.serialize import FORMAT_VERSION, region_to_dict
from repro.store.canonical import digest

#: Bump when the store's on-disk layout or key envelope changes shape;
#: old entries then miss (and are collectable with ``gc``) instead of
#: being misread.
STORE_SCHEMA_VERSION = 1


def artifact_key(kind: str, inputs: dict[str, Any]) -> str:
    """The store key for an artifact of ``kind`` produced from ``inputs``.

    The key envelope folds in every schema version stamp, so bumping any
    of them retires the entire old namespace at once — invalidation by
    construction, no migration code.
    """
    return digest(
        {
            "kind": kind,
            "versions": {
                "store_schema": STORE_SCHEMA_VERSION,
                "plan_format": FORMAT_VERSION,
                "pricebook_schema": PRICEBOOK_SCHEMA_VERSION,
            },
            "inputs": inputs,
        }
    )


def plan_key(
    *,
    design: str,
    region: RegionSpec,
    config: dict[str, Any] | None = None,
    pricebook: PriceBook | None = None,
) -> str:
    """The key of a cached plan: design name x region x full config.

    ``config`` must hold every option that can change the plan's content
    (``prune_enumeration``, ``validate``, design-specific knobs) and none
    that cannot — execution options like ``jobs=`` are deliberately
    excluded because plans are bit-identical across backends. When a
    design's input is itself structured data rather than a scalar knob —
    the robust design's sampled TM ensemble, say — the config carries a
    canonical *digest* of it (``designs.robust.ensemble_digest``), so two
    ensembles with identical weights share a key regardless of how they
    were constructed.
    ``pricebook`` is for artifacts that bake prices into their payload;
    plans themselves do not (costing happens downstream), so planner
    callers leave it ``None``.
    """
    return artifact_key(
        "plan",
        {
            "design": design,
            "region": region_to_dict(region),
            "config": dict(sorted((config or {}).items())),
            "pricebook": dict(sorted(asdict(pricebook).items()))
            if pricebook is not None
            else None,
        },
    )


def service_request_key(
    *,
    design: str,
    region: RegionSpec,
    config: dict[str, Any] | None = None,
) -> str:
    """The single-flight key the planner service coalesces requests under.

    Deliberately *the same function* as :func:`plan_key` (a documented
    alias, not a parallel formula): the daemon keys its in-flight table,
    its store writes, and its store reads with one value, so "two clients
    asked for the same plan" and "this plan is already in the store" are
    by construction the same question. Anything that would make the key
    diverge from what ``iris plan --store`` writes would silently split
    the cache between CLI and service.
    """
    return plan_key(design=design, region=region, config=config)
