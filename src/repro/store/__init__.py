"""repro.store: a content-addressed plan store with incremental sweep resume.

Plans are pure functions of their inputs — fiber map, DC placement, design
name, full planner config, schema versions — so they are perfect memoize
targets: ``iris sweep`` campaigns replan identical (region, design) cells
over and over, and an interrupted sweep loses everything. This package
adds the persistence layer the north star's "fast as the hardware allows"
goal needs:

* :mod:`repro.store.canonical` — deterministic JSON encoding + SHA-256
  digests (the addressing substrate);
* :mod:`repro.store.keys` — input-addressed artifact keys with schema
  version stamps for invalidation-by-construction;
* :mod:`repro.store.cas` — the on-disk store: atomic tmp+rename blob
  writes, an advisory index manifest, digest re-verification on every
  read (corruption degrades to a miss, never a crash), and the
  ``get``/``put``/``gc``/``stats``/``verify`` API.

Typical use::

    from repro.store import PlanStore
    from repro.core.planner import plan_region

    store = PlanStore(".iris-store")
    plan = plan_region(region, store=store)   # miss: plans + checkpoints
    plan = plan_region(region, store=store)   # hit: loads, bit-identical

The same ``store=`` threads through the design registry
(``get_design("iris", store=store)``) and ``run_sweep`` — completed sweep
cells checkpoint as they finish, so ``iris sweep --store DIR --resume``
replans only the incomplete cells.
"""

from repro.store.canonical import canonical_json, digest, sha256_hex
from repro.store.cas import GcResult, PlanStore, StoreStats
from repro.store.keys import STORE_SCHEMA_VERSION, artifact_key, plan_key

__all__ = [
    "GcResult",
    "PlanStore",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "artifact_key",
    "canonical_json",
    "digest",
    "plan_key",
    "sha256_hex",
]
