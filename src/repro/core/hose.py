"""Hose-model worst-case capacity via max-flow (§4.1, adapted from [29]).

Summing per-pair demands over an edge over-provisions: a DC in several pairs
would have its capacity double-counted. The precise answer is the maximum
flow of a bipartite "flow graph": source -> (egress side of each DC, capped
by its capacity) -> pair arcs -> (ingress side, capped) -> sink. The max flow
is the worst-case traffic any hose-compliant traffic matrix can push across
the edge.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.region.fibermap import Duct, duct_key


def oriented_pairs_through_edge(
    edge: Duct, paths: Mapping[tuple[str, str], Sequence[str]]
) -> list[tuple[str, str]]:
    """DC pairs whose path traverses ``edge``, oriented along the traversal.

    Returns (left, right) per pair, where the path crosses the edge from the
    ``left`` DC's side toward the ``right`` DC's side. With symmetric
    demands the reverse orientation is the mirror image, so one orientation
    suffices for capacity.
    """
    out: list[tuple[str, str]] = []
    for (a, b), path in paths.items():
        for x, y in zip(path, path[1:]):
            if duct_key(x, y) == edge:
                # The a->b path crosses the duct in the x->y direction; the
                # canonical key is (min, max), so (x, y) == edge means the
                # traversal runs low-endpoint -> high-endpoint.
                out.append((a, b) if (x, y) == edge else (b, a))
                break
    return out


@dataclass(frozen=True)
class HoseCacheStats:
    """A snapshot of the per-process hose max-flow cache counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class _HoseCache:
    """Bounded per-process memo for the hose max-flow.

    A plain module-level ``lru_cache`` is *not* per-process-safe for the
    planner's worker pools: a forked worker inherits the parent's entries
    and counters, so cache statistics blur across processes and a
    long-lived sweep worker's cache grows without an owner to clear it.
    This cache pins the PID it was created in and resets itself on first
    use in any other process, giving every worker its own bounded cache
    and accurate per-process hit/miss counters (which the planner's
    :class:`~repro.core.engine.PlanTimings` aggregates).
    """

    __slots__ = ("entries", "hits", "misses", "maxsize", "pid")

    def __init__(self, maxsize: int) -> None:
        self.entries: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.maxsize = maxsize
        self.pid = os.getpid()


_CACHE_MAXSIZE = 200_000
_cache = _HoseCache(_CACHE_MAXSIZE)


def _hose_cache() -> _HoseCache:
    global _cache
    if _cache.pid != os.getpid():
        _cache = _HoseCache(_CACHE_MAXSIZE)
    return _cache


def clear_hose_cache() -> None:
    """Drop all cached hose max-flows and reset the hit/miss counters.

    Long-lived sweep processes call this between regions to bound memory;
    tests call it to measure cache behaviour from a clean slate.
    """
    global _cache
    _cache = _HoseCache(_CACHE_MAXSIZE)


def hose_cache_stats() -> HoseCacheStats:
    """Current-process cache counters (the engine's hit-rate hook)."""
    cache = _hose_cache()
    return HoseCacheStats(
        hits=cache.hits,
        misses=cache.misses,
        size=len(cache.entries),
        maxsize=cache.maxsize,
    )


def hose_capacity(
    oriented_pairs: Iterable[tuple[str, str]],
    dc_fibers: Mapping[str, int],
) -> int:
    """Worst-case hose load (in fibers) of a set of oriented DC pairs.

    ``oriented_pairs`` is the (left, right) list from
    :func:`oriented_pairs_through_edge`; ``dc_fibers`` the per-DC capacity.

    The planner calls this tens of thousands of times on tiny bipartite
    graphs, so the computation is memoized (per process, see
    :func:`hose_cache_stats`) and solved with a direct augmenting-path
    max-flow instead of a general-purpose library call.
    """
    pairs = frozenset(oriented_pairs)
    if not pairs:
        return 0
    dcs = {dc for pair in pairs for dc in pair}
    caps = tuple(sorted((dc, dc_fibers[dc]) for dc in dcs))
    key = (tuple(sorted(pairs)), caps)
    cache = _hose_cache()
    value = cache.entries.get(key)
    if value is not None:
        cache.hits += 1
        if obs.enabled():
            _record_lookup(value, hit=True)
        return value
    cache.misses += 1
    value = _hose_max_flow(*key)
    if len(cache.entries) >= cache.maxsize:
        # FIFO eviction: drop the oldest entry (dicts preserve insertion
        # order); the planner's access pattern is bursty per scenario, so
        # recency tracking buys nothing over this.
        cache.entries.pop(next(iter(cache.entries)))
    cache.entries[key] = value
    if obs.enabled():
        _record_lookup(value, hit=False)
    return value


def _record_lookup(value: int, hit: bool) -> None:
    """Trace one hose lookup (only called when tracing is enabled).

    ``hose.lookups`` and the ``hose.flow.fibers[...]`` distribution count
    every lookup, so their totals are invariant to chunking and worker
    count (each (edge, scenario) is looked up exactly once per plan); the
    hit/miss split depends on per-process cache warmth and is *not*
    expected to match across ``jobs=`` settings.
    """
    obs.incr("hose.lookups")
    obs.incr("hose.cache_hit" if hit else "hose.cache_miss")
    obs.incr(f"hose.flow.fibers[{obs.bucket_label(value)}]")


def _hose_max_flow(
    pairs: tuple[tuple[str, str], ...],
    caps: tuple[tuple[str, int], ...],
) -> int:
    """Max flow of the bipartite hose graph (BFS augmenting paths).

    Node model: egress copy of each left DC (cap from source), ingress copy
    of each right DC (cap to sink), infinite pair arcs. Capacities are small
    integers, so the number of augmentations is bounded by the total DC
    capacity and each BFS touches only a handful of nodes.
    """
    cap_of = dict(caps)
    lefts = sorted({a for a, _ in pairs})
    rights = sorted({b for _, b in pairs})
    # Residual capacities: source->left, right->sink, left->right (inf),
    # plus reverse residuals for the pair arcs.
    src_res = {a: cap_of[a] for a in lefts}
    sink_res = {b: cap_of[b] for b in rights}
    fwd: dict[tuple[str, str], float] = {p: math.inf for p in pairs}
    rev: dict[tuple[str, str], float] = {p: 0.0 for p in pairs}
    out_of = {a: [b for (x, b) in pairs if x == a] for a in lefts}
    into = {b: [a for (a, y) in pairs if y == b] for b in rights}

    total = 0
    while True:
        # BFS from source through lefts with residual, to a right with
        # residual to sink; track parents to augment.
        parent_right: dict[str, str] = {}
        parent_left: dict[str, str | None] = {
            a: None for a in lefts if src_res[a] > 0
        }
        frontier = list(parent_left)
        target = None
        while frontier and target is None:
            next_frontier = []
            for a in frontier:
                for b in out_of[a]:
                    if b in parent_right or fwd[(a, b)] <= 0:
                        continue
                    parent_right[b] = a
                    if sink_res[b] > 0:
                        target = b
                        break
                    # Continue through reverse pair arcs (rarely needed
                    # with infinite forward arcs, kept for correctness).
                    for a2 in into[b]:
                        if a2 not in parent_left and rev[(a2, b)] > 0:
                            parent_left[a2] = b
                            next_frontier.append(a2)
                if target is not None:
                    break
            frontier = next_frontier
        if target is None:
            return total

        # Walk back to find the bottleneck, then augment by it.
        path: list[tuple[str, str, bool]] = []  # (left, right, forward?)
        b = target
        bottleneck = sink_res[b]
        while True:
            a = parent_right[b]
            path.append((a, b, True))
            bottleneck = min(bottleneck, fwd[(a, b)])
            via = parent_left[a]
            if via is None:
                bottleneck = min(bottleneck, src_res[a])
                break
            path.append((a, via, False))
            bottleneck = min(bottleneck, rev[(a, via)])
            b = via
        bottleneck = int(bottleneck)
        first_left = path[-1][0]  # the left node fed from the source
        src_res[first_left] -= bottleneck
        sink_res[target] -= bottleneck
        for a, b, forward in path:
            if forward:
                fwd[(a, b)] -= bottleneck
                rev[(a, b)] += bottleneck
            else:
                fwd[(a, b)] += bottleneck
                rev[(a, b)] -= bottleneck
        total += bottleneck


def naive_sum_capacity(
    oriented_pairs: Iterable[tuple[str, str]],
    dc_fibers: Mapping[str, int],
) -> int:
    """The naive per-pair sum the paper warns against (for comparison only).

    Sums min(cap_a, cap_b) over pairs; over-counts DCs that appear in
    several pairs. Always >= :func:`hose_capacity`.
    """
    return sum(min(dc_fibers[a], dc_fibers[b]) for a, b in oriented_pairs)
