"""Hose-model worst-case capacity via max-flow (§4.1, adapted from [29]).

Summing per-pair demands over an edge over-provisions: a DC in several pairs
would have its capacity double-counted. The precise answer is the maximum
flow of a bipartite "flow graph": source -> (egress side of each DC, capped
by its capacity) -> pair arcs -> (ingress side, capped) -> sink. The max flow
is the worst-case traffic any hose-compliant traffic matrix can push across
the edge.

Incremental solving
-------------------

A single region plan asks for tens of thousands of these max-flows, and
successive failure scenarios differ by only ``tolerance`` duct cuts, so the
pair set an edge carries in one scenario is usually a small perturbation of
the pair set it carried in another. The solver exploits this: alongside the
value memo it keeps the *residual networks* of recently solved instances,
indexed by the pairs they contain. A lookup that misses the value memo is
repaired from the best-overlapping stored residual — cancel the flow on
removed pair arcs, splice in the added arcs, re-augment to maximality —
instead of solving from scratch. Max-flow values are unique (even though
flows are not), so an incremental solve returns exactly the value a cold
solve would, and the two are interchangeable under the same cache key;
property tests assert this on randomized instances. Cold solves
(:func:`hose_cache_stats` ``.cold_solves``, obs counter
``hose.solve_cold``) drop ~10x on the golden region.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.region.fibermap import Duct, duct_key


def oriented_pairs_through_edge(
    edge: Duct, paths: Mapping[tuple[str, str], Sequence[str]]
) -> list[tuple[str, str]]:
    """DC pairs whose path traverses ``edge``, oriented along the traversal.

    Returns (left, right) per pair, where the path crosses the edge from the
    ``left`` DC's side toward the ``right`` DC's side. With symmetric
    demands the reverse orientation is the mirror image, so one orientation
    suffices for capacity.
    """
    out: list[tuple[str, str]] = []
    for (a, b), path in paths.items():
        for x, y in zip(path, path[1:]):
            if duct_key(x, y) == edge:
                # The a->b path crosses the duct in the x->y direction; the
                # canonical key is (min, max), so (x, y) == edge means the
                # traversal runs low-endpoint -> high-endpoint.
                out.append((a, b) if (x, y) == edge else (b, a))
                break
    return out


@dataclass(frozen=True)
class HoseCacheStats:
    """A snapshot of the per-process hose max-flow cache counters."""

    hits: int
    misses: int
    size: int
    maxsize: int
    cold_solves: int = 0
    incremental_solves: int = 0
    states: int = 0
    state_maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    @property
    def incremental_rate(self) -> float:
        """Fraction of misses repaired incrementally rather than solved cold."""
        if not self.misses:
            return 0.0
        return self.incremental_solves / self.misses


class _FlowState:
    """A solved hose flow graph: the residual network plus its max flow.

    Stored per cache entry so later, slightly different instances can be
    *repaired* from it (see :func:`_repair`) instead of solved from
    scratch. All residuals are integers except the infinite forward pair
    arcs.
    """

    __slots__ = (
        "pairs", "caps", "src_res", "sink_res", "fwd", "rev",
        "out_of", "into", "total", "seq",
    )

    def __init__(
        self,
        pairs: frozenset[tuple[str, str]],
        caps: dict[str, int],
    ) -> None:
        self.pairs = pairs
        self.caps = caps
        lefts = sorted({a for a, _ in pairs})
        rights = sorted({b for _, b in pairs})
        self.src_res: dict[str, float] = {a: caps[a] for a in lefts}
        self.sink_res: dict[str, float] = {b: caps[b] for b in rights}
        ordered = sorted(pairs)
        self.fwd: dict[tuple[str, str], float] = {p: math.inf for p in ordered}
        self.rev: dict[tuple[str, str], float] = {p: 0.0 for p in ordered}
        self.out_of: dict[str, list[str]] = {
            a: [b for (x, b) in ordered if x == a] for a in lefts
        }
        self.into: dict[str, list[str]] = {
            b: [a for (a, y) in ordered if y == b] for b in rights
        }
        self.total = 0
        self.seq = 0

    def clone(self) -> "_FlowState":
        """A mutation-safe copy (the stored state stays reusable)."""
        new = _FlowState.__new__(_FlowState)
        new.pairs = self.pairs
        new.caps = dict(self.caps)
        new.src_res = dict(self.src_res)
        new.sink_res = dict(self.sink_res)
        new.fwd = dict(self.fwd)
        new.rev = dict(self.rev)
        new.out_of = {a: list(bs) for a, bs in self.out_of.items()}
        new.into = {b: list(a_s) for b, a_s in self.into.items()}
        new.total = self.total
        new.seq = 0
        return new


def _augment(state: _FlowState) -> None:
    """Push BFS augmenting paths until ``state`` holds a *maximum* flow.

    Node model: egress copy of each left DC (cap from source), ingress copy
    of each right DC (cap to sink), infinite pair arcs. Capacities are small
    integers, so the number of augmentations is bounded by the total DC
    capacity and each BFS touches only a handful of nodes. Starting from a
    feasible (repaired) flow instead of the zero flow only shortens the
    loop — maximality, and hence the returned value, is unaffected.
    """
    src_res, sink_res = state.src_res, state.sink_res
    fwd, rev = state.fwd, state.rev
    out_of, into = state.out_of, state.into
    while True:
        # BFS from source through lefts with residual, to a right with
        # residual to sink; track parents to augment.
        parent_right: dict[str, str] = {}
        parent_left: dict[str, str | None] = {
            a: None for a, res in src_res.items() if res > 0
        }
        frontier = list(parent_left)
        target = None
        while frontier and target is None:
            next_frontier = []
            for a in frontier:
                for b in out_of[a]:
                    if b in parent_right or fwd[(a, b)] <= 0:
                        continue
                    parent_right[b] = a
                    if sink_res[b] > 0:
                        target = b
                        break
                    # Continue through reverse pair arcs (rarely needed
                    # with infinite forward arcs, kept for correctness).
                    for a2 in into[b]:
                        if a2 not in parent_left and rev[(a2, b)] > 0:
                            parent_left[a2] = b
                            next_frontier.append(a2)
                if target is not None:
                    break
            frontier = next_frontier
        if target is None:
            return

        # Walk back to find the bottleneck, then augment by it.
        path: list[tuple[str, str, bool]] = []  # (left, right, forward?)
        b = target
        bottleneck = sink_res[b]
        while True:
            a = parent_right[b]
            path.append((a, b, True))
            bottleneck = min(bottleneck, fwd[(a, b)])
            via = parent_left[a]
            if via is None:
                bottleneck = min(bottleneck, src_res[a])
                break
            path.append((a, via, False))
            bottleneck = min(bottleneck, rev[(a, via)])
            b = via
        bottleneck = int(bottleneck)
        first_left = path[-1][0]  # the left node fed from the source
        src_res[first_left] -= bottleneck
        sink_res[target] -= bottleneck
        for a, b, forward in path:
            if forward:
                fwd[(a, b)] -= bottleneck
                rev[(a, b)] += bottleneck
            else:
                fwd[(a, b)] += bottleneck
                rev[(a, b)] -= bottleneck
        state.total += bottleneck


def _solve_cold(
    pairs: frozenset[tuple[str, str]], caps: dict[str, int]
) -> _FlowState:
    """Solve one hose instance from scratch (zero flow, then augment)."""
    state = _FlowState(pairs, caps)
    _augment(state)
    return state


def _repair(
    base: _FlowState,
    pairs: frozenset[tuple[str, str]],
    caps: dict[str, int],
) -> _FlowState:
    """Repair a solved instance into one with a different pair set.

    Three steps, each preserving flow feasibility:

    1. cancel — for every pair arc the new instance lacks, return its flow
       to the source/sink residuals and drop the arc;
    2. splice — add the new instance's missing pair arcs (and any DC copies
       they introduce, capped per ``caps``);
    3. re-augment to maximality.

    The value of a maximum flow is unique, so the repaired total equals a
    cold solve's exactly. Callers must ensure shared DCs have the same
    capacity in ``base`` and ``caps`` (see :func:`_repair_source`).
    """
    state = base.clone()
    removed = sorted(state.pairs - pairs)
    added = sorted(pairs - state.pairs)

    for a, b in removed:
        flow = int(state.rev.pop((a, b)))
        del state.fwd[(a, b)]
        state.out_of[a].remove(b)
        state.into[b].remove(a)
        if flow:
            state.total -= flow
            state.src_res[a] += flow
            state.sink_res[b] += flow
        if not state.out_of[a]:
            del state.out_of[a]
            del state.src_res[a]
        if not state.into[b]:
            del state.into[b]
            del state.sink_res[b]

    for a, b in added:
        if a not in state.src_res:
            state.src_res[a] = caps[a]
            state.out_of[a] = []
        if b not in state.sink_res:
            state.sink_res[b] = caps[b]
            state.into[b] = []
        state.fwd[(a, b)] = math.inf
        state.rev[(a, b)] = 0.0
        state.out_of[a].append(b)
        state.into[b].append(a)

    state.pairs = pairs
    state.caps = dict(caps)
    _augment(state)
    return state


#: Default bound on memoized (pair-set, capacities) -> value entries.
_DEFAULT_MAXSIZE = 200_000
#: Default bound on retained residual networks (the incremental substrate).
_DEFAULT_STATE_MAXSIZE = 4_096
#: Environment fallbacks, read when the cache is (re)built; an explicit
#: :func:`configure_hose_cache` call wins over the environment.
MAXSIZE_ENV = "REPRO_HOSE_CACHE_MAXSIZE"
STATE_MAXSIZE_ENV = "REPRO_HOSE_STATE_MAXSIZE"
#: Stored residuals examined per requested pair when picking a repair
#: source (most recent first); bounds repair-candidate scanning.
_CANDIDATES_PER_PAIR = 8
#: Stored residuals remembered per pair in the index.
_INDEX_PER_PAIR = 32


def _env_size(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(0, value)


class _HoseCache:
    """Bounded per-process memo + residual store for the hose max-flow.

    A plain module-level ``lru_cache`` is *not* per-process-safe for the
    planner's worker pools: a forked worker inherits the parent's entries
    and counters, so cache statistics blur across processes and a
    long-lived sweep worker's cache grows without an owner to clear it.
    This cache pins the PID it was created in and resets itself on first
    use in any other process, giving every worker its own bounded cache
    and accurate per-process hit/miss counters (which the planner's
    :class:`~repro.core.engine.PlanTimings` aggregates).

    Beyond the value memo (``entries``), the cache retains the residual
    networks of up to ``state_maxsize`` solved instances (``states``) and
    an inverted index from each oriented pair to the instances containing
    it (``index``), so a value miss can usually be repaired from a
    neighbouring solved instance instead of solved cold.
    """

    __slots__ = (
        "entries", "states", "index", "hits", "misses",
        "cold_solves", "incremental_solves", "maxsize", "state_maxsize",
        "seq", "pid",
    )

    def __init__(self, maxsize: int, state_maxsize: int) -> None:
        self.entries: dict[tuple, int] = {}
        self.states: dict[tuple, _FlowState] = {}
        self.index: dict[tuple[str, str], dict[tuple, None]] = {}
        self.hits = 0
        self.misses = 0
        self.cold_solves = 0
        self.incremental_solves = 0
        self.maxsize = maxsize
        self.state_maxsize = state_maxsize
        self.seq = 0
        self.pid = os.getpid()

    def store_state(self, key: tuple, state: _FlowState) -> None:
        """Retain a solved residual for future repairs (FIFO-bounded)."""
        if self.state_maxsize <= 0:
            return
        if len(self.states) >= self.state_maxsize:
            old_key = next(iter(self.states))
            old = self.states.pop(old_key)
            for pair in sorted(old.pairs):
                bucket = self.index.get(pair)
                if bucket is not None:
                    bucket.pop(old_key, None)
                    if not bucket:
                        del self.index[pair]
        self.seq += 1
        state.seq = self.seq
        self.states[key] = state
        for pair in sorted(state.pairs):
            bucket = self.index.setdefault(pair, {})
            bucket[key] = None
            while len(bucket) > _INDEX_PER_PAIR:
                bucket.pop(next(iter(bucket)))

    def repair_source(
        self,
        pairs: frozenset[tuple[str, str]],
        cap_of: dict[str, int],
    ) -> _FlowState | None:
        """The best stored residual to repair the requested instance from.

        Candidates come from the per-pair index (most recent first, a few
        per pair); the winner maximizes shared pairs minus pairs to cancel
        and must agree with ``cap_of`` on every DC it shares with the
        request. Returns ``None`` when nothing overlaps — the cold path.
        Selection is deterministic: ties break toward the most recently
        stored state, and every structure scanned preserves insertion
        order.
        """
        best: _FlowState | None = None
        best_score: tuple[int, int] | None = None
        seen: set[tuple] = set()
        for pair in sorted(pairs):
            bucket = self.index.get(pair)
            if not bucket:
                continue
            recent = list(bucket)[-_CANDIDATES_PER_PAIR:]
            for key in recent:
                if key in seen:
                    continue
                seen.add(key)
                state = self.states.get(key)
                if state is None:
                    del bucket[key]  # evicted state, stale index entry
                    continue
                compatible = True
                for dc, cap in state.caps.items():
                    if dc in cap_of and cap_of[dc] != cap:
                        compatible = False
                        break
                if not compatible:
                    continue
                overlap = len(state.pairs & pairs)
                score = (2 * overlap - len(state.pairs), state.seq)
                if best_score is None or score > best_score:
                    best, best_score = state, score
        return best


def _default_cache() -> _HoseCache:
    return _HoseCache(
        _env_size(MAXSIZE_ENV, _DEFAULT_MAXSIZE),
        _env_size(STATE_MAXSIZE_ENV, _DEFAULT_STATE_MAXSIZE),
    )


_cache = _default_cache()


def _hose_cache() -> _HoseCache:
    global _cache
    if _cache.pid != os.getpid():
        _cache = _default_cache()
    return _cache


def configure_hose_cache(
    *, maxsize: int | None = None, state_maxsize: int | None = None
) -> None:
    """Rebuild the current process's hose cache with new bounds.

    ``maxsize``
        Value-memo entries retained (default 200k). ``None`` keeps the
        current bound.
    ``state_maxsize``
        Residual networks retained for incremental repair (default 4096).
        ``0`` disables incremental solving entirely — every miss solves
        cold — which is how the parity tests cross-check the repaired
        values.

    Explicit arguments win over the ``REPRO_HOSE_CACHE_MAXSIZE`` /
    ``REPRO_HOSE_STATE_MAXSIZE`` environment fallbacks, which are read
    whenever a fresh cache is built (process start, fork, or
    :func:`clear_hose_cache`). The cache is dropped and its counters
    reset, exactly as :func:`clear_hose_cache` does.
    """
    global _cache
    current = _hose_cache()
    _cache = _HoseCache(
        current.maxsize if maxsize is None else max(0, maxsize),
        current.state_maxsize if state_maxsize is None else max(0, state_maxsize),
    )


def clear_hose_cache() -> None:
    """Drop all cached hose max-flows and reset the hit/miss counters.

    Long-lived sweep processes call this between regions to bound memory;
    tests call it to measure cache behaviour from a clean slate. Bounds
    are re-read from the environment fallbacks (see
    :func:`configure_hose_cache`).
    """
    global _cache
    _cache = _default_cache()


def invalidate_hose_dcs(dcs: Iterable[str]) -> int:
    """Drop every cached hose instance that involves any DC in ``dcs``.

    Correctness never requires this: the memo keys every instance by its
    DC *capacities* as well as its pair set (see :func:`hose_capacity`),
    so a resized DC's lookups miss — rather than collide — by
    construction. What stale entries do cost is memory and repair-candidate
    quality in a long-lived process: once a DC detaches or resizes, its
    old-capacity instances can never be requested again, yet they occupy
    memo slots and keep surfacing as incompatible repair candidates. The
    planner service calls this when applying ``dc_detached``/``dc_resized``
    deltas. Returns the number of value entries dropped.
    """
    targets = {str(dc) for dc in dcs}
    if not targets:
        return 0
    cache = _hose_cache()
    dead_entries = [
        key
        for key in cache.entries
        if any(dc in targets for dc, _cap in key[1])
    ]
    for key in dead_entries:
        del cache.entries[key]
    dead_states = [
        key
        for key, state in cache.states.items()
        if any(dc in targets for dc in state.caps)
    ]
    for key in dead_states:
        state = cache.states.pop(key)
        for pair in sorted(state.pairs):
            bucket = cache.index.get(pair)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del cache.index[pair]
    return len(dead_entries)


def hose_cache_stats() -> HoseCacheStats:
    """Current-process cache counters (the engine's hit-rate hook)."""
    cache = _hose_cache()
    return HoseCacheStats(
        hits=cache.hits,
        misses=cache.misses,
        size=len(cache.entries),
        maxsize=cache.maxsize,
        cold_solves=cache.cold_solves,
        incremental_solves=cache.incremental_solves,
        states=len(cache.states),
        state_maxsize=cache.state_maxsize,
    )


def hose_capacity(
    oriented_pairs: Iterable[tuple[str, str]],
    dc_fibers: Mapping[str, int],
) -> int:
    """Worst-case hose load (in fibers) of a set of oriented DC pairs.

    ``oriented_pairs`` is the (left, right) list from
    :func:`oriented_pairs_through_edge`; ``dc_fibers`` the per-DC capacity.

    The planner calls this tens of thousands of times on tiny bipartite
    graphs, so the computation is memoized (per process, see
    :func:`hose_cache_stats`) and, on a memo miss, repaired incrementally
    from the nearest previously solved instance when one overlaps (see the
    module docstring); only instances with no solved neighbour pay a cold
    solve.
    """
    pairs = frozenset(oriented_pairs)
    if not pairs:
        return 0
    dcs = {dc for pair in pairs for dc in pair}
    caps = tuple(sorted((dc, dc_fibers[dc]) for dc in dcs))
    key = (tuple(sorted(pairs)), caps)
    cache = _hose_cache()
    value = cache.entries.get(key)
    if value is not None:
        cache.hits += 1
        if obs.enabled():
            _record_lookup(value, outcome="hit")
        return value
    cache.misses += 1
    cap_of = dict(caps)
    base = cache.repair_source(pairs, cap_of)
    if base is None:
        state = _solve_cold(pairs, cap_of)
        cache.cold_solves += 1
        outcome = "cold"
    else:
        state = _repair(base, pairs, cap_of)
        cache.incremental_solves += 1
        outcome = "incremental"
    value = state.total
    if len(cache.entries) >= cache.maxsize:
        # FIFO eviction: drop the oldest entry (dicts preserve insertion
        # order); the planner's access pattern is bursty per scenario, so
        # recency tracking buys nothing over this.
        cache.entries.pop(next(iter(cache.entries)))
    cache.entries[key] = value
    cache.store_state(key, state)
    if obs.enabled():
        _record_lookup(value, outcome=outcome)
    return value


def _record_lookup(value: int, outcome: str) -> None:
    """Trace one hose lookup (only called when tracing is enabled).

    ``hose.lookups`` and the ``hose.flow.fibers[...]`` distribution count
    every lookup, so their totals are invariant to chunking and worker
    count (each (edge, scenario) is looked up exactly once per plan); the
    hit/miss and cold/incremental splits depend on per-process cache
    warmth and are *not* expected to match across ``jobs=`` settings.
    """
    obs.incr("hose.lookups")
    if outcome == "hit":
        obs.incr("hose.cache_hit")
    else:
        obs.incr("hose.cache_miss")
        obs.incr(
            "hose.solve_cold" if outcome == "cold" else "hose.solve_incremental"
        )
    obs.incr(f"hose.flow.fibers[{obs.bucket_label(value)}]")


def _hose_max_flow(
    pairs: tuple[tuple[str, str], ...],
    caps: tuple[tuple[str, int], ...],
) -> int:
    """Max flow of the bipartite hose graph, solved from scratch.

    The uncached, non-incremental reference solver: the parity suite
    checks every incremental result against it, and it remains the
    canonical definition of the hose capacity.
    """
    return _solve_cold(frozenset(pairs), dict(caps)).total


def naive_sum_capacity(
    oriented_pairs: Iterable[tuple[str, str]],
    dc_fibers: Mapping[str, int],
) -> int:
    """The naive per-pair sum the paper warns against (for comparison only).

    Sums min(cap_a, cap_b) over pairs; over-counts DCs that appear in
    several pairs. Always >= :func:`hose_capacity`.
    """
    return sum(min(dc_fibers[a], dc_fibers[b]) for a, b in oriented_pairs)
