"""Residual fiber provisioning for fiber-granularity switching (§4.3).

Fiber switching rounds every DC pair's share up to whole fibers: a DC with
capacity ``z`` fibers splitting traffic across several destinations can need
up to one extra fiber per destination in the worst case. To support any
hose-compliant traffic matrix (OC2), Iris provisions one *residual*
fiber-pair per DC pair — n*(n-1) extra fibers region-wide — routed along the
pair's shortest path. No extra transceivers are needed: DC transceivers are
multiplexed onto whichever fibers carry live demand.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.plan import TopologyPlan
from repro.region.fibermap import Duct, RegionSpec, duct_key


def residual_fiber_pairs(
    region: RegionSpec, topology: TopologyPlan
) -> dict[Duct, int]:
    """Residual fiber-pairs per duct: +1 along each DC pair's base path.

    Residuals follow the no-failure shortest paths; under failures the
    displaced base capacity of rerouted pairs (provisioned by Algorithm 1's
    max over scenarios) subsumes the fractional remainder.
    """
    out: dict[Duct, int] = {}
    for pair, path in topology.base_paths.items():
        for u, v in zip(path, path[1:]):
            key = duct_key(u, v)
            out[key] = out.get(key, 0) + 1
    return out


def residual_pair_count(region: RegionSpec) -> int:
    """The paper's headline overhead: one residual fiber-pair per DC pair."""
    n = len(region.dcs)
    return n * (n - 1) // 2


def residual_span_total(residual: Mapping[Duct, int]) -> int:
    """Total residual (fiber-pair, span) leases."""
    return sum(residual.values())
