"""The end-to-end Iris planner: Algorithm 1 + Algorithm 2 + cut-throughs +
residual fibers, assembled into a validated :class:`~repro.core.plan.IrisPlan`.

Typical use::

    from repro.api import PlannerConfig, plan
    result = plan(region, config=PlannerConfig(jobs=4))
    inventory = result.inventory()

:func:`plan_region` remains as the historical loose-keyword entry point;
passing its keyword options directly now emits a :class:`DeprecationWarning`
pointing at :func:`repro.api.plan`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.core.amplifiers import place_amplifiers
from repro.core.cutthrough import place_cut_throughs
from repro.core.plan import IrisPlan, TopologyPlan
from repro.core.residual import residual_fiber_pairs
from repro.core.engine import CancelToken
from repro.core.topology import plan_topology
from repro.exceptions import PlanningError, ReproError
from repro.region.fibermap import RegionSpec

if TYPE_CHECKING:
    from repro.store import PlanStore


@dataclass
class IrisPlanner:
    """Planner for one region.

    ``prune_enumeration``
        Use the exact pruned failure enumeration (default). Brute force is
        exponentially slower and only useful for validating the pruning.
    ``validate``
        Check every scenario path against TC1-TC4/OC1 after planning and
        raise :class:`PlanningError` on any violation (default).
    ``jobs``
        Execution backend for Algorithm 1's scenario evaluation (see
        :mod:`repro.core.engine`): ``1`` (default) stays serial and never
        spawns a worker pool, ``N > 1`` uses ``N`` worker processes, ``0``
        uses every CPU. Plans are bit-identical across backends.
    ``backend``
        Backend name from :data:`repro.core.engine.BACKEND_NAMES`
        (``"serial"``, ``"process"``, ``"steal"``). ``None`` (default)
        picks serial for ``jobs=1`` and work-stealing otherwise.
    ``cancel_token``
        Optional :class:`repro.core.engine.CancelToken` checked at chunk
        boundaries during Algorithm 1's fan-out, so the planner service
        can cancel or time out a job mid-plan (it unwinds with
        :class:`~repro.exceptions.JobCancelled`).
    """

    region: RegionSpec
    prune_enumeration: bool = True
    validate: bool = True
    jobs: int | None = 1
    backend: str | None = None
    cancel_token: CancelToken | None = None

    def plan(self) -> IrisPlan:
        """Produce the full Iris plan for the region."""
        topology = self.plan_topology()
        return self.plan_from_topology(topology)

    def plan_topology(self) -> TopologyPlan:
        """Run only Algorithm 1 (shared with the EPS baseline)."""
        return plan_topology(
            self.region,
            prune_enumeration=self.prune_enumeration,
            jobs=self.jobs,
            backend=self.backend,
            cancel_token=self.cancel_token,
        )

    def plan_from_topology(self, topology: TopologyPlan) -> IrisPlan:
        """Complete the optical realization on a precomputed topology."""
        with obs.span("plan.amplifiers") as span:
            distance_amps, effective = place_amplifiers(self.region, topology)
            span.incr("amplifiers.distance_sites", len(distance_amps.site_counts))
        with obs.span("plan.cutthrough") as span:
            cut_throughs, effective, amplifiers = place_cut_throughs(
                self.region,
                effective,
                site_counts=distance_amps.site_counts,
                assignments=distance_amps.assignments,
            )
            span.incr("cutthrough.links", len(cut_throughs))
            span.incr("amplifiers.sites", len(amplifiers.site_counts))
        with obs.span("plan.residual") as span:
            residual = residual_fiber_pairs(self.region, topology)
            span.incr("residual.fiber_pairs", sum(residual.values()))
        plan = IrisPlan(
            region=self.region,
            topology=topology,
            amplifiers=amplifiers,
            cut_throughs=cut_throughs,
            residual=residual,
            effective_paths=effective,
        )
        if self.validate:
            with obs.span("plan.validate") as span:
                problems = plan.validate()
                span.incr("validate.paths", len(plan.effective_paths))
                span.incr("validate.violations", len(problems))
            if problems:
                raise PlanningError(
                    "planned network violates constraints: "
                    + " | ".join(problems[:5])
                    + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
                )
        return plan


# Sentinel distinguishing "caller never passed this keyword" from any real
# value, so the deprecation shim below only warns about explicit usage.
_UNSET: Any = object()


def plan_region(
    region: RegionSpec,
    *,
    prune_enumeration: bool | Any = _UNSET,
    validate: bool | Any = _UNSET,
    jobs: "int | None | Any" = _UNSET,
    store: "PlanStore | None | Any" = _UNSET,
) -> IrisPlan:
    """Plan ``region`` end to end (the historical one-call entry point).

    .. deprecated::
        Passing the loose keyword options (``prune_enumeration``,
        ``validate``, ``jobs``, ``store``) directly is deprecated in
        favor of :func:`repro.api.plan` with a single
        :class:`repro.api.PlannerConfig`; doing so emits a
        :class:`DeprecationWarning` but behaves identically. A bare
        ``plan_region(region)`` stays warning-free.
    """
    explicit = {
        name: value
        for name, value in (
            ("prune_enumeration", prune_enumeration),
            ("validate", validate),
            ("jobs", jobs),
            ("store", store),
        )
        if value is not _UNSET
    }
    if explicit:
        warnings.warn(
            "plan_region's loose keyword options ("
            + ", ".join(sorted(explicit))
            + ") are deprecated; use repro.api.plan(region, "
            "config=PlannerConfig(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return _plan_region(region, **explicit)


def _plan_region(
    region: RegionSpec,
    *,
    prune_enumeration: bool = True,
    validate: bool = True,
    jobs: int | None = 1,
    backend: str | None = None,
    store: "PlanStore | None" = None,
    cancel_token: CancelToken | None = None,
) -> IrisPlan:
    """Plan ``region`` end to end (the non-deprecated internal entry point).

    :func:`repro.api.plan` is the public face of this function; the
    parameters mirror :class:`IrisPlanner`'s fields — see there for
    semantics.

    ``store``
        An optional :class:`repro.store.PlanStore`. Plans are pure
        functions of (region, config), so on a hit the cached plan is
        loaded instead of replanned — bit-identical to a fresh one
        (``plan_to_json`` equality, parity-tested) — and on a miss the
        fresh plan is checkpointed for next time. ``jobs`` and
        ``backend`` are execution details and deliberately not part of
        the cache key.
    """
    planner = IrisPlanner(
        region,
        prune_enumeration=prune_enumeration,
        validate=validate,
        jobs=jobs,
        backend=backend,
        cancel_token=cancel_token,
    )
    if store is None:
        return planner.plan()

    from repro.serialize import plan_from_dict, plan_to_dict
    from repro.store import plan_key

    key = plan_key(
        design="iris",
        region=region,
        config={"prune_enumeration": prune_enumeration, "validate": validate},
    )
    cached = store.get(key)
    if cached is not None:
        try:
            return plan_from_dict(cached)
        except ReproError:
            # Decodable-but-stale payload (schema drift inside one store
            # schema version): treat as a miss and heal it below.
            pass
    plan = planner.plan()
    store.put(key, plan_to_dict(plan, full=True), kind="plan")
    return plan
