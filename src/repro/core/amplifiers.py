"""Algorithm 2: greedy in-line amplifier placement (§4.3, Appendix A).

Paths whose single unamplified run cannot be closed need an in-line
amplifier (at most one per path, TC2). For every failure scenario we collect
such paths, score each candidate amplification site by how many constraints
it resolves per amplifier that must be newly installed there, place
amplifiers at the best site, and iterate.

Scoring follows Appendix A: ``score = (nop + nhop) / ntbp`` where ``nop``
counts distance-driven paths resolved, ``nhop`` counts paths whose
switching-loss (hop) violation the amplifier also fixes, and ``ntbp`` is the
number of amplifiers to be placed (a site's amplifier count is the hose
max-flow of the fibers amplified there, like the §4.1 capacity computation;
amplifiers already installed for other scenarios are reused for free).
"""

from __future__ import annotations

from collections import defaultdict
from repro.core.failures import Scenario
from repro.core.hose import hose_capacity
from repro.core.plan import AmplifierPlan, EffectivePath, Pair, TopologyPlan
from repro.optics.constraints import amp_fix_candidates
from repro.region.fibermap import RegionSpec


def _needs_amp_for_distance(path: EffectivePath, max_span_km: float) -> bool:
    """True when the path's fiber alone exceeds single-run reach (TC1)."""
    return path.total_km > max_span_km + 1e-9


def _run_violations(path: EffectivePath) -> bool:
    """True when some unamplified run's loss budget does not close."""
    return any(not run.fits() for run in path.profile().runs())


def _site_demand(
    pairs: list[Pair], region: RegionSpec
) -> int:
    """Amplifiers needed to serve ``pairs`` at one site in one scenario.

    Each amplifier serves one fiber; the worst-case concurrent fiber count
    across the site is the hose max-flow of the pairs, as in §4.1. The
    orientation is (a, b) per canonical pair; with symmetric capacities the
    value matches the mirrored orientation.
    """
    return hose_capacity(pairs, region.dc_fibers)


def place_amplifiers(
    region: RegionSpec,
    topology: TopologyPlan,
) -> tuple[AmplifierPlan, dict[tuple[Scenario, Pair], EffectivePath]]:
    """Place in-line amplifiers for every scenario path that needs one.

    Returns the :class:`AmplifierPlan` and the per-(scenario, pair)
    :class:`EffectivePath` map with ``amp_node`` set where assigned; paths
    that still violate run budgets afterwards (pure switching-loss cases)
    are left for cut-through placement.
    """
    max_span = region.constraints.max_span_km
    site_counts: dict[str, int] = defaultdict(int)
    assignments: dict[tuple[Scenario, Pair], str] = {}
    effective: dict[tuple[Scenario, Pair], EffectivePath] = {}

    for scenario in topology.scenarios:
        paths = topology.scenario_paths[scenario]
        current: dict[Pair, EffectivePath] = {
            pair: EffectivePath.from_path(region.fiber_map, path)
            for pair, path in paths.items()
        }

        pending = {
            pair
            for pair, path in current.items()
            if _needs_amp_for_distance(path, max_span)
        }
        # Paths violating run budgets through switching loss alone: an
        # amplifier *may* fix them (the nhop bonus); cut-throughs otherwise.
        hop_constrained = {
            pair
            for pair, path in current.items()
            if pair not in pending and _run_violations(path)
        }
        # Amplifiers placed at a site in *this* scenario, by pair served.
        scenario_sites: dict[str, list[Pair]] = defaultdict(list)

        while pending:
            candidates: dict[str, set[Pair]] = defaultdict(set)
            hop_bonus: dict[str, set[Pair]] = defaultdict(set)
            for pair in sorted(pending):
                path = current[pair]
                for span_index in amp_fix_candidates(path.profile()):
                    candidates[path.nodes[span_index + 1]].add(pair)
            for pair in sorted(hop_constrained):
                path = current[pair]
                for span_index in amp_fix_candidates(path.profile()):
                    hop_bonus[path.nodes[span_index + 1]].add(pair)

            if not candidates:
                # No single amplifier closes the remaining paths' budgets
                # (heavily switched long paths): leave them for the combined
                # amplifier + cut-through stage (Appendix A), which resolves
                # them with partial steps.
                break

            def score(site: str) -> tuple[float, int, str]:
                resolved = candidates[site]
                bonus = hop_bonus.get(site, set())
                served = scenario_sites[site] + sorted(resolved | bonus)
                needed = _site_demand(served, region)
                to_place = max(0, needed - site_counts[site])
                raw = (
                    float("inf")
                    if to_place == 0
                    else (len(resolved) + len(bonus)) / to_place
                )
                # Deterministic tie-break: more paths resolved, then name.
                return (raw, len(resolved) + len(bonus), site)

            best_site = max(candidates, key=score)
            resolved = candidates[best_site]
            bonus = hop_bonus.get(best_site, set())
            for pair in sorted(resolved | bonus):
                current[pair] = current[pair].with_amp(best_site)
                assignments[(scenario, pair)] = best_site
                scenario_sites[best_site].append(pair)
            needed_here = _site_demand(scenario_sites[best_site], region)
            site_counts[best_site] = max(site_counts[best_site], needed_here)
            pending -= resolved
            hop_constrained -= bonus

        for pair, path in current.items():
            effective[(scenario, pair)] = path

    plan = AmplifierPlan(
        site_counts={k: v for k, v in sorted(site_counts.items()) if v > 0},
        assignments=dict(assignments),
    )
    return plan, effective
