"""Scenario-parallel execution backends for the planner (the ``jobs=`` knob).

Algorithm 1's hot path — evaluating shortest paths and hose max-flows for
every pruned failure scenario — is embarrassingly parallel at the scenario
level: each scenario's Dijkstra run and each scenario's per-duct hose
max-flows depend only on the fiber map and that scenario. This module
provides the pluggable execution layer the planner (and the design-space
sweep) fan out over:

* :class:`SerialBackend` — evaluate chunks inline, in order, in-process.
  This is the default and is guaranteed never to spawn a worker pool.
* :class:`ProcessBackend` — evaluate chunks in ``jobs`` worker processes
  via :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism contract: a backend runs ``fn(shared, chunk)`` over a list of
chunks and returns the per-chunk results *in submission order* —
:meth:`~SerialBackend.run_chunks` as one list, or streamed result by
result via :meth:`~SerialBackend.iter_chunks` so callers can checkpoint
completed chunks as they land (how sweep resume persists cells). Callers
partition work with :func:`partition` (contiguous, order-preserving) and
merge with order-independent operations (per-duct maxima), so parallel
plans are bit-identical to serial ones.

Observability: when global tracing is on (:func:`repro.obs.enabled`), each
chunk runs under a fresh :func:`repro.obs.capture` — in the worker process
for :class:`ProcessBackend` — and its finished, picklable span record is
grafted back into the parent trace in submission order. Counters merge by
summation, so metric totals are identical whichever backend ran the work.
With tracing off, the untraced fast path runs exactly the pre-existing
code, so plan outputs are bit-identical with and without instrumentation.

:class:`PlanTimings` is the instrumentation record attached to every
:class:`~repro.core.plan.TopologyPlan`: a *view* over the planner's span
tree (per-phase wall time, scenarios evaluated, hose-cache hit rate), so
benchmarks and the CLI can report where planning time goes.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro import obs
from repro.exceptions import ReproError
from repro.obs import SpanRecord

T = TypeVar("T")

#: Chunks submitted per worker per fan-out: small enough to amortize the
#: per-chunk pickling of the shared payload, large enough to balance load
#: when per-scenario costs vary.
CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument to a worker count.

    ``None`` and ``1`` mean serial execution; ``0`` means one worker per
    available CPU; any other positive integer is taken literally.
    """
    if jobs is None:
        return 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ReproError(f"jobs must be an int or None, got {jobs!r}")
    if jobs < 0:
        raise ReproError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def partition(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous balanced chunks.

    Order is preserved: concatenating the chunks reproduces ``items``.
    Empty chunks are never returned.
    """
    if n_chunks < 1:
        raise ReproError(f"need at least one chunk, got {n_chunks}")
    items = list(items)
    n = len(items)
    n_chunks = min(n_chunks, n) or 1
    base, extra = divmod(n, n_chunks)
    out: list[list[T]] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        if size:
            out.append(items[start : start + size])
            start += size
    return out


def _traced_chunk(
    fn: Callable[[Any, list[T]], Any], shared: Any, chunk: list[T]
) -> tuple[Any, SpanRecord]:
    """Run one chunk under a fresh capture (module-level: pool-picklable).

    The chunk executes with the capture installed as the active tracer, so
    facade-instrumented code (per-scenario counters, hose lookups) records
    into the shard. Returns (result, finished span record); the record
    crosses the process boundary by pickle and is grafted into the parent
    trace, preserving submission order.
    """
    label = f"engine.chunk:{fn.__name__.lstrip('_').removesuffix('_chunk')}"
    with obs.capture(label) as tracer:
        tracer.incr("chunk.items", len(chunk))
        result = fn(shared, chunk)
    return result, tracer.record()


class SerialBackend:
    """Inline execution: chunks run in the calling process, in order.

    Never touches :mod:`concurrent.futures`, so module-level caches (the
    hose cache in particular) stay warm across the whole plan.
    """

    name = "serial"
    jobs = 1

    def iter_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> Iterator[Any]:
        """Yield ``fn(shared, chunk)`` per chunk, in order, as computed.

        The streaming form exists so callers can checkpoint each chunk's
        result the moment it lands (sweep resume) instead of waiting for
        the whole fan-out.
        """
        if not obs.enabled():
            for chunk in chunks:
                yield fn(shared, chunk)
            return
        for chunk in chunks:
            result, record = _traced_chunk(fn, shared, chunk)
            obs.attach(record)
            yield result

    def run_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> list[Any]:
        """Apply ``fn(shared, chunk)`` to every chunk, in order."""
        return list(self.iter_chunks(fn, shared, chunks))

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessBackend:
    """Worker-pool execution over ``jobs`` processes.

    The pool is created lazily on the first fan-out and reused across
    calls (the planner fans out once per enumeration level plus once for
    the capacity phase), then shut down by :meth:`close`. ``fn`` and the
    chunk items must be picklable module-level objects; exceptions raised
    in workers propagate to the caller.
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ReproError(
                f"a process backend needs at least 2 workers, got {jobs}"
            )
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def iter_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> Iterator[Any]:
        """Yield per-chunk results in submission order as workers finish.

        Every chunk is submitted up front so the pool stays saturated;
        results stream back in submission order (a slow early chunk delays
        later yields but not later *work*). Callers that checkpoint per
        yielded result therefore persist completed work long before the
        full fan-out drains — the property sweep resume relies on.
        """
        chunks = list(chunks)
        if not chunks:
            return
        traced = obs.enabled()
        # A single chunk gains nothing from the pool round-trip.
        if len(chunks) == 1:
            if not traced:
                yield fn(shared, chunks[0])
                return
            result, record = _traced_chunk(fn, shared, chunks[0])
            obs.attach(record)
            yield result
            return
        pool = self._pool()
        if not traced:
            futures: list[Future] = [
                pool.submit(fn, shared, chunk) for chunk in chunks
            ]
            for future in futures:
                yield future.result()
            return
        traced_futures: list[Future] = [
            pool.submit(_traced_chunk, fn, shared, chunk) for chunk in chunks
        ]
        for future in traced_futures:
            result, record = future.result()
            obs.attach(record)
            yield result

    def run_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> list[Any]:
        """Apply ``fn(shared, chunk)`` across the pool; results in order."""
        return list(self.iter_chunks(fn, shared, chunks))

    def close(self) -> None:
        """Shut down the pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Either execution backend (a Protocol would be overkill for two classes).
ExecutionBackend = SerialBackend | ProcessBackend


def get_backend(jobs: int | None = 1) -> ExecutionBackend:
    """The execution backend for a ``jobs=`` argument.

    ``jobs in (None, 1)`` yields the :class:`SerialBackend` — guaranteed
    pool-free — anything else a :class:`ProcessBackend` with
    :func:`resolve_jobs` workers (which may still resolve to serial on a
    single-core machine when ``jobs=0``).
    """
    n = resolve_jobs(jobs)
    if n == 1:
        return SerialBackend()
    return ProcessBackend(n)


def map_in_chunks(
    backend: ExecutionBackend,
    fn: Callable[[Any, list[T]], list[Any]],
    shared: Any,
    items: Sequence[T],
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> list[Any]:
    """Fan ``items`` out in chunks and return the flattened results.

    ``fn(shared, chunk)`` must return one result per chunk item, in chunk
    order; the flattened output then aligns 1:1 with ``items``.
    """
    items = list(items)
    if not items:
        return []
    n_chunks = max(1, backend.jobs * chunks_per_worker)
    chunks = partition(items, n_chunks)
    out: list[Any] = []
    for chunk, results in zip(chunks, backend.run_chunks(fn, shared, chunks)):
        if len(results) != len(chunk):
            raise ReproError(
                f"chunk worker returned {len(results)} results for "
                f"{len(chunk)} items"
            )
        out.extend(results)
    return out


@dataclass(frozen=True)
class PlanTimings:
    """Where Algorithm 1's wall time went (attached to every topology plan).

    Since the :mod:`repro.obs` layer landed, the planner records its phases
    as spans and this record is a *view* over the resulting span tree
    (built by :meth:`from_record`); the public fields are unchanged.

    ``enumerate_s`` / ``capacity_s``
        Wall time of the scenario-path enumeration (per-scenario Dijkstra)
        and the per-duct hose max-flow phases.
    ``total_s``
        End-to-end wall time of :func:`~repro.core.topology.plan_topology`
        (includes the duct pre-pruning, so it slightly exceeds the sum of
        the two phases).
    ``scenarios_evaluated``
        Scenarios actually evaluated (after pruning).
    ``hose_cache_hits`` / ``hose_cache_misses``
        Hose max-flow cache traffic during the capacity phase, summed over
        all worker processes.
    ``backend`` / ``jobs``
        Which execution backend ran the plan, with how many workers.
    """

    enumerate_s: float
    capacity_s: float
    total_s: float
    scenarios_evaluated: int
    hose_cache_hits: int
    hose_cache_misses: int
    backend: str = "serial"
    jobs: int = 1

    @classmethod
    def from_record(
        cls, record: SpanRecord, backend: str = "serial", jobs: int = 1
    ) -> "PlanTimings":
        """Build the timing view from a ``plan.topology`` span record.

        Phase wall times come from the ``plan.enumerate`` / ``plan.capacity``
        child spans; the authoritative counts come from the counters the
        planner sets on the record (``scenarios.evaluated``,
        ``hose.cache_hits``, ``hose.cache_misses``).
        """
        enum = record.child("plan.enumerate")
        capacity = record.child("plan.capacity")
        counters = record.counters
        return cls(
            enumerate_s=enum.duration_s if enum else 0.0,
            capacity_s=capacity.duration_s if capacity else 0.0,
            total_s=record.duration_s,
            scenarios_evaluated=int(counters.get("scenarios.evaluated", 0)),
            hose_cache_hits=int(counters.get("hose.cache_hits", 0)),
            hose_cache_misses=int(counters.get("hose.cache_misses", 0)),
            backend=backend,
            jobs=jobs,
        )

    @property
    def hose_cache_hit_rate(self) -> float:
        """Fraction of hose max-flow lookups served from cache."""
        lookups = self.hose_cache_hits + self.hose_cache_misses
        if lookups == 0:
            return 0.0
        return self.hose_cache_hits / lookups

    def summary(self) -> str:
        """A one-line human-readable breakdown (used by the CLI)."""
        return (
            f"{self.total_s:.2f} s total "
            f"(paths {self.enumerate_s:.2f} s, capacity {self.capacity_s:.2f} s), "
            f"{self.scenarios_evaluated} scenarios, "
            f"hose cache hit rate {self.hose_cache_hit_rate:.0%}, "
            f"backend {self.backend} x{self.jobs}"
        )
