"""Scenario-parallel execution backends for the planner (the ``jobs=`` knob).

Algorithm 1's hot path — evaluating shortest paths and hose max-flows for
every pruned failure scenario — is embarrassingly parallel at the scenario
level: each scenario's Dijkstra run and each scenario's per-duct hose
max-flows depend only on the fiber map and that scenario. This module
provides the pluggable execution layer the planner (and the design-space
sweep) fan out over. Backends implement the :class:`ExecutionBackend`
protocol; three ship here, selectable via ``get_backend(jobs, backend=)``:

* :class:`SerialBackend` (``"serial"``) — evaluate chunks inline, in
  order, in-process; guaranteed never to spawn a worker pool.
* :class:`ProcessBackend` (``"process"``) — evaluate statically
  partitioned chunks in ``jobs`` worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor`.
* :class:`WorkStealingBackend` (``"steal"``, the default for ``jobs > 1``)
  — the same pool fed a deterministic *fine-grained* chunk queue
  (:func:`guided_partition`): many decreasing-size chunks that idle
  workers drain dynamically, so an expensive scenario no longer strands
  its statically assigned neighbours behind it.

Determinism contract (see :class:`ExecutionBackend`): a backend runs
``fn(shared, chunk)`` over a list of chunks and returns the per-chunk
results *in submission order* — :meth:`~SerialBackend.run_chunks` as one
list, or streamed result by result via
:meth:`~SerialBackend.iter_chunks` so callers can checkpoint completed
chunks as they land (how sweep resume persists cells). Chunking is the
backend's own :meth:`~SerialBackend.plan_chunks` (always contiguous and
order-preserving); callers merge with order-independent operations
(per-duct maxima), so which worker ran which chunk — and in what order
chunks *finished* — cannot change the output: parallel plans are
bit-identical to serial ones, work-stealing included.

Observability: when global tracing is on (:func:`repro.obs.enabled`), each
chunk runs under a fresh :func:`repro.obs.capture` — in the worker process
for :class:`ProcessBackend` — and its finished, picklable span record is
grafted back into the parent trace in submission order. Counters merge by
summation, so metric totals are identical whichever backend ran the work.
With tracing off, the untraced fast path runs exactly the pre-existing
code, so plan outputs are bit-identical with and without instrumentation.

:class:`PlanTimings` is the instrumentation record attached to every
:class:`~repro.core.plan.TopologyPlan`: a *view* over the planner's span
tree (per-phase wall time, scenarios evaluated, hose-cache hit rate), so
benchmarks and the CLI can report where planning time goes.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

from repro import obs
from repro.exceptions import JobCancelled, ReproError
from repro.obs import SpanRecord

T = TypeVar("T")

#: Chunks submitted per worker per fan-out under *static* partitioning:
#: small enough to amortize the per-chunk pickling of the shared payload,
#: large enough to balance load when per-scenario costs vary.
CHUNKS_PER_WORKER = 4

#: Backend names accepted by :func:`get_backend` (and the ``--backend``
#: CLI flag). ``"steal"`` is the work-stealing pool.
BACKEND_NAMES = ("serial", "process", "steal")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution-backend contract every backend implements.

    A backend is a chunk runner with four obligations; anything honouring
    them slots into the planner, the sweep, and ``map_in_chunks`` without
    touching call sites:

    ``plan_chunks(items)``
        Split a work list into the chunk granularity this backend wants
        fed to it. Must be *contiguous and order-preserving*:
        concatenating the returned chunks reproduces ``items`` exactly,
        with no empty chunks. Granularity is free (static halves, guided
        decreasing sizes, one item per chunk); ordering is not.
    ``iter_chunks(fn, shared, chunks)``
        Run ``fn(shared, chunk)`` for every chunk and yield the per-chunk
        results **in submission order**, streaming each result as soon as
        it (and all earlier ones) finished. Completion order is the
        backend's business; yield order is the contract — it is what lets
        callers checkpoint per-chunk results deterministically (sweep
        resume).
    ``run_chunks(fn, shared, chunks)``
        The gathered form of ``iter_chunks``. Callers combine the
        returned per-chunk results with **associative, order-insensitive
        merges only** (per-duct maxima, counter sums, list-concatenation
        of order-preserving chunks), so any compliant chunking produces
        byte-identical outputs.
    ``close()`` / context manager
        Backends own worker pools; ``with get_backend(...) as backend:``
        bounds the pool's lifetime. ``close()`` must be idempotent, and
        ``__exit__`` must call it.

    The ``name`` and ``jobs`` attributes identify the backend in
    :class:`PlanTimings` and benchmark rows.

    Callables submitted to a backend must be module-level (process pools
    pickle them into spawned workers) and deterministic-per-chunk; mark
    them :func:`worker_safe` and reprolint's R012-R014 verify both
    properties statically against the project call graph.
    """

    name: str
    jobs: int

    def plan_chunks(self, items: Sequence[T]) -> list[list[T]]: ...

    def iter_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> Iterator[Any]: ...

    def run_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> list[Any]: ...

    def close(self) -> None: ...

    def __enter__(self) -> "ExecutionBackend": ...

    def __exit__(self, *exc: object) -> None: ...


def worker_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark ``fn`` as safe to submit to pool workers — and let lint hold it.

    The decorator is a *verified claim*, not a mechanism: it changes
    nothing at runtime (the function is returned as-is, so it stays
    picklable), but reprolint's pool-safety rules check the claim
    against the interprocedural effect closure. A ``@worker_safe``
    function that transitively mutates global RNG state, reads the wall
    clock, rebinds module state (R013), performs filesystem I/O, or
    iterates an unordered collection (R014) is flagged at its
    definition — the authoritative spot — instead of at every submit
    site. Chunk functions handed to :meth:`ExecutionBackend.run_chunks`
    / :meth:`~ExecutionBackend.iter_chunks` / :func:`map_in_chunks`
    should carry it.
    """
    fn.__worker_safe__ = True
    return fn


class CancelToken:
    """Cooperative cancellation for a backend fan-out (and per-job timeouts).

    The planner service hands each job a token; backends call
    :meth:`checkpoint` between chunks (and while awaiting pool futures),
    so a cancelled or timed-out job unwinds with :class:`JobCancelled` at
    the next chunk boundary instead of running the plan to completion.
    Thread-safe: any thread may :meth:`cancel` while a worker thread plans.

    ``timeout_s`` arms a monotonic deadline at construction; the token
    then cancels *itself* the first time a checkpoint runs past the
    deadline. Wall-clock reads stay inside this class (sanctioned
    ``time.monotonic``), keeping chunk functions themselves clock-free.
    """

    __slots__ = ("_event", "_deadline", "reason")

    def __init__(self, timeout_s: float | None = None) -> None:
        self._event = threading.Event()
        self._deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        self.reason: str = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; idempotent, safe from any thread."""
        if not self._event.is_set():
            self.reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested (or the deadline hit)."""
        if self._event.is_set():
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.cancel("timeout")
            return True
        return False

    def checkpoint(self) -> None:
        """Raise :class:`JobCancelled` if cancellation was requested."""
        if self.cancelled:
            raise JobCancelled(f"job cancelled: {self.reason or 'cancelled'}")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument to a worker count.

    ``None`` and ``1`` mean serial execution; ``0`` means one worker per
    available CPU; any other positive integer is taken literally.
    """
    if jobs is None:
        return 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ReproError(f"jobs must be an int or None, got {jobs!r}")
    if jobs < 0:
        raise ReproError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def partition(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous balanced chunks.

    Order is preserved: concatenating the chunks reproduces ``items``.
    Empty chunks are never returned.
    """
    if n_chunks < 1:
        raise ReproError(f"need at least one chunk, got {n_chunks}")
    items = list(items)
    n = len(items)
    n_chunks = min(n_chunks, n) or 1
    base, extra = divmod(n, n_chunks)
    out: list[list[T]] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        if size:
            out.append(items[start : start + size])
            start += size
    return out


def guided_partition(
    items: Sequence[T],
    workers: int,
    *,
    factor: int = 2,
    min_chunk: int = 1,
) -> list[list[T]]:
    """Split ``items`` into contiguous chunks of *decreasing* size.

    Guided self-scheduling: each chunk takes ``ceil(remaining /
    (factor * workers))`` items (never fewer than ``min_chunk``), so the
    queue starts with chunks big enough to amortize dispatch and ends
    with fine-grained ones that level out whatever imbalance the early
    chunks left. The split depends only on ``len(items)`` and the
    parameters — it is deterministic, order-preserving (concatenating the
    chunks reproduces ``items``), and never returns an empty chunk, so a
    pool draining it dynamically still satisfies the
    :class:`ExecutionBackend` contract.
    """
    if workers < 1:
        raise ReproError(f"need at least one worker, got {workers}")
    if factor < 1 or min_chunk < 1:
        raise ReproError(
            f"factor and min_chunk must be positive, got {factor}, {min_chunk}"
        )
    items = list(items)
    n = len(items)
    out: list[list[T]] = []
    start = 0
    while start < n:
        remaining = n - start
        size = max(min_chunk, -(-remaining // (factor * workers)))
        size = min(size, remaining)
        out.append(items[start : start + size])
        start += size
    return out


def _traced_chunk(
    fn: Callable[[Any, list[T]], Any], shared: Any, chunk: list[T]
) -> tuple[Any, SpanRecord]:
    """Run one chunk under a fresh capture (module-level: pool-picklable).

    The chunk executes with the capture installed as the active tracer, so
    facade-instrumented code (per-scenario counters, hose lookups) records
    into the shard. Returns (result, finished span record); the record
    crosses the process boundary by pickle and is grafted into the parent
    trace, preserving submission order.
    """
    label = f"engine.chunk:{fn.__name__.lstrip('_').removesuffix('_chunk')}"
    with obs.capture(label) as tracer:
        tracer.incr("chunk.items", len(chunk))
        result = fn(shared, chunk)
    return result, tracer.record()


class SerialBackend:
    """Inline execution: chunks run in the calling process, in order.

    Never touches :mod:`concurrent.futures`, so module-level caches (the
    hose cache in particular) stay warm across the whole plan.
    """

    name = "serial"
    jobs = 1

    def __init__(self, cancel_token: CancelToken | None = None) -> None:
        self.cancel_token = cancel_token

    def plan_chunks(self, items: Sequence[T]) -> list[list[T]]:
        """Static contiguous chunks (a handful, purely for trace shape).

        Serial execution gains nothing from granularity, but chunked
        traces keep the span taxonomy identical across backends.
        """
        return partition(items, CHUNKS_PER_WORKER)

    def iter_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> Iterator[Any]:
        """Yield ``fn(shared, chunk)`` per chunk, in order, as computed.

        The streaming form exists so callers can checkpoint each chunk's
        result the moment it lands (sweep resume) instead of waiting for
        the whole fan-out.
        """
        token = self.cancel_token
        if not obs.enabled():
            for chunk in chunks:
                if token is not None:
                    token.checkpoint()
                yield fn(shared, chunk)
            return
        for chunk in chunks:
            if token is not None:
                token.checkpoint()
            result, record = _traced_chunk(fn, shared, chunk)
            obs.attach(record)
            yield result

    def run_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> list[Any]:
        """Apply ``fn(shared, chunk)`` to every chunk, in order."""
        return list(self.iter_chunks(fn, shared, chunks))

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessBackend:
    """Worker-pool execution over ``jobs`` processes.

    The pool is created lazily on the first fan-out and reused across
    calls (the planner fans out once per enumeration level plus once for
    the capacity phase), then shut down by :meth:`close`. ``fn`` and the
    chunk items must be picklable module-level objects; exceptions raised
    in workers propagate to the caller.

    Interrupts never orphan workers: a ``KeyboardInterrupt``/``SystemExit``
    reaching a fan-out (Ctrl-C, SIGTERM via a raising handler) — or a
    :class:`JobCancelled` from the backend's :class:`CancelToken` — tears
    the pool down via :meth:`terminate` (terminate + join every worker
    process) before propagating, instead of leaving ``shutdown(wait=True)``
    blocked behind in-flight chunks.
    """

    name = "process"

    def __init__(
        self, jobs: int, cancel_token: CancelToken | None = None
    ) -> None:
        if jobs < 2:
            raise ReproError(
                f"a process backend needs at least 2 workers, got {jobs}"
            )
        self.jobs = jobs
        self.cancel_token = cancel_token
        self._executor: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def _await(self, future: Future) -> Any:
        """Block on ``future``, polling the cancel token between waits."""
        token = self.cancel_token
        if token is None:
            return future.result()
        while True:
            token.checkpoint()
            try:
                return future.result(timeout=0.05)
            except TimeoutError:
                continue

    def plan_chunks(self, items: Sequence[T]) -> list[list[T]]:
        """Static balanced chunks, a few per worker."""
        return partition(items, self.jobs * CHUNKS_PER_WORKER)

    def iter_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> Iterator[Any]:
        """Yield per-chunk results in submission order as workers finish.

        Every chunk is submitted up front so the pool stays saturated;
        results stream back in submission order (a slow early chunk delays
        later yields but not later *work*). Callers that checkpoint per
        yielded result therefore persist completed work long before the
        full fan-out drains — the property sweep resume relies on.
        """
        chunks = list(chunks)
        if not chunks:
            return
        traced = obs.enabled()
        token = self.cancel_token
        # A single chunk gains nothing from the pool round-trip.
        if len(chunks) == 1:
            if token is not None:
                token.checkpoint()
            if not traced:
                yield fn(shared, chunks[0])
                return
            result, record = _traced_chunk(fn, shared, chunks[0])
            obs.attach(record)
            yield result
            return
        try:
            pool = self._pool()
            if not traced:
                futures: list[Future] = [
                    pool.submit(fn, shared, chunk) for chunk in chunks
                ]
                for future in futures:
                    yield self._await(future)
                return
            traced_futures: list[Future] = [
                pool.submit(_traced_chunk, fn, shared, chunk)
                for chunk in chunks
            ]
            for future in traced_futures:
                result, record = self._await(future)
                obs.attach(record)
                yield result
        except (KeyboardInterrupt, SystemExit, JobCancelled):
            self.terminate()
            raise

    def run_chunks(
        self,
        fn: Callable[[Any, list[T]], Any],
        shared: Any,
        chunks: Sequence[list[T]],
    ) -> list[Any]:
        """Apply ``fn(shared, chunk)`` across the pool; results in order."""
        return list(self.iter_chunks(fn, shared, chunks))

    def close(self) -> None:
        """Shut down the pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def terminate(self) -> None:
        """Tear the pool down hard: cancel queued work, kill workers, join.

        The interrupt counterpart to :meth:`close` — ``shutdown(wait=True)``
        would block behind whatever chunk each worker is mid-way through
        (and on Ctrl-C the workers saw the SIGINT too, in an arbitrary
        state), so instead cancel everything still queued, SIGTERM each
        worker process, and join them so none is left orphaned. Idempotent;
        the backend is reusable afterwards (a fresh pool spawns lazily).
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            proc.terminate()
        for proc in processes:
            proc.join(timeout=5.0)

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class WorkStealingBackend(ProcessBackend):
    """The process pool fed a deterministic fine-grained chunk queue.

    Static partitioning assigns every chunk to a submission slot up
    front, so one expensive scenario (a dense failure set whose Dijkstra
    and hose solves dwarf its neighbours') leaves ``jobs - 1`` workers
    idle while its chunk finishes. This backend instead enqueues many
    small chunks of *decreasing* size (:func:`guided_partition`) into the
    pool's shared queue; idle workers pull the next chunk the moment they
    finish — work stealing in its queue-drained form, with the stealing
    done by :class:`~concurrent.futures.ProcessPoolExecutor`'s dispatcher
    rather than per-worker deques.

    Determinism is untouched: the chunk *list* is a pure function of the
    work list, results are yielded in submission order, and callers merge
    order-insensitively, so ``jobs=4`` plans are byte-identical to
    ``jobs=1`` (parity-tested via ``plan_to_json`` equality). Only wall
    time and the per-process cache-warmth counters may differ.
    """

    name = "steal"

    def __init__(
        self,
        jobs: int,
        cancel_token: CancelToken | None = None,
        *,
        factor: int = 2,
        min_chunk: int = 1,
    ) -> None:
        super().__init__(jobs, cancel_token)
        self.factor = factor
        self.min_chunk = min_chunk

    def plan_chunks(self, items: Sequence[T]) -> list[list[T]]:
        """Guided decreasing-size chunks (the dynamic queue's feed)."""
        return guided_partition(
            items, self.jobs, factor=self.factor, min_chunk=self.min_chunk
        )


def get_backend(
    jobs: int | None = 1,
    backend: str | None = None,
    *,
    cancel_token: CancelToken | None = None,
) -> ExecutionBackend:
    """The execution backend for a ``jobs=`` argument.

    ``backend`` selects among :data:`BACKEND_NAMES`; ``None`` picks the
    default for the worker count — :class:`SerialBackend` (guaranteed
    pool-free) when ``jobs`` resolves to 1, the work-stealing pool
    otherwise. An explicitly requested pool backend still degrades to
    serial when only one worker is available (e.g. ``jobs=0`` on a
    single-core machine); ``backend="serial"`` forces serial execution
    regardless of ``jobs``. ``cancel_token`` arms cooperative
    cancellation: the backend checks it at every chunk boundary (see
    :class:`CancelToken`).
    """
    n = resolve_jobs(jobs)
    if backend is None:
        backend = "serial" if n == 1 else "steal"
    if backend not in BACKEND_NAMES:
        raise ReproError(
            f"unknown backend {backend!r}; available: "
            f"{', '.join(BACKEND_NAMES)}"
        )
    if backend == "serial" or n == 1:
        return SerialBackend(cancel_token)
    if backend == "process":
        return ProcessBackend(n, cancel_token)
    return WorkStealingBackend(n, cancel_token)


def map_in_chunks(
    backend: ExecutionBackend,
    fn: Callable[[Any, list[T]], list[Any]],
    shared: Any,
    items: Sequence[T],
) -> list[Any]:
    """Fan ``items`` out in backend-chosen chunks; flattened results.

    ``fn(shared, chunk)`` must return one result per chunk item, in chunk
    order; chunks are contiguous and order-preserving (the
    :class:`ExecutionBackend` contract), so the flattened output aligns
    1:1 with ``items`` whatever granularity the backend picked.
    """
    items = list(items)
    if not items:
        return []
    chunks = backend.plan_chunks(items)
    out: list[Any] = []
    for chunk, results in zip(chunks, backend.run_chunks(fn, shared, chunks)):
        if len(results) != len(chunk):
            raise ReproError(
                f"chunk worker returned {len(results)} results for "
                f"{len(chunk)} items"
            )
        out.extend(results)
    return out


@dataclass(frozen=True)
class PlanTimings:
    """Where Algorithm 1's wall time went (attached to every topology plan).

    Since the :mod:`repro.obs` layer landed, the planner records its phases
    as spans and this record is a *view* over the resulting span tree
    (built by :meth:`from_record`); the public fields are unchanged.

    ``enumerate_s`` / ``capacity_s``
        Wall time of the scenario-path enumeration (per-scenario Dijkstra)
        and the per-duct hose max-flow phases.
    ``total_s``
        End-to-end wall time of :func:`~repro.core.topology.plan_topology`
        (includes the duct pre-pruning, so it slightly exceeds the sum of
        the two phases).
    ``scenarios_evaluated``
        Scenarios actually evaluated (after pruning).
    ``hose_cache_hits`` / ``hose_cache_misses``
        Hose max-flow cache traffic during the capacity phase, summed over
        all worker processes.
    ``hose_cold_solves`` / ``hose_incremental_solves``
        How the capacity phase's cache misses were actually solved: from
        scratch, or repaired incrementally from a neighbouring solved
        instance (see :mod:`repro.core.hose`). Sums to
        ``hose_cache_misses``.
    ``backend`` / ``jobs``
        Which execution backend ran the plan, with how many workers.
    """

    enumerate_s: float
    capacity_s: float
    total_s: float
    scenarios_evaluated: int
    hose_cache_hits: int
    hose_cache_misses: int
    backend: str = "serial"
    jobs: int = 1
    hose_cold_solves: int = 0
    hose_incremental_solves: int = 0

    @classmethod
    def from_record(
        cls, record: SpanRecord, backend: str = "serial", jobs: int = 1
    ) -> "PlanTimings":
        """Build the timing view from a ``plan.topology`` span record.

        Phase wall times come from the ``plan.enumerate`` / ``plan.capacity``
        child spans; the authoritative counts come from the counters the
        planner sets on the record (``scenarios.evaluated``,
        ``hose.cache_hits``, ``hose.cache_misses``).
        """
        enum = record.child("plan.enumerate")
        capacity = record.child("plan.capacity")
        counters = record.counters
        return cls(
            enumerate_s=enum.duration_s if enum else 0.0,
            capacity_s=capacity.duration_s if capacity else 0.0,
            total_s=record.duration_s,
            scenarios_evaluated=int(counters.get("scenarios.evaluated", 0)),
            hose_cache_hits=int(counters.get("hose.cache_hits", 0)),
            hose_cache_misses=int(counters.get("hose.cache_misses", 0)),
            backend=backend,
            jobs=jobs,
            hose_cold_solves=int(counters.get("hose.cold_solves", 0)),
            hose_incremental_solves=int(
                counters.get("hose.incremental_solves", 0)
            ),
        )

    @property
    def hose_cache_hit_rate(self) -> float:
        """Fraction of hose max-flow lookups served from cache."""
        lookups = self.hose_cache_hits + self.hose_cache_misses
        if lookups == 0:
            return 0.0
        return self.hose_cache_hits / lookups

    def summary(self) -> str:
        """A one-line human-readable breakdown (used by the CLI)."""
        return (
            f"{self.total_s:.2f} s total "
            f"(paths {self.enumerate_s:.2f} s, capacity {self.capacity_s:.2f} s), "
            f"{self.scenarios_evaluated} scenarios, "
            f"hose cache hit rate {self.hose_cache_hit_rate:.0%} "
            f"({self.hose_cold_solves} cold / "
            f"{self.hose_incremental_solves} incremental), "
            f"backend {self.backend} x{self.jobs}"
        )
