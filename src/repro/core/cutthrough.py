"""Greedy cut-through and secondary amplifier placement (§4.3, Appendix A).

After the distance-driven amplifier pass, some paths may still blow a run's
power budget through accumulated OSS insertion loss. Appendix A resolves
these with either:

* a "cut-through link" — an uninterrupted fiber crossing one or more
  switching points unswitched, removing their insertion loss for the paths
  routed over it (at the price of leasing dedicated fiber along every
  underlying span); or
* an in-line amplifier — "even if the distance is short, but there are many
  switching points on the path, it may make sense to place amplifiers ...
  because the number of amplifiers needed could be cheaper compared to
  allocating additional fiber for cut-through links".

Both candidate kinds compete in one greedy loop, scored by constraints
resolved per dollar of new equipment (amplifiers needed at a site are the
hose max-flow of the fibers amplified there, reusing §4.1's computation;
already-installed amplifiers are reused for free).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.core.failures import Scenario
from repro.core.hose import hose_capacity
from repro.core.plan import AmplifierPlan, CutThroughLink, EffectivePath, Pair
from repro.cost.pricebook import PriceBook
from repro.exceptions import PlanningError
from repro.optics.constraints import amp_fix_candidates, violations
from repro.region.fibermap import RegionSpec

#: A cut-through candidate is identified by the physical chain it spans.
_Chain = tuple[str, ...]

_Key = tuple[Scenario, Pair]


def _violates(path: EffectivePath, sla_fiber_km: float) -> bool:
    return bool(violations(path.profile(), sla_fiber_km=sla_fiber_km))


def _excess_db(path: EffectivePath) -> float:
    """Total dB by which the path's runs exceed their amplifier budgets."""
    from repro.units import AMPLIFIER_GAIN_DB

    return sum(
        max(0.0, run.loss_db - AMPLIFIER_GAIN_DB)
        for run in path.profile().runs()
    )


def _candidate_bypasses(path: EffectivePath) -> list[tuple[int, int]]:
    """(start, end) node-index ranges whose bypass is physically possible."""
    out = []
    nodes = path.nodes
    for start in range(len(nodes) - 2):
        for end in range(start + 2, len(nodes)):
            interior = nodes[start + 1 : end]
            if path.amp_node is not None and path.amp_node in interior:
                continue
            out.append((start, end))
    return out


def _chain_for(path: EffectivePath, start: int, end: int) -> _Chain:
    chain: list[str] = [path.nodes[start]]
    for hop in path.hop_chains[start:end]:
        chain.extend(hop[1:])
    return tuple(chain)


def place_cut_throughs(
    region: RegionSpec,
    effective: Mapping[_Key, EffectivePath],
    site_counts: Mapping[str, int] | None = None,
    assignments: Mapping[_Key, str] | None = None,
    prices: PriceBook | None = None,
    allow_amplifiers: bool = True,
) -> tuple[
    tuple[CutThroughLink, ...],
    dict[_Key, EffectivePath],
    AmplifierPlan,
]:
    """Resolve remaining run-budget violations; returns links, updated
    effective paths, and the final amplifier plan.

    ``site_counts`` and ``assignments`` carry over the distance-driven
    amplifier pass; both start empty when omitted. ``allow_amplifiers=False``
    restricts the greedy to cut-through candidates only (the ablation of the
    Appendix A observation that amplifiers are often the cheaper fix). Raises
    :class:`PlanningError` if some violation cannot be fixed (cannot happen
    on maps whose ducts respect TC1, per the Appendix A argument).
    """
    prices = prices or PriceBook.default()
    sla = region.constraints.sla_fiber_km
    current: dict[_Key, EffectivePath] = dict(effective)
    sites: dict[str, int] = defaultdict(int, site_counts or {})
    amp_assignments: dict[_Key, str] = dict(assignments or {})
    # Pairs amplified at each site, per scenario (drives amp demand).
    served: dict[str, dict[Scenario, list[Pair]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for (scenario, pair), site in amp_assignments.items():
        served[site][scenario].append(pair)
    link_users: dict[_Chain, set[_Key]] = {}

    guard = 0
    while True:
        guard += 1
        if guard > 2000:
            raise PlanningError("cut-through placement did not converge")

        violating = [key for key, path in current.items() if _violates(path, sla)]
        if not violating:
            break

        # Cut-through candidates: chain -> {key -> (start, end)} resolved.
        cut_resolves: dict[_Chain, dict[_Key, tuple[int, int]]] = defaultdict(dict)
        # Amplifier candidates: site -> {key -> amp node} resolved.
        amp_resolves: dict[str, dict[_Key, str]] = defaultdict(dict)

        # Partial-progress candidates, used when nothing fully resolves a
        # path in one step (heavily switched paths need an amplifier AND
        # cut-throughs): excess-dB reduction per candidate.
        cut_progress: dict[_Chain, dict[_Key, tuple[int, int]]] = defaultdict(dict)
        cut_gain: dict[_Chain, float] = defaultdict(float)
        amp_progress: dict[str, dict[_Key, str]] = defaultdict(dict)
        amp_gain: dict[str, float] = defaultdict(float)

        for key in violating:
            path = current[key]
            before = _excess_db(path)
            for start, end in _candidate_bypasses(path):
                fixed = path.bypass(start, end)
                chain = _chain_for(path, start, end)
                if not _violates(fixed, sla):
                    cut_resolves[chain][key] = (start, end)
                reduction = before - _excess_db(fixed)
                if reduction > 1e-9:
                    cut_progress[chain][key] = (start, end)
                    cut_gain[chain] += reduction
            if allow_amplifiers and path.amp_node is None:
                for span_index in amp_fix_candidates(path.profile()):
                    site = path.nodes[span_index + 1]
                    amp_resolves[site][key] = site
                # Partial progress: an amp helps even when it cannot fully
                # fix the path, as long as it reduces the worst run.
                for span_index in range(len(path.nodes) - 2):
                    site = path.nodes[span_index + 1]
                    with_amp = path.with_amp(site)
                    reduction = before - _excess_db(with_amp)
                    if reduction > 1e-9:
                        amp_progress[site][key] = site
                        amp_gain[site] += reduction

        if not cut_resolves and not amp_resolves:
            # Fall back to the best partial step (strict progress keeps
            # the loop terminating); combinations complete over iterations.
            best_partial: tuple[float, str, object] | None = None
            for chain, gain in cut_gain.items():
                cost = max(
                    (len(chain) - 1)
                    * hose_capacity(
                        [pair for _, pair in cut_progress[chain]],
                        region.dc_fibers,
                    )
                    * prices.fiber_pair_span,
                    1e-9,
                )
                candidate = (gain / cost, "cut", chain)
                if best_partial is None or candidate[0] > best_partial[0]:
                    best_partial = candidate
            for site, gain in amp_gain.items():
                candidate = (gain / max(prices.amplifier, 1e-9), "amp", site)
                if best_partial is None or candidate[0] > best_partial[0]:
                    best_partial = candidate
            if best_partial is None:
                details = []
                for key in violating[:3]:
                    scenario, pair = key
                    details.append(
                        f"{pair} under {sorted(scenario) or 'no failures'}: "
                        + "; ".join(
                            violations(current[key].profile(), sla_fiber_km=sla)
                        )
                    )
                raise PlanningError(
                    "no cut-through or amplifier resolves remaining "
                    "violations: " + " | ".join(details)
                )
            _, kind, target = best_partial
            if kind == "cut":
                chain = target
                for key, (start, end) in cut_progress[chain].items():
                    current[key] = current[key].bypass(start, end)
                link_users.setdefault(chain, set()).update(cut_progress[chain])
            else:
                site = target
                for key in amp_progress[site]:
                    scenario, pair = key
                    current[key] = current[key].with_amp(site)
                    amp_assignments[key] = site
                    served[site][scenario].append(pair)
                needed = max(
                    hose_capacity(pairs, region.dc_fibers)
                    for pairs in served[site].values()
                )
                sites[site] = max(sites[site], needed)
            continue

        def cut_cost(chain: _Chain) -> float:
            by_scenario: dict[Scenario, list[Pair]] = defaultdict(list)
            for scenario, pair in cut_resolves[chain]:
                by_scenario[scenario].append(pair)
            capacity = max(
                hose_capacity(pairs, region.dc_fibers)
                for pairs in by_scenario.values()
            )
            return max(capacity * (len(chain) - 1) * prices.fiber_pair_span, 1e-9)

        def amp_cost(site: str) -> float:
            demand_now = dict(served[site])
            for (scenario, pair) in amp_resolves[site]:
                demand_now.setdefault(scenario, list(served[site][scenario]))
                demand_now[scenario] = demand_now[scenario] + [pair]
            needed = max(
                hose_capacity(pairs, region.dc_fibers)
                for pairs in demand_now.values()
            )
            to_place = max(0, needed - sites[site])
            return max(to_place * prices.amplifier, 1e-9)

        best_score = None
        best_action: tuple[str, object] | None = None
        for chain in sorted(cut_resolves):
            score = (len(cut_resolves[chain]) / cut_cost(chain), len(cut_resolves[chain]))
            if best_score is None or score > best_score:
                best_score, best_action = score, ("cut", chain)
        for site in sorted(amp_resolves):
            score = (len(amp_resolves[site]) / amp_cost(site), len(amp_resolves[site]))
            if best_score is None or score > best_score:
                best_score, best_action = score, ("amp", site)

        assert best_action is not None
        kind, target = best_action
        if kind == "cut":
            chain = target  # type: ignore[assignment]
            for key, (start, end) in cut_resolves[chain].items():
                current[key] = current[key].bypass(start, end)
            link_users.setdefault(chain, set()).update(cut_resolves[chain])
        else:
            site = target  # type: ignore[assignment]
            for key in amp_resolves[site]:
                scenario, pair = key
                current[key] = current[key].with_amp(site)
                amp_assignments[key] = site
                served[site][scenario].append(pair)
            needed = max(
                hose_capacity(pairs, region.dc_fibers)
                for pairs in served[site].values()
            )
            sites[site] = max(sites[site], needed)

    placed: list[CutThroughLink] = []
    for chain, users in sorted(link_users.items()):
        by_scenario: dict[Scenario, list[Pair]] = defaultdict(list)
        for scenario, pair in users:
            by_scenario[scenario].append(pair)
        capacity = max(
            hose_capacity(pairs, region.dc_fibers) for pairs in by_scenario.values()
        )
        length = sum(
            region.fiber_map.duct_length(u, v) for u, v in zip(chain, chain[1:])
        )
        placed.append(
            CutThroughLink(via=chain, fiber_pairs=capacity, length_km=length)
        )

    final_amps = AmplifierPlan(
        site_counts={k: v for k, v in sorted(sites.items()) if v > 0},
        assignments=amp_assignments,
    )
    return tuple(placed), current, final_amps
