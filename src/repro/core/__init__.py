"""The paper's primary contribution: Iris network planning (§4, App. A-B)."""

from repro.core.plan import (
    AmplifierPlan,
    CutThroughLink,
    IrisPlan,
    TopologyPlan,
)
from repro.core.engine import (
    PlanTimings,
    SerialBackend,
    ProcessBackend,
    get_backend,
    resolve_jobs,
    worker_safe,
)
from repro.core.failures import all_failure_scenarios, Scenario
from repro.core.hose import (
    HoseCacheStats,
    clear_hose_cache,
    hose_cache_stats,
    hose_capacity,
    oriented_pairs_through_edge,
)
from repro.core.topology import plan_topology, compute_scenario_paths
from repro.core.amplifiers import place_amplifiers
from repro.core.cutthrough import place_cut_throughs
from repro.core.residual import residual_fiber_pairs
from repro.core.planner import IrisPlanner, plan_region

__all__ = [
    "AmplifierPlan",
    "CutThroughLink",
    "IrisPlan",
    "TopologyPlan",
    "PlanTimings",
    "SerialBackend",
    "ProcessBackend",
    "get_backend",
    "resolve_jobs",
    "worker_safe",
    "Scenario",
    "all_failure_scenarios",
    "HoseCacheStats",
    "clear_hose_cache",
    "hose_cache_stats",
    "hose_capacity",
    "oriented_pairs_through_edge",
    "plan_topology",
    "compute_scenario_paths",
    "place_amplifiers",
    "place_cut_throughs",
    "residual_fiber_pairs",
    "IrisPlanner",
    "plan_region",
]
