"""Algorithm 1: topology & capacity planning (§4.1).

For every failure scenario of up to ``tolerance`` duct cuts, compute every
DC pair's shortest path (OC1/OC3) and provision each duct at the maximum,
over scenarios, of the hose max-flow across it (OC2/OC4). Ducts longer than
the TC1 reach are excluded up front: no point-to-point connection can use
them under any switching technology.

Enumeration is pruned exactly: cutting ducts that no shortest path of a
scenario uses leaves that scenario's paths (hence capacities) unchanged, so
each enumerated scenario is only extended with ducts its own shortest-path
set uses. Every omitted scenario has the same path set as some enumerated
one. Tests cross-check this against brute force on small maps.
"""

from __future__ import annotations

import itertools
from typing import Mapping

import networkx as nx

from repro.core.failures import Scenario
from repro.core.hose import hose_capacity, oriented_pairs_through_edge
from repro.core.plan import Pair, TopologyPlan
from repro.exceptions import InfeasibleRegionError
from repro.region.fibermap import Duct, FiberMap, RegionSpec, duct_key, pair_key
from repro.units import IRIS_MAX_DUCT_KM


def prune_overlong_ducts(fmap: FiberMap, max_span_km: float) -> FiberMap:
    """A copy of ``fmap`` without ducts beyond point-to-point reach (TC1)."""
    pruned = fmap.copy()
    for u, v in list(pruned.ducts):
        if pruned.duct_length(u, v) > max_span_km + 1e-9:
            pruned.remove_duct(u, v)
    return pruned


def compute_scenario_paths(
    fmap: FiberMap,
    scenario: Scenario,
    sla_fiber_km: float | None = None,
) -> dict[Pair, tuple[str, ...]]:
    """Shortest paths for every DC pair with ``scenario``'s ducts cut.

    Raises :class:`InfeasibleRegionError` if any pair disconnects or (when
    ``sla_fiber_km`` is given) exceeds the SLA distance — under OC4, the
    operational constraints must keep holding in every tolerated scenario.
    """
    graph = fmap.subgraph_without(scenario)
    dcs = fmap.dcs
    paths: dict[Pair, tuple[str, ...]] = {}
    for source in dcs:
        lengths, routes = nx.single_source_dijkstra(graph, source, weight="length_km")
        for target in dcs:
            if target <= source:
                continue
            pair = pair_key(source, target)
            if target not in lengths:
                raise InfeasibleRegionError(
                    f"DC pair {pair} disconnected when ducts "
                    f"{sorted(scenario)} are cut",
                    scenario=scenario,
                    pair=pair,
                )
            if sla_fiber_km is not None and lengths[target] > sla_fiber_km + 1e-9:
                raise InfeasibleRegionError(
                    f"DC pair {pair} at {lengths[target]:.1f} km exceeds the "
                    f"{sla_fiber_km:.0f} km SLA when ducts "
                    f"{sorted(scenario)} are cut",
                    scenario=scenario,
                    pair=pair,
                )
            paths[pair] = tuple(routes[target])
    return paths


def _used_ducts(paths: Mapping[Pair, tuple[str, ...]]) -> set[Duct]:
    used: set[Duct] = set()
    for path in paths.values():
        used.update(duct_key(u, v) for u, v in zip(path, path[1:]))
    return used


def enumerate_scenario_paths(
    fmap: FiberMap,
    tolerance: int,
    sla_fiber_km: float | None = None,
    prune: bool = True,
) -> tuple[dict[Scenario, dict[Pair, tuple[str, ...]]], int]:
    """All (pruned) failure scenarios with their shortest-path sets.

    Returns (scenario -> pair -> path, total raw scenario count the pruned
    set represents). With ``prune=False``, enumerates brute force (tests).
    """
    n_ducts = len(fmap.ducts)
    total_raw = sum(
        _comb(n_ducts, k) for k in range(min(tolerance, n_ducts) + 1)
    )

    results: dict[Scenario, dict[Pair, tuple[str, ...]]] = {}
    if not prune:
        for k in range(tolerance + 1):
            for combo in itertools.combinations(fmap.ducts, k):
                scenario = Scenario(combo)
                results[scenario] = compute_scenario_paths(
                    fmap, scenario, sla_fiber_km
                )
        return results, total_raw

    frontier: list[Scenario] = [Scenario()]
    seen: set[Scenario] = {Scenario()}
    for level in range(tolerance + 1):
        next_frontier: list[Scenario] = []
        for scenario in frontier:
            paths = compute_scenario_paths(fmap, scenario, sla_fiber_km)
            results[scenario] = paths
            if level < tolerance:
                for duct in sorted(_used_ducts(paths)):
                    extended = scenario | {duct}
                    if extended not in seen:
                        seen.add(extended)
                        next_frontier.append(extended)
        frontier = next_frontier
    return results, total_raw


def _comb(n: int, k: int) -> int:
    c = 1
    for i in range(k):
        c = c * (n - i) // (i + 1)
    return c


def plan_topology(
    region: RegionSpec,
    prune_enumeration: bool = True,
) -> TopologyPlan:
    """Run Algorithm 1 for ``region``.

    The returned plan's ``edge_capacity`` is in fiber-pairs: base capacity
    before the residual provisioning that fiber-granularity switching adds
    (§4.3). Both the electrical (EPS) and optical (Iris) realizations start
    from this plan.
    """
    constraints = region.constraints
    # Ducts beyond point-to-point reach are useless under any switching
    # (TC1); ducts beyond the Iris per-run budget (fiber + the two endpoint
    # OSS traversals, see IRIS_MAX_DUCT_KM) are useless to an all-optical
    # path under any routing, so they are pruned too.
    usable_km = min(constraints.max_span_km, IRIS_MAX_DUCT_KM)
    fmap = prune_overlong_ducts(region.fiber_map, usable_km)

    scenario_paths, total_raw = enumerate_scenario_paths(
        fmap,
        constraints.failure_tolerance,
        sla_fiber_km=constraints.sla_fiber_km,
        prune=prune_enumeration,
    )

    edge_capacity: dict[Duct, int] = {}
    # Different scenarios mostly reroute a few pairs, so the oriented pair
    # set of an edge recurs across scenarios: memoize the max-flow per set.
    flow_cache: dict[tuple, int] = {}
    for paths in scenario_paths.values():
        for edge in _used_ducts(paths):
            oriented = tuple(sorted(oriented_pairs_through_edge(edge, paths)))
            needed = flow_cache.get(oriented)
            if needed is None:
                needed = hose_capacity(oriented, region.dc_fibers)
                flow_cache[oriented] = needed
            if needed > edge_capacity.get(edge, 0):
                edge_capacity[edge] = needed

    return TopologyPlan(
        edge_capacity=edge_capacity,
        scenario_paths=scenario_paths,
        scenario_count_total=total_raw,
    )
