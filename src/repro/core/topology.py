"""Algorithm 1: topology & capacity planning (§4.1).

For every failure scenario of up to ``tolerance`` duct cuts, compute every
DC pair's shortest path (OC1/OC3) and provision each duct at the maximum,
over scenarios, of the hose max-flow across it (OC2/OC4). Ducts longer than
the TC1 reach are excluded up front: no point-to-point connection can use
them under any switching technology.

Enumeration is pruned exactly: cutting ducts that no shortest path of a
scenario uses leaves that scenario's paths (hence capacities) unchanged, so
each enumerated scenario is only extended with ducts its own shortest-path
set uses. Every omitted scenario has the same path set as some enumerated
one. Tests cross-check this against brute force on small maps.

Both phases are scenario-parallel: scenarios of one enumeration level (and
scenario chunks of the capacity phase) are independent, so they fan out
over an execution backend from :mod:`repro.core.engine` selected by the
``jobs=`` parameter. The frontier is partitioned into contiguous chunks and
per-duct maxima are merged in the parent, so parallel plans are
bit-identical to serial ones.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Protocol, Sequence

import networkx as nx

from repro import obs
from repro.core.engine import (
    CancelToken,
    ExecutionBackend,
    PlanTimings,
    SerialBackend,
    get_backend,
    map_in_chunks,
    worker_safe,
)
from repro.core.failures import Scenario
from repro.core.hose import (
    hose_cache_stats,
    hose_capacity,
    oriented_pairs_through_edge,
)
from repro.core.plan import Pair, TopologyPlan
from repro.exceptions import InfeasibleRegionError
from repro.region.fibermap import Duct, FiberMap, RegionSpec, duct_key, pair_key
from repro.units import IRIS_MAX_DUCT_KM


def prune_overlong_ducts(fmap: FiberMap, max_span_km: float) -> FiberMap:
    """A copy of ``fmap`` without ducts beyond point-to-point reach (TC1)."""
    pruned = fmap.copy()
    for u, v in list(pruned.ducts):
        if pruned.duct_length(u, v) > max_span_km + 1e-9:
            pruned.remove_duct(u, v)
    return pruned


def compute_scenario_paths(
    fmap: FiberMap,
    scenario: Scenario,
    sla_fiber_km: float | None = None,
) -> dict[Pair, tuple[str, ...]]:
    """Shortest paths for every DC pair with ``scenario``'s ducts cut.

    Raises :class:`InfeasibleRegionError` if any pair disconnects or (when
    ``sla_fiber_km`` is given) exceeds the SLA distance — under OC4, the
    operational constraints must keep holding in every tolerated scenario.
    """
    graph = fmap.subgraph_without(scenario)
    dcs = fmap.dcs
    paths: dict[Pair, tuple[str, ...]] = {}
    for source in dcs:
        lengths, routes = nx.single_source_dijkstra(graph, source, weight="length_km")
        for target in dcs:
            if target <= source:
                continue
            pair = pair_key(source, target)
            if target not in lengths:
                raise InfeasibleRegionError(
                    f"DC pair {pair} disconnected when ducts "
                    f"{sorted(scenario)} are cut",
                    scenario=scenario,
                    pair=pair,
                )
            if sla_fiber_km is not None and lengths[target] > sla_fiber_km + 1e-9:
                raise InfeasibleRegionError(
                    f"DC pair {pair} at {lengths[target]:.1f} km exceeds the "
                    f"{sla_fiber_km:.0f} km SLA when ducts "
                    f"{sorted(scenario)} are cut",
                    scenario=scenario,
                    pair=pair,
                )
            paths[pair] = tuple(routes[target])
    return paths


def _used_ducts(paths: Mapping[Pair, tuple[str, ...]]) -> set[Duct]:
    used: set[Duct] = set()
    for path in paths.values():
        used.update(duct_key(u, v) for u, v in zip(path, path[1:]))
    return used


@worker_safe
def _paths_chunk(
    shared: tuple[FiberMap, float | None], scenarios: list[Scenario]
) -> list[dict[Pair, tuple[str, ...]]]:
    """Worker: evaluate one chunk of scenarios (module-level for pickling)."""
    fmap, sla_fiber_km = shared
    obs.incr("paths.scenarios", len(scenarios))
    return [
        compute_scenario_paths(fmap, scenario, sla_fiber_km)
        for scenario in scenarios
    ]


def _evaluate_scenarios(
    backend: ExecutionBackend,
    fmap: FiberMap,
    scenarios: Sequence[Scenario],
    sla_fiber_km: float | None,
    paths_oracle: "PathsOracle | None" = None,
) -> list[dict[Pair, tuple[str, ...]]]:
    """Per-scenario path sets, aligned 1:1 with ``scenarios``.

    ``paths_oracle`` (see :class:`PathsOracle`) short-circuits scenarios
    whose path sets are already known — the incremental-replanning hook.
    Only the scenarios the oracle declines are fanned out to the backend;
    answered ones never reach a worker, but their results merge back in
    position, so the returned list is indistinguishable from a full
    evaluation (the oracle's contract makes the *values* identical too).
    """
    scenarios = list(scenarios)
    if paths_oracle is None:
        return map_in_chunks(
            backend, _paths_chunk, (fmap, sla_fiber_km), scenarios
        )
    results: list[dict[Pair, tuple[str, ...]] | None] = [None] * len(scenarios)
    cold_indices: list[int] = []
    for i, scenario in enumerate(scenarios):
        reused = paths_oracle.lookup(scenario)
        if reused is not None:
            results[i] = reused
        else:
            cold_indices.append(i)
    cold = map_in_chunks(
        backend,
        _paths_chunk,
        (fmap, sla_fiber_km),
        [scenarios[i] for i in cold_indices],
    )
    for i, paths in zip(cold_indices, cold):
        results[i] = paths
    return results  # type: ignore[return-value]


class PathsOracle(Protocol):
    """Answers "what are this scenario's shortest paths?" from prior work.

    ``lookup(scenario)`` returns the scenario's pair->path dict, or
    ``None`` to decline. The hard contract: a returned dict must be
    *equal* to what :func:`compute_scenario_paths` would compute on the
    current map — including Dijkstra tie-breaks — because reused paths
    feed both the enumeration frontier and the plan bytes. Oracles
    therefore only answer from provably execution-identical prior runs
    (see :mod:`repro.service.replan`); anything uncertain is declined and
    recomputed cold.
    """

    def lookup(
        self, scenario: Scenario
    ) -> dict[Pair, tuple[str, ...]] | None: ...


def enumerate_scenario_paths(
    fmap: FiberMap,
    tolerance: int,
    sla_fiber_km: float | None = None,
    prune: bool = True,
    backend: ExecutionBackend | None = None,
    paths_oracle: PathsOracle | None = None,
) -> tuple[dict[Scenario, dict[Pair, tuple[str, ...]]], int]:
    """All (pruned) failure scenarios with their shortest-path sets.

    Returns (scenario -> pair -> path, total raw scenario count the pruned
    set represents). With ``prune=False``, enumerates brute force (tests).
    ``backend`` fans the per-level scenario evaluations out (serial when
    omitted); the frontier expansion itself stays in the parent, so the
    enumerated set and its order are backend-independent. ``paths_oracle``
    answers scenarios from a prior plan (:class:`PathsOracle`); reused
    path sets feed the frontier exactly as computed ones do, so an oracle
    honouring its equality contract cannot change what gets enumerated.
    """
    backend = backend or SerialBackend()
    n_ducts = len(fmap.ducts)
    total_raw = sum(
        _comb(n_ducts, k) for k in range(min(tolerance, n_ducts) + 1)
    )

    results: dict[Scenario, dict[Pair, tuple[str, ...]]] = {}
    if not prune:
        scenarios = [
            Scenario(combo)
            for k in range(tolerance + 1)
            for combo in itertools.combinations(fmap.ducts, k)
        ]
        with obs.span("plan.enumerate.brute") as span:
            span.incr("level.scenarios", len(scenarios))
            evaluated = _evaluate_scenarios(
                backend, fmap, scenarios, sla_fiber_km, paths_oracle
            )
        return dict(zip(scenarios, evaluated)), total_raw

    frontier: list[Scenario] = [Scenario()]
    seen: set[Scenario] = {Scenario()}
    for level in range(tolerance + 1):
        with obs.span(f"plan.enumerate.level[{level}]") as span:
            span.incr("level.scenarios", len(frontier))
            evaluated = _evaluate_scenarios(
                backend, fmap, frontier, sla_fiber_km, paths_oracle
            )
        next_frontier: list[Scenario] = []
        for scenario, paths in zip(frontier, evaluated):
            results[scenario] = paths
            if level < tolerance:
                for duct in sorted(_used_ducts(paths)):
                    extended = scenario | {duct}
                    if extended not in seen:
                        seen.add(extended)
                        next_frontier.append(extended)
        frontier = next_frontier
    return results, total_raw


def _comb(n: int, k: int) -> int:
    c = 1
    for i in range(k):
        c = c * (n - i) // (i + 1)
    return c


@worker_safe
def _capacity_chunk(
    dc_fibers: Mapping[str, int],
    path_sets: list[Mapping[Pair, tuple[str, ...]]],
) -> tuple[dict[Duct, int], int, int, int, int]:
    """Worker: per-duct hose maxima over one chunk of scenario path sets.

    Returns the chunk's (duct -> needed capacity, cache hits, cache
    misses, cold solves, incremental solves); the parent merges chunk
    results by per-duct maximum, which is order-independent, so the
    merged capacities match serial execution exactly. The counter deltas
    are measured against this process's hose cache.
    """
    before = hose_cache_stats()
    edge_capacity: dict[Duct, int] = {}
    for paths in path_sets:
        # Sorted so the hose lookup order — and with it the cache's
        # cold/incremental split — is hash-seed independent. The merged
        # capacities never depended on this order.
        for edge in sorted(_used_ducts(paths)):
            oriented = tuple(sorted(oriented_pairs_through_edge(edge, paths)))
            needed = hose_capacity(oriented, dc_fibers)
            if needed > edge_capacity.get(edge, 0):
                edge_capacity[edge] = needed
    after = hose_cache_stats()
    return (
        edge_capacity,
        after.hits - before.hits,
        after.misses - before.misses,
        after.cold_solves - before.cold_solves,
        after.incremental_solves - before.incremental_solves,
    )


def plan_topology(
    region: RegionSpec,
    *,
    prune_enumeration: bool = True,
    jobs: int | None = 1,
    backend: str | None = None,
    paths_oracle: PathsOracle | None = None,
    cancel_token: CancelToken | None = None,
) -> TopologyPlan:
    """Run Algorithm 1 for ``region``.

    The returned plan's ``edge_capacity`` is in fiber-pairs: base capacity
    before the residual provisioning that fiber-granularity switching adds
    (§4.3). Both the electrical (EPS) and optical (Iris) realizations start
    from this plan.

    ``jobs`` selects the worker count and ``backend`` the execution
    backend (see :mod:`repro.core.engine`): ``jobs=1`` (default) runs
    serially in-process, ``N > 1`` fans scenario evaluation out over
    ``N`` worker processes — through the work-stealing chunk queue by
    default, or statically with ``backend="process"`` — and ``0`` uses
    every CPU. The plan is bit-identical across backends; the attached
    :class:`~repro.core.engine.PlanTimings` records which backend ran and
    where the time went.

    Phases are timed as :mod:`repro.obs` spans. With global tracing off, a
    private tracer records only the coarse phase spans feeding the
    ``PlanTimings`` view; with :func:`repro.obs.tracing` active, the same
    spans nest into the caller's trace along with per-level, per-chunk,
    and per-hose-lookup detail.

    ``paths_oracle`` short-circuits scenario evaluations already known
    from a prior plan (incremental replanning; see :class:`PathsOracle` —
    its equality contract is what keeps patched plans byte-identical to
    cold ones). ``cancel_token`` arms cooperative cancellation and per-job
    timeouts: the fan-out checks it at chunk boundaries and unwinds with
    :class:`~repro.exceptions.JobCancelled`.
    """
    tracer = obs.current()
    if tracer is None:
        # Coarse-only local trace: phase spans for PlanTimings, none of
        # the fine-grained facade instrumentation fires.
        tracer = obs.Tracer("plan")
    constraints = region.constraints

    with tracer.span("plan.topology") as top:
        # Ducts beyond point-to-point reach are useless under any switching
        # (TC1); ducts beyond the Iris per-run budget (fiber + the two
        # endpoint OSS traversals, see IRIS_MAX_DUCT_KM) are useless to an
        # all-optical path under any routing, so they are pruned too.
        with tracer.span("plan.prune") as span:
            usable_km = min(constraints.max_span_km, IRIS_MAX_DUCT_KM)
            fmap = prune_overlong_ducts(region.fiber_map, usable_km)
            span.incr("prune.ducts_dropped",
                      len(region.fiber_map.ducts) - len(fmap.ducts))

        with get_backend(
            jobs, backend, cancel_token=cancel_token
        ) as engine_backend:
            with tracer.span("plan.enumerate"):
                scenario_paths, total_raw = enumerate_scenario_paths(
                    fmap,
                    constraints.failure_tolerance,
                    sla_fiber_km=constraints.sla_fiber_km,
                    prune=prune_enumeration,
                    backend=engine_backend,
                    paths_oracle=paths_oracle,
                )

            # Different scenarios mostly reroute a few pairs, so the
            # oriented pair set of an edge recurs across scenarios: the
            # per-process hose cache memoizes the max-flow per set (and
            # repairs misses incrementally from solved neighbours). Chunk
            # results merge by per-duct maximum, so chunking cannot change
            # the outcome.
            with tracer.span("plan.capacity"):
                edge_capacity: dict[Duct, int] = {}
                hits = misses = cold = incremental = 0
                path_sets = list(scenario_paths.values())
                chunks = (
                    engine_backend.plan_chunks(path_sets) if path_sets else []
                )
                for (
                    chunk_caps,
                    chunk_hits,
                    chunk_misses,
                    chunk_cold,
                    chunk_incremental,
                ) in engine_backend.run_chunks(
                    _capacity_chunk, region.dc_fibers, chunks
                ):
                    hits += chunk_hits
                    misses += chunk_misses
                    cold += chunk_cold
                    incremental += chunk_incremental
                    for edge, needed in chunk_caps.items():
                        if needed > edge_capacity.get(edge, 0):
                            edge_capacity[edge] = needed

        # Authoritative plan-level aggregates (distinct names from the
        # per-lookup event counters recorded inside chunk shards, so tree
        # totals never double-count): the PlanTimings view reads these.
        top.incr("scenarios.evaluated", len(scenario_paths))
        top.incr("hose.cache_hits", hits)
        top.incr("hose.cache_misses", misses)
        top.incr("hose.cold_solves", cold)
        top.incr("hose.incremental_solves", incremental)

    timings = PlanTimings.from_record(
        top.record, backend=engine_backend.name, jobs=engine_backend.jobs
    )
    return TopologyPlan(
        edge_capacity=edge_capacity,
        scenario_paths=scenario_paths,
        scenario_count_total=total_raw,
        timings=timings,
        trace=top.record,
    )
