"""Plan datatypes: what Iris planning produces (§4).

The pipeline is: Algorithm 1 yields a :class:`TopologyPlan` (which ducts are
used, at what base fiber capacity, with the shortest paths per failure
scenario). Amplifier placement (Algorithm 2) yields an
:class:`AmplifierPlan`. Cut-through placement yields
:class:`CutThroughLink` objects and per-path bypasses. Residual fibers add
the n-squared fractional-capacity provisioning. Everything lands in an
:class:`IrisPlan`, which can describe any path as an optical
:class:`~repro.optics.constraints.PathProfile` and reduce itself to a cost
:class:`~repro.cost.estimator.Inventory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cost.estimator import Inventory
from repro.core.engine import PlanTimings
from repro.obs import SpanRecord
from repro.exceptions import PlanningError
from repro.optics.constraints import PathProfile, violations
from repro.region.fibermap import Duct, FiberMap, RegionSpec, duct_key
from repro.core.failures import Scenario

#: Canonical DC pair.
Pair = tuple[str, str]


@dataclass(frozen=True)
class EffectivePath:
    """A routed path viewed as its OSS switching points.

    ``nodes``
        The switching points, source DC first. Initially every physical node
        on the shortest path; cut-throughs remove interior entries.
    ``hop_lengths_km``
        Fiber length of each effective hop.
    ``hop_chains``
        The underlying physical node chain of each hop (endpoints included);
        a plain duct hop has a 2-node chain, a cut-through hop a longer one.
    ``amp_node``
        The switching point hosting the in-line amplifier, or ``None``.
    """

    nodes: tuple[str, ...]
    hop_lengths_km: tuple[float, ...]
    hop_chains: tuple[tuple[str, ...], ...]
    amp_node: str | None = None

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise PlanningError("an effective path needs at least two nodes")
        if len(self.hop_lengths_km) != len(self.nodes) - 1:
            raise PlanningError("hop lengths must match node count")
        if len(self.hop_chains) != len(self.hop_lengths_km):
            raise PlanningError("hop chains must match hop count")
        for (u, v), chain in zip(
            zip(self.nodes, self.nodes[1:]), self.hop_chains
        ):
            if chain[0] != u or chain[-1] != v:
                raise PlanningError(f"hop chain {chain} does not join {u}-{v}")
        if self.amp_node is not None and self.amp_node not in self.nodes[1:-1]:
            raise PlanningError("amplifier must sit at an interior switching point")

    @classmethod
    def from_path(cls, fmap: FiberMap, path: Sequence[str]) -> "EffectivePath":
        """The un-optimized effective path: one hop per physical duct."""
        nodes = tuple(path)
        lengths = tuple(
            fmap.duct_length(u, v) for u, v in zip(nodes, nodes[1:])
        )
        chains = tuple((u, v) for u, v in zip(nodes, nodes[1:]))
        return cls(nodes=nodes, hop_lengths_km=lengths, hop_chains=chains)

    @property
    def total_km(self) -> float:
        """End-to-end fiber distance."""
        return sum(self.hop_lengths_km)

    @property
    def endpoints(self) -> Pair:
        """Source and destination DCs."""
        return self.nodes[0], self.nodes[-1]

    def amp_index(self) -> int | None:
        """Hop index after which the in-line amplifier sits."""
        if self.amp_node is None:
            return None
        return self.nodes.index(self.amp_node) - 1

    def profile(self) -> PathProfile:
        """The optical profile used by the TC1-TC4 checkers."""
        return PathProfile(
            span_lengths_km=self.hop_lengths_km,
            inline_amp_after_span=self.amp_index(),
        )

    def with_amp(self, node: str | None) -> "EffectivePath":
        """This path with the in-line amplifier placed at ``node``."""
        return EffectivePath(self.nodes, self.hop_lengths_km, self.hop_chains, node)

    def bypass(self, start: int, end: int) -> "EffectivePath":
        """Merge hops so nodes ``start``..``end`` become one unswitched hop.

        ``start`` and ``end`` index :attr:`nodes`; interior nodes (which must
        not include the amplifier site) are crossed without switching.
        """
        if not (0 <= start < end <= len(self.nodes) - 1) or end - start < 2:
            raise PlanningError(f"invalid bypass range {start}..{end}")
        interior = self.nodes[start + 1 : end]
        if self.amp_node is not None and self.amp_node in interior:
            raise PlanningError("cannot bypass the amplification point")
        merged_length = sum(self.hop_lengths_km[start:end])
        merged_chain: list[str] = [self.nodes[start]]
        for chain in self.hop_chains[start:end]:
            merged_chain.extend(chain[1:])
        nodes = self.nodes[: start + 1] + self.nodes[end:]
        lengths = (
            self.hop_lengths_km[:start]
            + (merged_length,)
            + self.hop_lengths_km[end:]
        )
        chains = (
            self.hop_chains[:start]
            + (tuple(merged_chain),)
            + self.hop_chains[end:]
        )
        return EffectivePath(nodes, lengths, chains, self.amp_node)

    def find_subchain(self, via: tuple[str, ...]) -> tuple[int, int] | None:
        """Locate ``via`` as a contiguous run of switching points.

        Returns (start, end) node indices suitable for :meth:`bypass`, or
        ``None`` if ``via`` does not appear (in either direction).
        """
        for candidate in (via, tuple(reversed(via))):
            n = len(candidate)
            for start in range(len(self.nodes) - n + 1):
                if self.nodes[start : start + n] == candidate:
                    return start, start + n - 1
        return None


@dataclass(frozen=True)
class TopologyPlan:
    """Algorithm 1's output: which ducts at what base capacity.

    ``edge_capacity``
        Leased base fiber-pairs per duct: the max over failure scenarios of
        the hose max-flow across that duct.
    ``scenario_paths``
        Shortest paths per enumerated (pruned) scenario: scenario ->
        pair -> node tuple. The no-failure scenario is always present.
    ``scenario_count_total``
        How many raw scenarios the pruned enumeration stands for.
    ``timings``
        Where planning wall time went (:class:`~repro.core.engine.PlanTimings`).
        Instrumentation only: excluded from equality so serial and parallel
        plans of the same region compare equal.
    ``trace``
        The ``plan.topology`` span tree this plan was produced under
        (:class:`~repro.obs.SpanRecord`): coarse phase spans by default,
        full per-chunk detail when planned inside :func:`repro.obs.tracing`.
        Instrumentation only, like ``timings``: excluded from equality and
        ``repr`` so traced and untraced plans compare equal and test diffs
        stay readable.
    """

    edge_capacity: Mapping[Duct, int]
    scenario_paths: Mapping[Scenario, Mapping[Pair, tuple[str, ...]]]
    scenario_count_total: int
    timings: PlanTimings | None = field(default=None, compare=False, repr=False)
    trace: SpanRecord | None = field(default=None, compare=False, repr=False)

    @property
    def scenarios(self) -> list[Scenario]:
        """Enumerated scenarios, no-failure first, then by size and name."""
        return sorted(self.scenario_paths, key=lambda s: (len(s), sorted(s)))

    @property
    def base_paths(self) -> Mapping[Pair, tuple[str, ...]]:
        """Shortest paths with no failures."""
        return self.scenario_paths[Scenario()]

    @property
    def used_ducts(self) -> list[Duct]:
        """Ducts with non-zero leased capacity."""
        return sorted(d for d, c in self.edge_capacity.items() if c > 0)

    def used_nodes(self) -> set[str]:
        """Nodes appearing on any scenario's shortest paths.

        Huts absent from this set are unused (§4.1): the plan needs no
        equipment there.
        """
        out: set[str] = set()
        for paths in self.scenario_paths.values():
            for path in paths.values():
                out.update(path)
        return out

    def total_fiber_pairs(self) -> int:
        """Sum of leased base fiber-pairs over all ducts."""
        return sum(self.edge_capacity.values())

    def fiber_pair_spans(self) -> int:
        """Base (fiber-pair, span) leases: one per pair per duct."""
        return self.total_fiber_pairs()


@dataclass(frozen=True)
class AmplifierPlan:
    """Algorithm 2's output.

    ``site_counts``
        Amplifiers installed per node — sized for the worst failure scenario
        (each amplifier serves one fiber, in loopback through the site OSS).
    ``assignments``
        (scenario, pair) -> amplification node, for paths that need one.
    """

    site_counts: Mapping[str, int]
    assignments: Mapping[tuple[Scenario, Pair], str]

    @property
    def total_amplifiers(self) -> int:
        """Installed in-line amplifiers across all sites."""
        return sum(self.site_counts.values())

    def site_for(self, scenario: Scenario, pair: Pair) -> str | None:
        """Where (if anywhere) this path amplifies in this scenario."""
        return self.assignments.get((scenario, pair))


@dataclass(frozen=True)
class CutThroughLink:
    """An uninterrupted fiber bypassing switching points (§4.3, App. A).

    ``via``
        The underlying physical node chain, endpoints included.
    ``fiber_pairs``
        Leased pairs, sized (hose max-flow) for the paths that use it.
    ``length_km``
        Total fiber length along the chain.
    """

    via: tuple[str, ...]
    fiber_pairs: int
    length_km: float

    def __post_init__(self) -> None:
        if len(self.via) < 3:
            raise PlanningError("a cut-through must bypass at least one node")
        if self.fiber_pairs <= 0:
            raise PlanningError("a cut-through must carry at least one pair")

    @property
    def endpoints(self) -> tuple[str, str]:
        """The switching points the link joins."""
        return self.via[0], self.via[-1]

    @property
    def spans(self) -> int:
        """Leased spans per fiber-pair: one per underlying duct crossed."""
        return len(self.via) - 1

    @property
    def fiber_pair_spans(self) -> int:
        """Total (fiber-pair, span) leases this link adds."""
        return self.fiber_pairs * self.spans


@dataclass(frozen=True)
class IrisPlan:
    """A complete Iris network plan for a region."""

    region: RegionSpec
    topology: TopologyPlan
    amplifiers: AmplifierPlan
    cut_throughs: tuple[CutThroughLink, ...]
    residual: Mapping[Duct, int]
    effective_paths: Mapping[tuple[Scenario, Pair], EffectivePath]

    # -- provisioning summaries ------------------------------------------------

    def residual_fiber_pairs(self) -> int:
        """Total residual (fractional-capacity) fiber-pair spans (§4.3)."""
        return sum(self.residual.values())

    def total_fiber_pair_spans(self) -> int:
        """All (fiber-pair, span) leases: base + residual + cut-throughs."""
        return (
            self.topology.fiber_pair_spans()
            + self.residual_fiber_pairs()
            + sum(link.fiber_pair_spans for link in self.cut_throughs)
        )

    def duct_fiber_pairs(self) -> dict[Duct, int]:
        """Leased fiber-pairs per duct, all provisioning classes combined."""
        out: dict[Duct, int] = dict(self.topology.edge_capacity)
        for duct, count in self.residual.items():
            out[duct] = out.get(duct, 0) + count
        for link in self.cut_throughs:
            for u, v in zip(link.via, link.via[1:]):
                key = duct_key(u, v)
                out[key] = out.get(key, 0) + link.fiber_pairs
        return {d: c for d, c in out.items() if c > 0}

    # -- failure handling -----------------------------------------------------

    def scenario_for_failures(
        self, failed_ducts: Iterable[tuple[str, str]]
    ) -> Scenario:
        """The enumerated scenario whose paths survive ``failed_ducts``.

        The pruned enumeration guarantees an equivalent scenario exists for
        any failure set within tolerance: starting from the no-failure
        scenario, repeatedly add whichever failed duct the current
        scenario's paths still use; once none is used, those paths are
        valid under the full failure set. Raises :class:`PlanningError`
        when the failure set exceeds the planned tolerance.
        """
        failed = {duct_key(u, v) for u, v in failed_ducts}
        tolerance = self.region.constraints.failure_tolerance
        scenario = Scenario()
        guard = 0
        while True:
            guard += 1
            if guard > len(failed) + 2:
                raise PlanningError("failure-scenario resolution diverged")
            paths = self.topology.scenario_paths.get(scenario)
            if paths is None:
                raise PlanningError(
                    f"failure set {sorted(failed)} has no enumerated "
                    f"scenario (tolerance {tolerance})"
                )
            used = {
                duct_key(u, v)
                for path in paths.values()
                for u, v in zip(path, path[1:])
            }
            conflict = sorted(used & (failed - scenario))
            if not conflict:
                return scenario
            if len(scenario) >= tolerance:
                raise PlanningError(
                    f"failure set {sorted(failed)} exceeds the planned "
                    f"tolerance of {tolerance} cuts"
                )
            scenario = scenario | {conflict[0]}

    # -- validation ---------------------------------------------------------------

    def validate(self) -> list[str]:
        """Constraint violations across every scenario path (empty = valid)."""
        problems: list[str] = []
        sla = self.region.constraints.sla_fiber_km
        for (scenario, pair), path in sorted(
            self.effective_paths.items(),
            key=lambda kv: (len(kv[0][0]), sorted(kv[0][0]), kv[0][1]),
        ):
            for problem in violations(path.profile(), sla_fiber_km=sla):
                problems.append(
                    f"{pair} under {sorted(scenario) or 'no failures'}: {problem}"
                )
        return problems

    # -- cost ---------------------------------------------------------------------

    def inventory(self) -> Inventory:
        """Reduce the plan to the §3.3 component counts.

        Transceivers exist only at the DCs (the whole point of Iris): f x
        lambda per DC, each backed by an electrical switch port. Every
        leased fiber-pair terminates 2 fibers at OSS ports on both ends
        (4 ports per pair per duct, per the §3.4 accounting); in-line
        amplifiers add 2 loopback OSS ports each. Terminal amplifiers: one
        per fiber direction at each DC-terminating fiber-pair, plus the
        in-line sites. DC-internal OSS fan-in (OSS1/OSS2) is tracked
        separately and excluded from headline totals, as in §3.4.
        """
        lam = self.region.wavelengths_per_fiber
        dcs = self.region.dcs
        n = len(dcs)
        dc_transceivers = sum(self.region.fibers(dc) * lam for dc in dcs)

        fiber_pair_spans = self.total_fiber_pair_spans()
        # Base and residual pairs terminate at OSS ports on both ends of
        # every duct (4 unidirectional ports per pair per duct, §3.4).
        # Cut-through pairs cross their interior huts unswitched, so they
        # only pay 4 ports at their endpoints regardless of span count.
        switched_pairs = self.topology.total_fiber_pairs() + self.residual_fiber_pairs()
        cut_through_pairs = sum(link.fiber_pairs for link in self.cut_throughs)
        oss_ports = (
            4 * switched_pairs
            + 4 * cut_through_pairs
            + 2 * self.amplifiers.total_amplifiers
        )

        # Fibers terminating at each DC: its capacity plus one residual per
        # other DC (§4.3's worst-case fractional provisioning).
        dc_terminating_pairs = sum(
            self.region.fibers(dc) + (n - 1) for dc in dcs
        )
        terminal_amps = 2 * dc_terminating_pairs
        amplifiers = terminal_amps + self.amplifiers.total_amplifiers

        # OSS1 (transceiver fan-in) + OSS2 (fiber-level) at the DCs: one
        # input and one output port per transceiver direction.
        dc_oss_ports = 4 * dc_transceivers

        return Inventory(
            dc_transceivers=dc_transceivers,
            dc_electrical_ports=dc_transceivers,
            innetwork_transceivers=0,
            innetwork_electrical_ports=0,
            oss_ports=oss_ports,
            oxc_ports=0,
            amplifiers=amplifiers,
            fiber_pair_spans=fiber_pair_spans,
            dc_oss_ports=dc_oss_ports,
        )
