"""Failure scenarios (OC4): sets of simultaneously cut fiber ducts.

A "fiber cut" destroys a whole duct — every fiber in it (§3.1). The planner
must keep OC1-OC3 holding under any combination of up to ``tolerance`` cuts.
This module provides the brute-force enumeration (used by tests and small
regions); :mod:`repro.core.topology` layers an exact pruning on top for
realistic maps.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.region.fibermap import Duct

#: A failure scenario: the set of ducts cut simultaneously.
Scenario = frozenset


def all_failure_scenarios(
    ducts: Sequence[Duct], tolerance: int
) -> Iterator[Scenario]:
    """Every scenario of 0..``tolerance`` simultaneous duct cuts.

    Yields the no-failure scenario first, then single cuts, then pairs, etc.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    for k in range(tolerance + 1):
        for combo in itertools.combinations(sorted(ducts), k):
            yield Scenario(combo)


def scenario_count(n_ducts: int, tolerance: int) -> int:
    """Number of scenarios brute-force enumeration would visit."""
    total = 0
    for k in range(tolerance + 1):
        c = 1
        for i in range(k):
            c = c * (n_ducts - i) // (i + 1)
        total += c
    return total


def extensions(
    scenario: Scenario, candidate_ducts: Iterable[Duct]
) -> Iterator[Scenario]:
    """Scenarios formed by cutting one more duct from ``candidate_ducts``."""
    for duct in candidate_ducts:
        if duct not in scenario:
            yield scenario | {duct}
