"""repro.api: the consolidated planning surface.

One facade over the three workflows the repo supports — planning a region,
sweeping the Fig 12 design space, and running the flow-level simulation —
with every execution option gathered into a single keyword-only
:class:`PlannerConfig` instead of loose keyword arguments scattered across
entry points::

    from repro.api import PlannerConfig, plan, sweep, simulate

    result = plan(region, config=PlannerConfig(jobs=4))
    records = sweep(points, config=PlannerConfig(jobs=4, store=store))
    outcome = simulate()  # paper-default scenario

Migration from the historical loose-keyword entry points
(:func:`repro.core.planner.plan_region`,
:func:`repro.analysis.designspace.run_sweep` — both still work, emitting
``DeprecationWarning`` when their loose options are passed):

===========================  =============================
old loose keyword            ``PlannerConfig`` field
===========================  =============================
``jobs=4``                   ``jobs=4``
``store=PlanStore(...)``     ``store=PlanStore(...)``
``prune_enumeration=False``  ``prune_enumeration=False``
``validate=False``           ``validate=False``
(not previously exposed)     ``backend="steal"``
(not previously exposed)     ``trace=True``
``REPRO_HOSE_CACHE_MAXSIZE`` ``hose_cache_maxsize=...``
``REPRO_HOSE_STATE_MAXSIZE`` ``hose_state_maxsize=...``
===========================  =============================

The module imports lazily: ``import repro`` pulls in :class:`PlannerConfig`
without loading the planner, simulator, or sweep machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.analysis.designspace import SweepPoint, SweepRecord
    from repro.core.plan import IrisPlan
    from repro.cost.pricebook import PriceBook
    from repro.designs.robust import TrafficEnsembleSpec
    from repro.obs import SpanRecord
    from repro.region.fibermap import RegionSpec
    from repro.simulation.scenarios import ScenarioConfig, ScenarioResult
    from repro.store import PlanStore

__all__ = [
    "PlannerConfig",
    "apply_delta",
    "last_trace",
    "plan",
    "simulate",
    "sweep",
]


@dataclass(frozen=True, kw_only=True)
class PlannerConfig:
    """Every execution option of the planning surface, in one place.

    All fields are keyword-only and the instance is immutable, so a config
    can be built once and shared across :func:`plan` and :func:`sweep`
    calls (it carries no per-run state).

    ``jobs``
        Worker count for scenario/grid-point parallelism: ``1`` (default)
        stays serial and never spawns a pool, ``N > 1`` uses ``N``
        processes, ``0`` uses every CPU. Results are bit-identical across
        values.
    ``backend``
        Execution backend name (``"serial"``, ``"process"``, ``"steal"``;
        see :data:`repro.core.engine.BACKEND_NAMES`). ``None`` picks
        serial for ``jobs=1`` and work-stealing otherwise.
    ``store``
        Optional :class:`repro.store.PlanStore` checkpointing planning
        products; ``jobs``/``backend`` are execution details and never
        part of store keys.
    ``prune_enumeration``
        Use the exact pruned failure enumeration (default). Brute force
        is exponentially slower and only useful to validate the pruning.
    ``validate``
        Check every scenario path against TC1-TC4/OC1 after planning.
    ``trace``
        Run :func:`plan` under :func:`repro.obs.tracing` and keep the
        finished span tree retrievable via :func:`last_trace`. Only
        :func:`plan` honors this; :func:`sweep` ignores it (worker
        shards are merged by the planner itself).
    ``hose_cache_maxsize`` / ``hose_state_maxsize``
        Per-process hose-cache bounds (value-memo entries / residual
        networks kept for incremental repair). ``None`` defers to the
        ``REPRO_HOSE_CACHE_MAXSIZE`` / ``REPRO_HOSE_STATE_MAXSIZE``
        environment fallbacks, then the built-in defaults; an explicit
        value rebuilds the cache via
        :func:`repro.core.hose.configure_hose_cache` before planning.
    ``traffic``
        A :class:`repro.designs.robust.TrafficEnsembleSpec` configuring
        the TM ensemble for ``design="robust"`` (default spec when
        ``None``). Ignored by every other design; unlike ``jobs``, the
        ensemble *is* plan content, so it participates in store keys via
        its digest.
    """

    jobs: int | None = 1
    backend: str | None = None
    store: "PlanStore | None" = None
    prune_enumeration: bool = True
    validate: bool = True
    trace: bool = False
    hose_cache_maxsize: int | None = None
    hose_state_maxsize: int | None = None
    traffic: "TrafficEnsembleSpec | None" = None


_DEFAULT_CONFIG = PlannerConfig()

# Single-slot holder for the most recent trace captured by ``plan(...,
# config=PlannerConfig(trace=True))``; a mutable container rather than a
# rebound module global so readers always see the latest record.
_LAST_TRACE: list = [None]


def last_trace() -> "SpanRecord | None":
    """The span tree of the most recent traced :func:`plan` call, if any."""
    return _LAST_TRACE[0]


def _apply_hose_config(config: PlannerConfig) -> None:
    """Rebuild the hose cache when the config pins explicit bounds."""
    if config.hose_cache_maxsize is None and config.hose_state_maxsize is None:
        return
    from repro.core.hose import configure_hose_cache

    configure_hose_cache(
        maxsize=config.hose_cache_maxsize,
        state_maxsize=config.hose_state_maxsize,
    )


def plan(
    region: "RegionSpec",
    *,
    design: str = "iris",
    config: PlannerConfig | None = None,
    **design_options: Any,
) -> Any:
    """Plan ``region`` under ``design`` with the given ``config``.

    For the default ``design="iris"`` this returns the full
    :class:`~repro.core.plan.IrisPlan` (call ``.inventory()`` for the
    equipment view). Any other registered design kind goes through
    :func:`repro.designs.get_design` and returns its
    :class:`~repro.cost.estimator.Inventory`; extra ``design_options``
    (e.g. ``hubs=`` for ``"centralized"``) are forwarded to the designer.
    """
    config = config or _DEFAULT_CONFIG
    _apply_hose_config(config)
    if config.trace:
        from repro import obs

        with obs.tracing("repro.api.plan") as tracer:
            result = _plan(region, design, config, design_options)
        _LAST_TRACE[0] = tracer.record()
        return result
    return _plan(region, design, config, design_options)


def _plan(
    region: "RegionSpec",
    design: str,
    config: PlannerConfig,
    design_options: dict[str, Any],
) -> Any:
    if design == "iris" and not design_options:
        from repro.core.planner import _plan_region

        return _plan_region(
            region,
            prune_enumeration=config.prune_enumeration,
            validate=config.validate,
            jobs=config.jobs,
            backend=config.backend,
            store=config.store,
        )

    if design == "robust" and not design_options:
        # Like iris, the robust design returns the full IrisPlan from the
        # facade (the registry adapter returns only the Inventory).
        from repro.designs.robust import plan_robust

        return plan_robust(
            region,
            traffic=config.traffic,
            prune_enumeration=config.prune_enumeration,
            validate=config.validate,
            jobs=config.jobs,
            backend=config.backend,
            store=config.store,
        )

    from repro.designs.base import get_design

    options = dict(design_options)
    if design in ("iris", "eps", "hybrid", "robust"):
        options.setdefault("jobs", config.jobs)
        options.setdefault("backend", config.backend)
        options.setdefault("store", config.store)
    if design == "robust" and config.traffic is not None:
        options.setdefault("traffic", config.traffic)
    return get_design(design, **options).plan(region)


def apply_delta(
    plan: "IrisPlan",
    delta: Any,
    *,
    config: PlannerConfig | None = None,
    verify: bool = False,
) -> "IrisPlan":
    """Replan ``plan``'s region under a :class:`repro.region.RegionDelta`.

    The facade over :func:`repro.service.apply_delta`: the result is
    byte-identical (``plan_to_json`` equality) to a cold replan of the
    mutated region, but untouched scenarios, hose flows, and — when the
    topology is unchanged — the whole optical realization are reused
    from ``plan``. ``config`` supplies the execution options exactly as
    for :func:`plan`; ``verify=True`` additionally runs the cold replan
    and raises on any divergence (for tests and drills).
    """
    config = config or _DEFAULT_CONFIG
    _apply_hose_config(config)
    from repro.service.replan import apply_delta as _apply_delta

    return _apply_delta(
        plan,
        delta,
        jobs=config.jobs,
        backend=config.backend,
        prune_enumeration=config.prune_enumeration,
        validate=config.validate,
        verify=verify,
    )


def sweep(
    points: "Iterable[SweepPoint]",
    *,
    prices: "PriceBook | None" = None,
    failure_tolerance: int = 2,
    config: PlannerConfig | None = None,
) -> "list[SweepRecord]":
    """Plan and price the Fig 12 design-space grid (see
    :func:`repro.analysis.designspace._run_sweep` for semantics).

    ``config`` supplies the execution options (``jobs``, ``backend``,
    ``store``, hose-cache bounds); the domain arguments stay positional
    on this facade because they are inputs, not execution details.
    """
    config = config or _DEFAULT_CONFIG
    _apply_hose_config(config)
    from repro.analysis.designspace import _run_sweep

    return _run_sweep(
        points,
        prices=prices,
        failure_tolerance=failure_tolerance,
        jobs=config.jobs,
        backend=config.backend,
        store=config.store,
    )


def simulate(
    scenario: "ScenarioConfig | None" = None,
) -> "ScenarioResult":
    """Run one paired Iris/EPS flow-level scenario (Fig 17/18).

    ``scenario`` is a :class:`repro.simulation.scenarios.ScenarioConfig`
    (paper defaults when ``None``). The simulator takes no execution
    options, so :class:`PlannerConfig` does not apply here; the facade
    exists so all three workflows are importable from one module.
    """
    from repro.simulation.scenarios import ScenarioConfig, run_comparison

    return run_comparison(scenario if scenario is not None else ScenarioConfig())
