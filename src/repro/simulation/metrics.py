"""FCT statistics and the Fig 17/18 slowdown summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError
from repro.simulation.flowsim import FlowRecord
from repro.simulation.workloads import SHORT_FLOW_BYTES


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) with linear interpolation."""
    if not values:
        raise SimulationError("percentile of empty data")
    if not (0.0 <= q <= 100.0):
        raise SimulationError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def finished_fcts(
    records: Sequence[FlowRecord], short_only: bool = False
) -> list[float]:
    """FCTs of finished flows, optionally restricted to short flows."""
    return [
        r.fct
        for r in records
        if r.finished
        and (not short_only or r.size_bytes <= SHORT_FLOW_BYTES)
    ]


@dataclass(frozen=True)
class SlowdownSummary:
    """Iris-vs-EPS FCT comparison at the paper's reporting points."""

    p99_all: float
    p99_short: float
    p50_all: float
    iris_flows: int
    eps_flows: int
    iris_unfinished: int
    eps_unfinished: int

    @property
    def negligible(self) -> bool:
        """The paper's success criterion: <2% slowdown at the 99th pct."""
        return self.p99_all <= 1.02 and self.p99_short <= 1.02


def slowdown_summary(
    iris_records: Sequence[FlowRecord],
    eps_records: Sequence[FlowRecord],
) -> SlowdownSummary:
    """99th/50th-percentile FCT ratios (Iris / EPS baseline)."""
    iris_all = finished_fcts(iris_records)
    eps_all = finished_fcts(eps_records)
    if not iris_all or not eps_all:
        raise SimulationError("need finished flows on both fabrics")
    iris_short = finished_fcts(iris_records, short_only=True)
    eps_short = finished_fcts(eps_records, short_only=True)

    def ratio(a: list[float], b: list[float], q: float) -> float:
        if not a or not b:
            return float("nan")
        denom = percentile(b, q)
        if denom <= 0:
            return float("inf")
        return percentile(a, q) / denom

    return SlowdownSummary(
        p99_all=ratio(iris_all, eps_all, 99.0),
        p99_short=ratio(iris_short, eps_short, 99.0),
        p50_all=ratio(iris_all, eps_all, 50.0),
        iris_flows=len(iris_all),
        eps_flows=len(eps_all),
        iris_unfinished=sum(1 for r in iris_records if not r.finished),
        eps_unfinished=sum(1 for r in eps_records if not r.finished),
    )
