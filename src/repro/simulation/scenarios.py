"""Iris-vs-EPS simulation scenarios (§6.3, Figs 17-18).

One scenario fixes a region model (n DCs of equal capacity), a workload, a
utilization, a traffic-change regime, and a reconfiguration interval. The
same flow trace (identical seed) runs over two fabrics:

* **EPS baseline** — flows constrained only by the hose (per-DC egress and
  ingress capacity); the fabric is non-blocking and needs no circuits.
* **Iris** — additionally constrained per pair by its circuit capacity
  (whole fibers). At every traffic change the controller re-allocates
  fibers proportionally to the new matrix (at least one fiber per pair —
  the residual); pairs whose allocation changes run on their surviving
  fibers (min of old and new) for the 70 ms switch time.

The metric is the ratio of 99th-percentile FCTs (Iris / EPS).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.exceptions import SimulationError
from repro.simulation.flowsim import FluidSimulator, FlowRecord
from repro.simulation.metrics import SlowdownSummary, slowdown_summary
from repro.simulation.traffic import (
    TrafficMatrix,
    heavy_tailed_matrix,
    perturb_matrix,
)
from repro.simulation.workloads import WORKLOADS, FlowSizeDistribution
from repro.units import TWO_HUT_SWITCH_TIME_S

Pair = tuple[str, str]


@dataclass(frozen=True)
class ScenarioConfig:
    """One Fig 17/18 operating point.

    ``max_change``
        Per-step bound on each pair's traffic change (0.5 = 50%), or
        ``None`` for unbounded changes (hot/cold pair swaps).
    ``headroom_fibers``
        Extra fibers allocated per pair beyond the demand ceiling,
        reflecting the paper's "substantial capacity over-provisioning".
    ``traffic_backend``
        ``"poisson"`` (the original per-pair Poisson arrivals) or
        ``"flowgen"`` (the flow-centric generator in
        :mod:`repro.simulation.trafficgen`, composing flow-size,
        interarrival-shape, and pair-locality draws). The default keeps
        the historical flow trace byte-identical.
    ``interarrival``
        Named interarrival shape for the ``flowgen`` backend
        (``poisson``/``smooth``/``bursty``); ignored by the Poisson
        backend.
    """

    n_dcs: int = 6
    dc_capacity_bps: float = 4e9
    fibers_per_dc: int = 8
    utilization: float = 0.4
    workload: str = "web1"
    duration_s: float = 20.0
    change_interval_s: float = 5.0
    max_change: float | None = 0.5
    switch_time_s: float = TWO_HUT_SWITCH_TIME_S
    headroom_fibers: int = 2
    flow_cap_fraction: float = 0.05
    seed: int = 1
    traffic_backend: str = "poisson"
    interarrival: str = "bursty"

    def __post_init__(self) -> None:
        if self.n_dcs < 2:
            raise SimulationError("need at least two DCs")
        if not (0.0 < self.utilization <= 1.0):
            raise SimulationError("utilization must be in (0, 1]")
        if self.workload not in WORKLOADS:
            raise SimulationError(f"unknown workload {self.workload!r}")
        if self.duration_s <= 0 or self.change_interval_s <= 0:
            raise SimulationError("durations must be positive")
        if self.fibers_per_dc < 1:
            raise SimulationError("need at least one fiber per DC")
        if self.traffic_backend not in ("poisson", "flowgen"):
            raise SimulationError(
                f"unknown traffic backend {self.traffic_backend!r}"
            )
        # The interarrival catalogue lives in trafficgen; import lazily so
        # the default Poisson path never touches it.
        if self.traffic_backend == "flowgen":
            from repro.simulation.trafficgen import INTERARRIVALS

            if self.interarrival not in INTERARRIVALS:
                raise SimulationError(
                    f"unknown interarrival shape {self.interarrival!r}"
                )

    @property
    def dcs(self) -> list[str]:
        """The model region's DC names."""
        return [f"DC{i + 1}" for i in range(self.n_dcs)]

    @property
    def fiber_bps(self) -> float:
        """Capacity of one fiber circuit."""
        return self.dc_capacity_bps / self.fibers_per_dc

    @property
    def flow_cap_bps(self) -> float:
        """Per-flow rate limit (the sending server's share of DC capacity).

        Flow rates in a DCI are server-limited, not circuit-limited:
        circuits carry aggregates of many flows. This keeps both fabrics
        serving uncongested flows at the same rate, as in the paper, so
        the comparison isolates reconfiguration effects.
        """
        return self.dc_capacity_bps * self.flow_cap_fraction

    @property
    def distribution(self) -> FlowSizeDistribution:
        """The configured flow-size distribution."""
        return WORKLOADS[self.workload]


@dataclass(frozen=True)
class ScenarioResult:
    """Paired simulation outcome."""

    config: ScenarioConfig
    summary: SlowdownSummary
    reconfigurations: int
    fibers_moved: int
    iris_records: tuple[FlowRecord, ...] = field(repr=False, default=())
    eps_records: tuple[FlowRecord, ...] = field(repr=False, default=())


def pair_loads_bps(
    tm: TrafficMatrix, config: ScenarioConfig
) -> dict[Pair, float]:
    """Offered load per pair, scaled so the busiest DC runs at the target
    utilization of its capacity."""
    busiest = max(tm.dc_load_share(dc) for dc in config.dcs)
    if busiest <= 0:
        raise SimulationError("degenerate traffic matrix")
    scale = config.utilization * config.dc_capacity_bps / busiest
    return {pair: w * scale for pair, w in tm.weights.items()}


def allocate_fibers(
    loads_bps: Mapping[Pair, float], config: ScenarioConfig
) -> dict[Pair, int]:
    """Whole-fiber circuit allocation for a traffic matrix.

    Every pair keeps at least one fiber (the residual guarantees this is
    provisionable); loaded pairs get their ceiling plus headroom.
    """
    allocation: dict[Pair, int] = {}
    for pair, load in loads_bps.items():
        base = math.ceil(load / config.fiber_bps) if load > 0 else 0
        allocation[pair] = max(1, base + (config.headroom_fibers if load > 0 else 0))
    return allocation


def _generate_flows_poisson(
    timeline: list[tuple[float, TrafficMatrix]],
    config: ScenarioConfig,
    rng: random.Random,
) -> list[tuple[float, str, str, int]]:
    """Poisson arrivals per pair following the piecewise-constant TM."""
    dist = config.distribution
    mean_bits = dist.mean_bytes() * 8.0
    flows: list[tuple[float, str, str, int]] = []
    for (t0, tm), (t1, _) in zip(timeline, timeline[1:] + [(config.duration_s, None)]):
        loads = pair_loads_bps(tm, config)
        for pair, load in loads.items():
            rate = load / mean_bits  # flows per second
            if rate <= 0:
                continue
            t = t0
            while True:
                t += rng.expovariate(rate)
                if t >= t1:
                    break
                size_bits = dist.sample(rng) * 8
                flows.append((t, pair[0], pair[1], size_bits))
    flows.sort(key=lambda f: f[0])
    return flows


def _generate_flows_flowgen(
    timeline: list[tuple[float, TrafficMatrix]],
    config: ScenarioConfig,
) -> list[tuple[float, str, str, int]]:
    """Flow-centric arrivals (size x interarrival x locality composition)."""
    from repro.simulation.trafficgen import generate_timeline_flows

    offered = [
        sum(pair_loads_bps(tm, config).values()) for _, tm in timeline
    ]
    return generate_timeline_flows(
        timeline,
        duration_s=config.duration_s,
        offered_bps_per_tm=offered,
        sizes=config.distribution,
        gaps=config.interarrival,
        seed=config.seed,
    )


def _generate_flows(
    timeline: list[tuple[float, TrafficMatrix]],
    config: ScenarioConfig,
    rng: random.Random,
) -> list[tuple[float, str, str, int]]:
    """Dispatch on ``config.traffic_backend``.

    The ``poisson`` branch consumes ``rng`` exactly as it always has, so
    historical flow traces (and their golden pins) are untouched; the
    ``flowgen`` branch derives its own substreams from ``config.seed``
    and leaves ``rng`` unconsumed.
    """
    if config.traffic_backend == "flowgen":
        return _generate_flows_flowgen(timeline, config)
    return _generate_flows_poisson(timeline, config, rng)


def _build_timeline(
    config: ScenarioConfig, tm_rng: random.Random
) -> list[tuple[float, TrafficMatrix]]:
    """Traffic-matrix timeline: change every interval."""
    timeline: list[tuple[float, TrafficMatrix]] = []
    tm = heavy_tailed_matrix(config.dcs, tm_rng)
    t = 0.0
    while t < config.duration_s:
        timeline.append((t, tm))
        tm = perturb_matrix(tm, tm_rng, config.max_change)
        t += config.change_interval_s
    return timeline


def run_comparison(config: ScenarioConfig) -> ScenarioResult:
    """Run one paired Iris/EPS scenario and summarize slowdowns."""
    tm_rng = random.Random(config.seed * 7919 + 1)
    flow_rng = random.Random(config.seed * 104729 + 2)

    timeline = _build_timeline(config, tm_rng)
    flows = _generate_flows(timeline, config, flow_rng)
    if not flows:
        raise SimulationError("scenario generated no flows; raise utilization")

    dc_caps = {dc: config.dc_capacity_bps for dc in config.dcs}

    # EPS: hose constraints only (plus the server-side flow cap).
    eps = FluidSimulator(
        egress_bps=dc_caps, flow_cap_bps=config.flow_cap_bps
    ).run(flows)

    # Iris: per-pair circuits, re-allocated at every change.
    first_alloc = allocate_fibers(pair_loads_bps(timeline[0][1], config), config)
    pair_caps = {p: n * config.fiber_bps for p, n in first_alloc.items()}
    capacity_events: list[tuple[float, dict[Pair, float]]] = []
    reconfigs = 0
    fibers_moved = 0
    current = first_alloc
    for t0, tm_k in timeline[1:]:
        new_alloc = allocate_fibers(pair_loads_bps(tm_k, config), config)
        changed = {
            p: (current.get(p, 0), new_alloc.get(p, 0))
            for p in sorted(set(current) | set(new_alloc))
            if current.get(p, 0) != new_alloc.get(p, 0)
        }
        if changed:
            reconfigs += 1
            fibers_moved += sum(abs(a - b) for a, b in changed.values())
            # During the switch, a changed pair runs on its surviving fibers.
            dark = {
                p: min(a, b) * config.fiber_bps for p, (a, b) in changed.items()
            }
            after = {p: b * config.fiber_bps for p, (_, b) in changed.items()}
            capacity_events.append((t0, dark))
            capacity_events.append((t0 + config.switch_time_s, after))
        current = new_alloc

    iris = FluidSimulator(
        egress_bps=dc_caps,
        pair_caps_bps=pair_caps,
        capacity_events=capacity_events,
        flow_cap_bps=config.flow_cap_bps,
    ).run(flows)

    return ScenarioResult(
        config=config,
        summary=slowdown_summary(iris, eps),
        reconfigurations=reconfigs,
        fibers_moved=fibers_moved,
        iris_records=tuple(iris),
        eps_records=tuple(eps),
    )


def run_robust_comparison(
    config: ScenarioConfig, ensemble: Sequence[TrafficMatrix]
) -> ScenarioResult:
    """Run a METTEOR-style *robust-static* variant of the scenario.

    The fabric is provisioned once for the whole ensemble — every pair
    gets the maximum circuit allocation any ensemble member demands — and
    then never reconfigured: no capacity events, no switch-time dark
    periods. The flow trace is identical to :func:`run_comparison` for
    the same config, so the FCT comparison isolates the robust topology's
    value (over-provisioned circuits vs. reconfiguration churn).
    """
    if not ensemble:
        raise SimulationError("robust comparison needs a non-empty ensemble")
    tm_rng = random.Random(config.seed * 7919 + 1)
    flow_rng = random.Random(config.seed * 104729 + 2)

    timeline = _build_timeline(config, tm_rng)
    flows = _generate_flows(timeline, config, flow_rng)
    if not flows:
        raise SimulationError("scenario generated no flows; raise utilization")

    dc_caps = {dc: config.dc_capacity_bps for dc in config.dcs}
    eps = FluidSimulator(
        egress_bps=dc_caps, flow_cap_bps=config.flow_cap_bps
    ).run(flows)

    # Robust allocation: per-pair max over the ensemble's demands.
    robust_alloc: dict[Pair, int] = {}
    for tm in ensemble:
        for pair, n in allocate_fibers(pair_loads_bps(tm, config), config).items():
            robust_alloc[pair] = max(robust_alloc.get(pair, 0), n)
    pair_caps = {p: n * config.fiber_bps for p, n in robust_alloc.items()}

    robust = FluidSimulator(
        egress_bps=dc_caps,
        pair_caps_bps=pair_caps,
        flow_cap_bps=config.flow_cap_bps,
    ).run(flows)

    return ScenarioResult(
        config=config,
        summary=slowdown_summary(robust, eps),
        reconfigurations=0,
        fibers_moved=0,
        iris_records=tuple(robust),
        eps_records=tuple(eps),
    )


def sweep_change_intervals(
    intervals_s: list[float],
    base: ScenarioConfig,
) -> list[ScenarioResult]:
    """The Fig 17 x-axis sweep at one (utilization, change-bound) panel."""
    return [
        run_comparison(replace(base, change_interval_s=interval))
        for interval in intervals_s
    ]


def repeat_comparison(
    base: ScenarioConfig, seeds: list[int]
) -> list[ScenarioResult]:
    """Run the same operating point across seeds (variance estimation).

    The paper reports results "collected over multiple day-long runs"; at
    reduced scale, seed repetition is the analogous robustness check.
    """
    if not seeds:
        raise SimulationError("need at least one seed")
    return [run_comparison(replace(base, seed=seed)) for seed in seeds]
