"""Empirical flow-size distributions (§6.3, Fig 18).

The paper stresses Iris with intra-DC-style workloads dominated by short
flows: ``web1`` is the pFabric web-search distribution [4]; ``web2``,
``hadoop``, and ``cache`` are from Facebook's datacenter study [41]. The
published CDFs are approximated piecewise-linearly (log-size interpolation);
the shapes — medians well under 100 KB with multi-megabyte tails — are what
matters for the reconfiguration stress test.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass

from repro.exceptions import SimulationError

#: Flows below this are "short flows" in the paper's slowdown plots.
SHORT_FLOW_BYTES = 50_000


@dataclass(frozen=True)
class FlowSizeDistribution:
    """A piecewise-linear CDF over flow sizes in bytes.

    ``points`` are (size_bytes, cdf) knots with cdf non-decreasing from 0
    to 1. Sampling interpolates linearly in log(size) between knots, which
    matches how such CDFs are drawn and keeps heavy tails heavy.
    """

    name: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise SimulationError("distribution needs at least two knots")
        sizes = [s for s, _ in self.points]
        cdfs = [c for _, c in self.points]
        if any(s <= 0 for s in sizes):
            raise SimulationError("sizes must be positive")
        if sizes != sorted(sizes) or cdfs != sorted(cdfs):
            raise SimulationError("knots must be non-decreasing")
        if abs(cdfs[0]) > 1e-9 or abs(cdfs[-1] - 1.0) > 1e-9:
            raise SimulationError("CDF must run from 0 to 1")

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (inverse-transform sampling)."""
        u = rng.random()
        cdfs = [c for _, c in self.points]
        i = bisect.bisect_right(cdfs, u)
        if i == 0:
            return int(self.points[0][0])
        if i >= len(self.points):
            return int(self.points[-1][0])
        (s0, c0), (s1, c1) = self.points[i - 1], self.points[i]
        if c1 == c0:
            return int(s0)
        frac = (u - c0) / (c1 - c0)
        log_size = math.log(s0) + frac * (math.log(s1) - math.log(s0))
        return max(1, int(round(math.exp(log_size))))

    def mean_bytes(self) -> float:
        """Mean flow size under log-linear interpolation (log-mean of each
        segment weighted by its probability mass — adequate for calibrating
        offered load)."""
        total = 0.0
        for (s0, c0), (s1, c1) in zip(self.points, self.points[1:]):
            mass = c1 - c0
            if mass <= 0:
                continue
            total += mass * math.exp((math.log(s0) + math.log(s1)) / 2.0)
        return total

    def short_flow_fraction(self, threshold: int = SHORT_FLOW_BYTES) -> float:
        """CDF value at the short-flow threshold (linear interpolation)."""
        sizes = [s for s, _ in self.points]
        i = bisect.bisect_right(sizes, threshold)
        if i == 0:
            return 0.0
        if i >= len(self.points):
            return 1.0
        (s0, c0), (s1, c1) = self.points[i - 1], self.points[i]
        frac = (math.log(threshold) - math.log(s0)) / (math.log(s1) - math.log(s0))
        return c0 + frac * (c1 - c0)


#: pFabric web search [4]: ~30% mice, very heavy tail to 30 MB.
WEB1 = FlowSizeDistribution(
    name="web1",
    points=(
        (1_000, 0.0),
        (6_000, 0.15),
        (13_000, 0.30),
        (19_000, 0.45),
        (33_000, 0.53),
        (53_000, 0.60),
        (133_000, 0.70),
        (667_000, 0.80),
        (1_333_000, 0.90),
        (6_667_000, 0.95),
        (30_000_000, 1.0),
    ),
)

#: Facebook web servers [41]: dominated by sub-KB requests.
WEB2 = FlowSizeDistribution(
    name="web2",
    points=(
        (70, 0.0),
        (300, 0.30),
        (1_000, 0.55),
        (3_000, 0.70),
        (10_000, 0.83),
        (30_000, 0.90),
        (100_000, 0.95),
        (1_000_000, 0.99),
        (10_000_000, 1.0),
    ),
)

#: Facebook Hadoop [41]: small control messages plus bulk shuffles.
HADOOP = FlowSizeDistribution(
    name="hadoop",
    points=(
        (100, 0.0),
        (300, 0.35),
        (1_000, 0.50),
        (3_000, 0.65),
        (10_000, 0.80),
        (100_000, 0.92),
        (1_000_000, 0.96),
        (10_000_000, 0.99),
        (300_000_000, 1.0),
    ),
)

#: Facebook cache followers [41].
CACHE = FlowSizeDistribution(
    name="cache",
    points=(
        (50, 0.0),
        (100, 0.10),
        (1_000, 0.50),
        (10_000, 0.85),
        (100_000, 0.95),
        (1_000_000, 0.99),
        (10_000_000, 1.0),
    ),
)

WORKLOADS: dict[str, FlowSizeDistribution] = {
    d.name: d for d in (WEB1, WEB2, HADOOP, CACHE)
}
