"""Flow-level impact of a fiber cut on a running Iris fabric (OC4 end to end).

Algorithm 1 provisions capacity so that, after a tolerated duct cut, every
DC pair still has a shortest surviving path at full hose capacity. The
transient is the controller's failover: circuits on the cut duct are dark
until the OSSes re-switch them onto the surviving scenario paths (one switch
time). This module measures what applications see across that transient.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.simulation.flowsim import FluidSimulator, FlowRecord
from repro.simulation.metrics import percentile
from repro.simulation.workloads import WORKLOADS
from repro.units import TWO_HUT_SWITCH_TIME_S

Pair = tuple[str, str]


@dataclass(frozen=True)
class FailoverConfig:
    """One duct-cut experiment.

    ``affected_pairs``
        The DC pairs whose circuits ride the duct that gets cut.
    ``failure_time_s`` / ``switch_time_s``
        When the cut happens and how long circuits stay dark before the
        controller's reconfiguration restores them on surviving paths.
    """

    n_dcs: int = 4
    dc_capacity_bps: float = 4e9
    fibers_per_dc: int = 8
    utilization: float = 0.4
    workload: str = "web1"
    duration_s: float = 10.0
    failure_time_s: float = 4.0
    switch_time_s: float = TWO_HUT_SWITCH_TIME_S
    affected_fraction: float = 0.4
    flow_cap_fraction: float = 0.05
    seed: int = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.failure_time_s < self.duration_s):
            raise SimulationError("failure must happen mid-run")
        if not (0.0 < self.affected_fraction <= 1.0):
            raise SimulationError("affected fraction must be in (0, 1]")

    @property
    def dcs(self) -> list[str]:
        """The model region's DC names."""
        return [f"DC{i + 1}" for i in range(self.n_dcs)]


@dataclass(frozen=True)
class FailoverResult:
    """FCT impact of the cut, against an uncut baseline of the same trace."""

    affected_pairs: tuple[Pair, ...]
    p99_ratio: float
    p99_affected_ratio: float
    max_extra_fct_s: float
    unfinished: int


def run_failover(config: FailoverConfig) -> FailoverResult:
    """Simulate one tolerated duct cut and its 70 ms failover transient."""
    rng = random.Random(config.seed * 7 + 3)
    dist = WORKLOADS[config.workload]
    mean_bits = dist.mean_bytes() * 8.0

    pairs = [
        (a, b)
        for i, a in enumerate(config.dcs)
        for b in config.dcs[i + 1 :]
    ]
    n_affected = max(1, round(len(pairs) * config.affected_fraction))
    affected = tuple(sorted(rng.sample(pairs, n_affected)))

    per_pair_load = (
        config.utilization * config.dc_capacity_bps / (config.n_dcs - 1)
    )
    flows: list[tuple[float, str, str, int]] = []
    for pair in pairs:
        rate = per_pair_load / mean_bits
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= config.duration_s:
                break
            flows.append((t, pair[0], pair[1], dist.sample(rng) * 8))
    if not flows:
        raise SimulationError("no flows generated; raise utilization")

    dc_caps = {dc: config.dc_capacity_bps for dc in config.dcs}
    fiber_bps = config.dc_capacity_bps / config.fibers_per_dc
    base_caps = {pair: config.dc_capacity_bps for pair in pairs}
    flow_cap = config.dc_capacity_bps * config.flow_cap_fraction

    baseline = FluidSimulator(
        egress_bps=dc_caps,
        pair_caps_bps=dict(base_caps),
        flow_cap_bps=flow_cap,
    ).run(flows)

    # The cut: affected circuits dark, then fully restored on scenario
    # paths (Algorithm 1 provisioned the detour at full capacity).
    events = [
        (config.failure_time_s, {p: 0.0 for p in affected}),
        (
            config.failure_time_s + config.switch_time_s,
            {p: base_caps[p] for p in affected},
        ),
    ]
    with_cut = FluidSimulator(
        egress_bps=dc_caps,
        pair_caps_bps=dict(base_caps),
        capacity_events=events,
        flow_cap_bps=flow_cap,
    ).run(flows)

    def fcts(records: list[FlowRecord], only_affected: bool) -> list[float]:
        return [
            r.fct
            for r in records
            if r.finished
            and (not only_affected or (r.src, r.dst) in affected
                 or (r.dst, r.src) in affected)
        ]

    base_all, cut_all = fcts(baseline, False), fcts(with_cut, False)
    base_aff, cut_aff = fcts(baseline, True), fcts(with_cut, True)
    extra = max(
        (c.fct - b.fct)
        for b, c in zip(
            sorted(baseline, key=lambda r: (r.t_arrive, r.size_bits)),
            sorted(with_cut, key=lambda r: (r.t_arrive, r.size_bits)),
        )
        if b.finished and c.finished
    )
    return FailoverResult(
        affected_pairs=affected,
        p99_ratio=percentile(cut_all, 99) / percentile(base_all, 99),
        p99_affected_ratio=(
            percentile(cut_aff, 99) / percentile(base_aff, 99)
            if base_aff and cut_aff
            else float("nan")
        ),
        max_extra_fct_s=extra,
        unfinished=sum(1 for r in with_cut if not r.finished),
    )
