"""Region-scale flow-level simulation (§6.3, Figs 17-18)."""

from repro.simulation.workloads import WORKLOADS, FlowSizeDistribution
from repro.simulation.traffic import (
    TrafficMatrix,
    heavy_tailed_matrix,
    perturb_matrix,
    sample_ensemble,
)
from repro.simulation.flowsim import FlowRecord, FluidSimulator, compute_rates
from repro.simulation.metrics import percentile, slowdown_summary
from repro.simulation.scenarios import (
    ScenarioConfig,
    ScenarioResult,
    run_comparison,
    run_robust_comparison,
)
from repro.simulation.trafficgen import (
    INTERARRIVALS,
    FlowGenerator,
    InterarrivalDistribution,
    flow_stream_digest,
)

__all__ = [
    "WORKLOADS",
    "FlowSizeDistribution",
    "TrafficMatrix",
    "heavy_tailed_matrix",
    "perturb_matrix",
    "sample_ensemble",
    "FlowRecord",
    "FluidSimulator",
    "compute_rates",
    "percentile",
    "slowdown_summary",
    "ScenarioConfig",
    "ScenarioResult",
    "run_comparison",
    "run_robust_comparison",
    "INTERARRIVALS",
    "FlowGenerator",
    "InterarrivalDistribution",
    "flow_stream_digest",
]
