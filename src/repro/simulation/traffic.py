"""DC-DC traffic matrices and their evolution (§6.3).

"Based on experience, we use heavy-tailed traffic between DCs, with a few
pairs exchanging most of the traffic; unbounded changes in traffic patterns
occur when, e.g., a low-traffic DC-DC pair becomes a high-traffic one.
Otherwise, we bound the changes to a maximum % value."
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import SimulationError
from repro.region.fibermap import pair_key

Pair = tuple[str, str]


@dataclass(frozen=True)
class TrafficMatrix:
    """Normalized pair weights: the share of total regional traffic."""

    weights: Mapping[Pair, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise SimulationError("traffic matrix cannot be empty")
        if any(w < 0 for w in self.weights.values()):
            raise SimulationError("weights must be non-negative")
        total = sum(self.weights.values())
        if not (0.999 <= total <= 1.001):
            raise SimulationError(f"weights must sum to 1, got {total}")

    def pairs(self) -> list[Pair]:
        """All pairs carrying weight, canonically ordered."""
        return sorted(self.weights)

    def weight(self, a: str, b: str) -> float:
        """This pair's share of regional traffic."""
        return self.weights.get(pair_key(a, b), 0.0)

    def dc_load_share(self, dc: str) -> float:
        """Fraction of regional traffic entering or leaving ``dc``."""
        return sum(w for pair, w in self.weights.items() if dc in pair)

    def top_heavy_fraction(self, k: int = 3) -> float:
        """Traffic share of the k busiest pairs (heavy-tail diagnostic)."""
        ranked = sorted(self.weights.values(), reverse=True)
        return sum(ranked[:k])

    def relabel(self, mapping: Mapping[str, str]) -> "TrafficMatrix":
        """The same matrix with DCs renamed through a bijection.

        Robust-design capacity plans must be equivariant under relabeling
        (renaming DCs renames the plan, nothing more); this is the test
        harness's handle on that symmetry.
        """
        values = list(mapping.values())
        if len(set(values)) != len(values):
            raise SimulationError("relabeling must be a bijection")
        raw: dict[Pair, float] = {}
        for (a, b), w in self.weights.items():
            raw[pair_key(mapping.get(a, a), mapping.get(b, b))] = w
        if len(raw) != len(self.weights):
            raise SimulationError("relabeling collapsed distinct pairs")
        return TrafficMatrix(weights=raw)


def _normalized(raw: Mapping[Pair, float]) -> TrafficMatrix:
    total = sum(raw.values())
    if total <= 0:
        raise SimulationError("cannot normalize all-zero weights")
    return TrafficMatrix(weights={p: w / total for p, w in raw.items()})


def heavy_tailed_matrix(
    dcs: Sequence[str], rng: random.Random, skew: float = 1.4
) -> TrafficMatrix:
    """A Zipf-over-pairs matrix: a few pairs exchange most of the traffic.

    Pair ranks are shuffled so the hot pairs differ across seeds.
    """
    if len(dcs) < 2:
        raise SimulationError("need at least two DCs")
    if skew <= 0:
        raise SimulationError("skew must be positive")
    pairs = [pair_key(a, b) for a, b in itertools.combinations(sorted(dcs), 2)]
    rng.shuffle(pairs)
    raw = {pair: 1.0 / (rank + 1) ** skew for rank, pair in enumerate(pairs)}
    return _normalized(raw)


def perturb_matrix(
    tm: TrafficMatrix,
    rng: random.Random,
    max_change: float | None,
) -> TrafficMatrix:
    """One traffic change step.

    ``max_change`` bounds each pair's multiplicative change (0.5 = ±50%);
    ``None`` means *unbounded*: besides re-jittering, a cold pair swaps
    weights with a hot pair — the paper's "a low-traffic DC-DC pair becomes
    a high-traffic one".
    """
    weights = dict(tm.weights)
    if max_change is not None:
        if max_change < 0:
            raise SimulationError("max_change must be non-negative")
        raw = {
            pair: w * (1.0 + rng.uniform(-max_change, max_change))
            for pair, w in weights.items()
        }
        return _normalized(raw)

    # Unbounded: full rejitter plus a hot/cold swap.
    raw = {pair: w * rng.uniform(0.5, 2.0) for pair, w in weights.items()}
    ranked = sorted(raw, key=lambda p: raw[p])
    if len(ranked) >= 2:
        cold, hot = ranked[0], ranked[-1]
        raw[cold], raw[hot] = raw[hot], raw[cold]
    return _normalized(raw)


def sample_ensemble(
    dcs: Sequence[str],
    rng: random.Random,
    *,
    count: int = 5,
    skew: float = 1.4,
    max_change: float | None = 0.5,
) -> list[TrafficMatrix]:
    """A TM ensemble for robust (METTEOR-style) planning.

    The first matrix is a fresh heavy-tailed draw; each subsequent one is
    a perturbation step of its predecessor, so the ensemble spans the
    trajectory of plausible operating points rather than ``count``
    unrelated draws. Consumes only the explicit ``rng``.
    """
    if count < 1:
        raise SimulationError("ensemble needs at least one matrix")
    tms = [heavy_tailed_matrix(dcs, rng, skew=skew)]
    for _ in range(count - 1):
        tms.append(perturb_matrix(tms[-1], rng, max_change))
    return tms
