"""Flow-centric traffic generation (after Parsonson et al.).

*Traffic Generation for Benchmarking Data Centre Networks* observes that
realistic DCN traffic is characterized by three marginal distributions —
flow size, flow interarrival time, and source-destination locality — and
that benchmarking workloads should compose empirically-fit versions of the
three into one reproducible flow stream. This module is that composition
for the region simulator:

* **flow sizes** come from the §6.3 workload CDFs
  (:mod:`repro.simulation.workloads`: web1/web2/hadoop/cache);
* **interarrival gaps** come from named :class:`InterarrivalDistribution`
  shapes, rescaled by their exact mean to hit the target arrival rate —
  memoryless ``poisson``,
  low-variance ``smooth``, and the heavy-tailed ``bursty`` shape the paper
  reports for real DCNs (most gaps tiny, rare long silences);
* **pair locality** comes from a :class:`~repro.simulation.traffic.
  TrafficMatrix` (heavy-tailed DC-DC weights), sampled by inverse
  transform over the canonically ordered pairs.

Seeding contract
----------------

Every sampler takes an explicit :class:`random.Random` — no function in
this module reads or writes global RNG state (reprolint R001, regression-
tested). A :class:`FlowGenerator` derives its private stream from an
integer seed; the per-flow draw order (gap, then pair, then size) is fixed,
and all structures are iterated in canonical order, so a given seed yields
the same flow stream on every platform, process, and ``jobs=`` setting.
:func:`encode_flow_stream` renders a stream to canonical bytes (shortest
round-trip float ``repr``) and :func:`flow_stream_digest` hashes them, so
tests can assert byte identity across processes.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import SimulationError
from repro.simulation.traffic import TrafficMatrix
from repro.simulation.workloads import WORKLOADS, FlowSizeDistribution

Pair = tuple[str, str]

#: One generated flow: (arrival time s, src DC, dst DC, size bits).
Flow = tuple[float, str, str, int]


@dataclass(frozen=True)
class InterarrivalDistribution:
    """A piecewise-linear CDF over flow interarrival gaps.

    ``points`` are (gap, cdf) knots with gaps in units of the *mean* gap
    (the generator rescales by the target arrival rate). The inverse CDF
    interpolates linearly in log(gap) between knots — the same heavy-tail-
    preserving scheme as the flow-size CDFs — and :meth:`mean` integrates
    each log-linear segment exactly (the logarithmic mean), so rescaling
    by ``mean()`` hits the target offered load without bias.
    """

    name: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise SimulationError("distribution needs at least two knots")
        gaps = [g for g, _ in self.points]
        cdfs = [c for _, c in self.points]
        if any(g <= 0 for g in gaps):
            raise SimulationError("gaps must be positive")
        if gaps != sorted(gaps) or cdfs != sorted(cdfs):
            raise SimulationError("knots must be non-decreasing")
        if abs(cdfs[0]) > 1e-9 or abs(cdfs[-1] - 1.0) > 1e-9:
            raise SimulationError("CDF must run from 0 to 1")

    def quantile(self, u: float) -> float:
        """The inverse CDF at ``u`` in [0, 1) (deterministic, no RNG)."""
        if not (0.0 <= u < 1.0):
            raise SimulationError("quantile argument must be in [0, 1)")
        cdfs = [c for _, c in self.points]
        i = bisect.bisect_right(cdfs, u)
        if i == 0:
            return self.points[0][0]
        if i >= len(self.points):
            return self.points[-1][0]
        (g0, c0), (g1, c1) = self.points[i - 1], self.points[i]
        if c1 == c0:
            return g0
        frac = (u - c0) / (c1 - c0)
        return math.exp(math.log(g0) + frac * (math.log(g1) - math.log(g0)))

    def sample(self, rng: random.Random) -> float:
        """Draw one gap (in mean-gap units) via inverse transform."""
        return self.quantile(rng.random())

    def mean(self) -> float:
        """Exact mean under log-linear interpolation.

        Within a segment the sampled value is ``g0 * (g1/g0)**U`` with
        ``U`` uniform, whose mean is the logarithmic mean
        ``(g1 - g0) / ln(g1/g0)``; segments are weighted by their
        probability mass.
        """
        total = 0.0
        for (g0, c0), (g1, c1) in zip(self.points, self.points[1:]):
            mass = c1 - c0
            if mass <= 0:
                continue
            if g1 == g0:
                total += mass * g0
            else:
                total += mass * (g1 - g0) / (math.log(g1) - math.log(g0))
        return total


@dataclass(frozen=True)
class ExponentialInterarrival:
    """The memoryless baseline: unit-mean exponential gaps.

    Kept exact (``-log(1 - u)``) rather than approximated by knots, so the
    ``poisson`` backend of the generator reproduces the classic Poisson
    process; :meth:`quantile` and :meth:`sample` share one code path so
    golden quantile pins cover the sampling transform.
    """

    name: str = "poisson"

    def quantile(self, u: float) -> float:
        """The exponential inverse CDF at ``u`` in [0, 1)."""
        if not (0.0 <= u < 1.0):
            raise SimulationError("quantile argument must be in [0, 1)")
        return -math.log(1.0 - u)

    def sample(self, rng: random.Random) -> float:
        """Draw one unit-mean exponential gap."""
        return self.quantile(rng.random())

    def mean(self) -> float:
        """Unit mean, by construction."""
        return 1.0


#: Near-deterministic gaps (CV << 1): a smooth, paced arrival process.
IA_SMOOTH = InterarrivalDistribution(
    name="smooth",
    points=(
        (0.50, 0.0),
        (0.75, 0.20),
        (0.95, 0.45),
        (1.10, 0.70),
        (1.40, 0.90),
        (1.90, 1.0),
    ),
)

#: Heavy-tailed gaps (CV > 1): trains of back-to-back flows separated by
#: rare long silences — the bursty shape Parsonson et al. fit to real DCN
#: traces. Knots are in mean-gap units; ~70% of gaps are under a tenth of
#: the mean while the top 2% stretch past ten means.
IA_BURSTY = InterarrivalDistribution(
    name="bursty",
    points=(
        (0.004, 0.0),
        (0.02, 0.30),
        (0.08, 0.55),
        (0.30, 0.70),
        (1.00, 0.82),
        (3.00, 0.92),
        (10.00, 0.98),
        (60.00, 1.0),
    ),
)

#: The named interarrival shapes pluggable into :class:`FlowGenerator`.
INTERARRIVALS: dict[str, InterarrivalDistribution | ExponentialInterarrival] = {
    dist.name: dist
    for dist in (ExponentialInterarrival(), IA_SMOOTH, IA_BURSTY)
}


@dataclass(frozen=True)
class PairLocality:
    """Inverse-transform sampler over a traffic matrix's DC pairs.

    Pairs are held in canonical (sorted) order with their cumulative
    weights, so sampling is a single ``rng.random()`` plus a bisect and
    the draw sequence is independent of dict insertion order.
    """

    pairs: tuple[Pair, ...]
    cumulative: tuple[float, ...]

    @classmethod
    def from_matrix(cls, tm: TrafficMatrix) -> "PairLocality":
        """Build the sampler from a normalized :class:`TrafficMatrix`."""
        pairs = tuple(tm.pairs())
        cum: list[float] = []
        total = 0.0
        for pair in pairs:
            total += tm.weights[pair]
            cum.append(total)
        return cls(pairs=pairs, cumulative=tuple(cum))

    def sample(self, rng: random.Random) -> Pair:
        """Draw one DC pair with probability proportional to its weight."""
        u = rng.random() * self.cumulative[-1]
        i = bisect.bisect_right(self.cumulative, u)
        return self.pairs[min(i, len(self.pairs) - 1)]


def derive_seed(seed: int, *salt: int) -> int:
    """A derived substream seed: stable, collision-resistant, platform-free.

    Hashing the (seed, salt) tuple through SHA-256 avoids the correlated
    streams that arithmetic like ``seed * k + i`` produces for adjacent
    seeds, and keeps substreams (e.g. per timeline interval) independent
    of each other's consumption.
    """
    text = ":".join(str(part) for part in (seed, *salt))
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


def exact_mean_bytes(sizes: FlowSizeDistribution) -> float:
    """The exact mean of the log-interpolated size sampler.

    Within a CDF segment the sampled size is ``s0 * (s1/s0)**U`` with
    ``U`` uniform, whose mean is the logarithmic mean
    ``(s1 - s0) / ln(s1/s0)`` — not the geometric midpoint that
    :meth:`FlowSizeDistribution.mean_bytes` uses as a summary statistic.
    The generator calibrates its arrival rate with this exact value so
    the realized bit-rate matches the offered load without the
    midpoint approximation's heavy-tail bias (~25% on ``cache``).
    """
    total = 0.0
    for (s0, c0), (s1, c1) in zip(sizes.points, sizes.points[1:]):
        mass = c1 - c0
        if mass <= 0:
            continue
        if s1 == s0:
            total += mass * s0
        else:
            total += mass * (s1 - s0) / (math.log(s1) - math.log(s0))
    return total


class FlowGenerator:
    """A seeded flow-centric stream: size x interarrival x locality.

    ``sizes``
        A :class:`~repro.simulation.workloads.FlowSizeDistribution`
        (or a workload name from ``WORKLOADS``).
    ``gaps``
        An interarrival shape (or a name from :data:`INTERARRIVALS`).
    ``locality``
        The :class:`TrafficMatrix` weighting DC pairs.
    ``seed``
        The integer stream seed; identical seeds give byte-identical
        streams (see :func:`flow_stream_digest`).
    """

    def __init__(
        self,
        *,
        sizes: FlowSizeDistribution | str,
        gaps: InterarrivalDistribution | ExponentialInterarrival | str = "bursty",
        locality: TrafficMatrix,
        seed: int = 1,
    ) -> None:
        if isinstance(sizes, str):
            if sizes not in WORKLOADS:
                raise SimulationError(f"unknown workload {sizes!r}")
            sizes = WORKLOADS[sizes]
        if isinstance(gaps, str):
            if gaps not in INTERARRIVALS:
                raise SimulationError(
                    f"unknown interarrival shape {gaps!r}; "
                    f"available: {', '.join(sorted(INTERARRIVALS))}"
                )
            gaps = INTERARRIVALS[gaps]
        self.sizes = sizes
        self.gaps = gaps
        self.locality = PairLocality.from_matrix(locality)
        self.seed = seed
        self._rng = random.Random(derive_seed(seed, 0xF10))

    def flows(
        self,
        *,
        duration_s: float,
        offered_bps: float,
        t0: float = 0.0,
    ) -> list[Flow]:
        """Generate the stream for ``[t0, t0 + duration_s)``.

        ``offered_bps`` is the aggregate offered load across all pairs;
        the arrival rate is ``offered_bps / mean flow bits`` and each
        gap is one interarrival draw scaled to that rate. Per flow the
        draw order is gap, pair, size — fixed, so streams are
        reproducible byte-for-byte from the seed.
        """
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        if offered_bps <= 0:
            raise SimulationError("offered load must be positive")
        mean_bits = exact_mean_bytes(self.sizes) * 8.0
        rate = offered_bps / mean_bits  # aggregate flows per second
        gap_scale = 1.0 / (rate * self.gaps.mean())
        rng = self._rng
        out: list[Flow] = []
        t = t0
        end = t0 + duration_s
        while True:
            t += self.gaps.sample(rng) * gap_scale
            if t >= end:
                break
            src, dst = self.locality.sample(rng)
            size_bits = self.sizes.sample(rng) * 8
            out.append((t, src, dst, size_bits))
        return out


def encode_flow_stream(flows: Iterable[Flow]) -> bytes:
    """Canonical bytes of a flow stream (one ``repr(t) src dst bits`` line
    per flow). Float ``repr`` is the shortest exact round-trip form, so
    identical streams encode to identical bytes on every platform."""
    lines = [f"{t!r} {src} {dst} {size}" for t, src, dst, size in flows]
    return ("\n".join(lines) + "\n").encode("utf-8")


def flow_stream_digest(flows: Iterable[Flow]) -> str:
    """Hex SHA-256 of :func:`encode_flow_stream` — the stream's identity."""
    return hashlib.sha256(encode_flow_stream(flows)).hexdigest()


def generate_timeline_flows(
    timeline: Sequence[tuple[float, TrafficMatrix]],
    *,
    duration_s: float,
    offered_bps_per_tm: Sequence[float],
    sizes: FlowSizeDistribution | str,
    gaps: InterarrivalDistribution | ExponentialInterarrival | str,
    seed: int,
) -> list[Flow]:
    """A flow stream following a piecewise-constant traffic-matrix timeline.

    ``timeline`` holds (start time, matrix) entries sorted by start time;
    ``offered_bps_per_tm`` the aggregate offered load of each interval.
    Each interval runs an independent substream (seed derived from
    ``seed`` and the interval index), so inserting or resizing one
    interval leaves the others' flows untouched.
    """
    if len(timeline) != len(offered_bps_per_tm):
        raise SimulationError("timeline and offered loads must align")
    flows: list[Flow] = []
    starts = [t for t, _ in timeline]
    ends = starts[1:] + [duration_s]
    for index, ((t0, tm), t1, offered) in enumerate(
        zip(timeline, ends, offered_bps_per_tm)
    ):
        if t1 <= t0:
            continue
        generator = FlowGenerator(
            sizes=sizes,
            gaps=gaps,
            locality=tm,
            seed=derive_seed(seed, index),
        )
        flows.extend(
            generator.flows(
                duration_s=t1 - t0, offered_bps=offered, t0=t0
            )
        )
    flows.sort(key=lambda f: f[0])
    return flows
