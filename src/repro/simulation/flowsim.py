"""Event-driven fluid (flow-level) simulator with max-min fair sharing.

The §6.3 methodology: flows arrive per a traffic process, share the network
under max-min fairness subject to three constraint families — per-DC egress,
per-DC ingress, and (for Iris) per-pair circuit capacity — and finish when
their bytes drain. Circuit reconfigurations appear as timed capacity
updates; a reconfiguring pair runs at the capacity of its surviving fibers
for the switch duration.

Flows within a DC pair always share the same constraints, so the simulator
tracks per-pair aggregates: each pair has a cumulative per-flow work counter
``W`` (bits served to every flow of that pair so far); a flow arriving when
the counter is ``W0`` completes when ``W`` reaches ``W0 + size``. This makes
events O(pairs) instead of O(flows).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.exceptions import SimulationError

Pair = tuple[str, str]

INF = math.inf


@dataclass(frozen=True)
class FlowRecord:
    """One finished (or unfinished) flow."""

    src: str
    dst: str
    size_bits: int
    t_arrive: float
    t_finish: float  # inf if unfinished at simulation end

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.t_finish - self.t_arrive

    @property
    def finished(self) -> bool:
        """Whether the flow completed before the simulation ended."""
        return math.isfinite(self.t_finish)

    @property
    def size_bytes(self) -> float:
        """Flow size in bytes."""
        return self.size_bits / 8.0


def compute_rates(
    flow_counts: Mapping[Pair, int],
    egress_bps: Mapping[str, float],
    ingress_bps: Mapping[str, float],
    pair_caps_bps: Mapping[Pair, float] | None = None,
    flow_cap_bps: float = INF,
) -> dict[Pair, float]:
    """Max-min fair per-flow rate for each active pair (water-filling).

    Constraints: sum of flow rates leaving a DC <= its egress capacity,
    entering <= ingress, (when given) each pair's aggregate <= its circuit
    capacity, and each flow <= ``flow_cap_bps`` (the sending server's
    limit). Pairs are bidirectional aggregates here: a pair's flows count
    against both endpoints, matching the paper's symmetric hose accounting.
    """
    active = {p: n for p, n in flow_counts.items() if n > 0}
    if not active:
        return {}

    # Build constraints: (remaining capacity, member pairs).
    constraints: list[list] = []  # [remaining, {pair}, key]
    for dc, cap in egress_bps.items():
        members = {p for p in active if p[0] == dc or p[1] == dc}
        if members and cap != INF:
            constraints.append([float(cap), members, ("dc-egress", dc)])
    for dc, cap in ingress_bps.items():
        members = {p for p in active if p[0] == dc or p[1] == dc}
        if members and cap != INF:
            constraints.append([float(cap), members, ("dc-ingress", dc)])
    for pair, count in active.items():
        cap = INF
        if pair_caps_bps is not None:
            cap = pair_caps_bps.get(pair, INF)
        if math.isfinite(flow_cap_bps):
            # A per-flow cap is a pair constraint of count * cap, since all
            # of a pair's flows share one max-min rate.
            cap = min(cap, flow_cap_bps * count)
        if cap != INF:
            constraints.append([float(cap), {pair}, ("pair", pair)])

    rates: dict[Pair, float] = {}
    unfixed = set(active)
    guard = 0
    while unfixed:
        guard += 1
        if guard > len(active) + len(constraints) + 2:
            raise SimulationError("water-filling did not converge")
        best_share = INF
        best_constraint = None
        for constraint in constraints:
            remaining, members, _ = constraint
            live = members & unfixed
            if not live:
                continue
            flows = sum(active[p] for p in live)
            share = max(remaining, 0.0) / flows
            if share < best_share - 1e-15:
                best_share = share
                best_constraint = constraint
        if best_constraint is None:
            # No finite constraint touches the remaining pairs.
            for pair in sorted(unfixed):
                rates[pair] = INF
            break
        _, members, _ = best_constraint
        newly_fixed = members & unfixed
        for pair in sorted(newly_fixed):
            rates[pair] = best_share
        for constraint in constraints:
            live = constraint[1] & newly_fixed
            if live:
                constraint[0] -= best_share * sum(active[p] for p in live)
        unfixed -= newly_fixed
    return rates


@dataclass
class _PairState:
    """Aggregate state of one DC pair's active flows."""

    work: float = 0.0  # cumulative per-flow bits served
    rate: float = 0.0  # current per-flow rate (bps)
    # Heap of (completion threshold, arrival time, size) per active flow.
    thresholds: list[tuple[float, float, int]] = None

    def __post_init__(self) -> None:
        if self.thresholds is None:
            self.thresholds = []

    @property
    def count(self) -> int:
        """Active flows of this pair."""
        return len(self.thresholds)

    def time_to_next_completion(self) -> float:
        """Seconds until this pair's earliest flow drains at current rate."""
        if not self.thresholds or self.rate <= 0:
            return INF
        needed = self.thresholds[0][0] - self.work
        return max(needed, 0.0) / self.rate


class FluidSimulator:
    """Run a flow trace over the constrained fluid network.

    ``flows``: (t_arrive, src, dst, size_bits), sorted by arrival time.
    ``pair_caps_bps``: initial per-pair circuit capacities, or ``None`` for
    an unconstrained (EPS-style) fabric.
    ``capacity_events``: [(time, {pair: capacity_bps})] updates, sorted.
    """

    def __init__(
        self,
        egress_bps: Mapping[str, float],
        ingress_bps: Mapping[str, float] | None = None,
        pair_caps_bps: Mapping[Pair, float] | None = None,
        capacity_events: Sequence[tuple[float, Mapping[Pair, float]]] = (),
        flow_cap_bps: float = INF,
    ) -> None:
        self.egress = dict(egress_bps)
        self.ingress = dict(ingress_bps) if ingress_bps is not None else dict(egress_bps)
        self.pair_caps = dict(pair_caps_bps) if pair_caps_bps is not None else None
        self.flow_cap_bps = flow_cap_bps
        self.capacity_events = sorted(capacity_events, key=lambda e: e[0])
        for t, _ in self.capacity_events:
            if t < 0:
                raise SimulationError("capacity events must have t >= 0")

    def run(
        self,
        flows: Iterable[tuple[float, str, str, int]],
        end_time: float | None = None,
    ) -> list[FlowRecord]:
        """Simulate the flow trace; returns one record per flow (records
        with infinite ``t_finish`` were still in flight at the end)."""
        with obs.span("flowsim.run") as span:
            records = self._run(flows, end_time, span)
        return records

    def _run(
        self,
        flows: Iterable[tuple[float, str, str, int]],
        end_time: float | None,
        span,
    ) -> list[FlowRecord]:
        arrivals = sorted(flows, key=lambda f: f[0])
        for t, src, dst, size in arrivals:
            if size <= 0:
                raise SimulationError("flow sizes must be positive bits")
            if src == dst:
                raise SimulationError("flows must cross DCs")

        records: list[FlowRecord] = []
        pairs: dict[Pair, _PairState] = {}
        cap_events = list(self.capacity_events)

        t = 0.0
        ai = 0  # next arrival index
        ci = 0  # next capacity event index
        rates_dirty = True
        n_steps = 0
        n_recomputes = 0

        def recompute() -> None:
            counts = {p: s.count for p, s in pairs.items()}
            rates = compute_rates(
                counts,
                self.egress,
                self.ingress,
                self.pair_caps,
                self.flow_cap_bps,
            )
            for p, s in pairs.items():
                # Clamp genuinely unconstrained flows to a huge finite rate:
                # an infinite rate over a zero-length step is NaN work.
                s.rate = min(rates.get(p, 0.0), 1e18)

        while True:
            if rates_dirty:
                recompute()
                rates_dirty = False
                n_recomputes += 1
            n_steps += 1

            t_arrival = arrivals[ai][0] if ai < len(arrivals) else INF
            t_capacity = cap_events[ci][0] if ci < len(cap_events) else INF
            t_completion = INF
            for state in pairs.values():
                t_completion = min(
                    t_completion, t + state.time_to_next_completion()
                )
            t_next = min(t_arrival, t_capacity, t_completion)
            if t_next == INF:
                break  # remaining flows (if any) are stuck with no events
            if end_time is not None and t_next > end_time:
                break

            # Advance served work to t_next.
            dt = t_next - t
            if dt > 0:
                for state in pairs.values():
                    if state.thresholds and state.rate > 0:
                        state.work += state.rate * dt
            t = t_next

            # Completions first; tolerance is relative to the work counter
            # so float rounding at large counters cannot strand a flow.
            for pair, state in pairs.items():
                tol = 1e-9 * max(1.0, state.work)
                while state.thresholds and state.thresholds[0][0] <= state.work + tol:
                    _, t_arr, size = heapq.heappop(state.thresholds)
                    records.append(
                        FlowRecord(
                            src=pair[0],
                            dst=pair[1],
                            size_bits=size,
                            t_arrive=t_arr,
                            t_finish=t,
                        )
                    )
                    rates_dirty = True

            # Arrivals at this instant.
            while ai < len(arrivals) and arrivals[ai][0] <= t + 1e-12:
                t_arr, src, dst, size = arrivals[ai]
                pair = (src, dst) if src <= dst else (dst, src)
                state = pairs.setdefault(pair, _PairState())
                heapq.heappush(
                    state.thresholds, (state.work + size, t_arr, size)
                )
                ai += 1
                rates_dirty = True

            # Capacity updates at this instant.
            while ci < len(cap_events) and cap_events[ci][0] <= t + 1e-12:
                _, updates = cap_events[ci]
                if self.pair_caps is None:
                    raise SimulationError(
                        "capacity events need pair-constrained mode"
                    )
                self.pair_caps.update(updates)
                ci += 1
                rates_dirty = True

        # Unfinished flows at simulation end.
        for pair, state in pairs.items():
            for threshold, t_arr, size in state.thresholds:
                records.append(
                    FlowRecord(
                        src=pair[0],
                        dst=pair[1],
                        size_bits=size,
                        t_arrive=t_arr,
                        t_finish=INF,
                    )
                )
        records.sort(key=lambda r: (r.t_arrive, r.t_finish))
        span.incr("flowsim.flows", len(arrivals))
        span.incr("flowsim.steps", n_steps)
        span.incr("flowsim.rate_recomputes", n_recomputes)
        span.incr("flowsim.completions",
                  sum(1 for r in records if r.finished))
        span.incr("flowsim.capacity_events", ci)
        return records
