"""Drain -> reconfigure -> verify orchestration (§5.2).

When the controller decides a reconfiguration is needed, it first drains
traffic from paths being torn down, then reconfigures OSSes network-wide,
then verifies device state. Transient device failures are retried; only
after verification does traffic return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro import obs
from repro.control.devices import DeviceRegistry, PortLabel, Transport
from repro.exceptions import ControlPlaneError, DeviceError
from repro.units import SIGNAL_RECOVERY_TIME_S

#: One cross-connect instruction: (device name, input port, output port).
Connection = tuple[str, PortLabel, PortLabel]


@dataclass
class ReconfigurationReport:
    """What one reconciliation pass did."""

    connects: int = 0
    disconnects: int = 0
    retries: int = 0
    drained_pairs: tuple = ()
    duration_s: float = 0.0
    verified: bool = False
    commands: list[tuple[str, str, PortLabel]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """Whether any cross-connect actually moved."""
        return bool(self.connects or self.disconnects)


def _with_retries(
    transport: Transport,
    method: str,
    *args: Any,
    max_retries: int,
    report: ReconfigurationReport,
) -> Any:
    attempts = 0
    while True:
        try:
            return transport.call(method, *args)
        except DeviceError as exc:
            # Hard device-side rejections (conflicts, unknown commands) are
            # not retryable; only transport-transient failures are.
            if "transient" not in str(exc):
                raise
            attempts += 1
            report.retries += 1
            if attempts > max_retries:
                raise ControlPlaneError(
                    f"device {transport.device.name} kept failing "
                    f"{method} after {max_retries} retries"
                ) from exc


def diff_connections(
    current: Mapping[str, Mapping[PortLabel, PortLabel]],
    target: Mapping[str, Mapping[PortLabel, PortLabel]],
) -> tuple[list[Connection], list[Connection]]:
    """(to_disconnect, to_connect) between two network-wide OSS states."""
    to_disconnect: list[Connection] = []
    to_connect: list[Connection] = []
    devices = set(current) | set(target)
    for device in sorted(devices):
        cur = current.get(device, {})
        tgt = target.get(device, {})
        for in_port, out_port in cur.items():
            if tgt.get(in_port) != out_port:
                to_disconnect.append((device, in_port, out_port))
        for in_port, out_port in tgt.items():
            if cur.get(in_port) != out_port:
                to_connect.append((device, in_port, out_port))
    return to_disconnect, to_connect


def apply_reconfiguration(
    registry: DeviceRegistry,
    current: Mapping[str, Mapping[PortLabel, PortLabel]],
    target: Mapping[str, Mapping[PortLabel, PortLabel]],
    drained_pairs: Sequence = (),
    drain_callback: Callable[[Sequence], None] | None = None,
    max_retries: int = 3,
) -> ReconfigurationReport:
    """Converge the OSS layer from ``current`` to ``target``.

    Order matters: drain first (no live traffic on torn paths), disconnect
    stale cross-connects (ports must free up before reuse), then make new
    connections, then verify every target connection actually exists.
    """
    report = ReconfigurationReport(drained_pairs=tuple(drained_pairs))
    with obs.span("control.reconfigure") as span:
        to_disconnect, to_connect = diff_connections(current, target)
        if not to_disconnect and not to_connect:
            report.verified = True
            return report

        if drain_callback is not None:
            with obs.span("control.reconfigure.drain"):
                drain_callback(drained_pairs)
            span.incr("reconfigure.drained_pairs", len(drained_pairs))

        with obs.span("control.reconfigure.disconnect"):
            for device, in_port, _ in to_disconnect:
                transport = registry.get(device)
                _with_retries(
                    transport,
                    "disconnect",
                    in_port,
                    max_retries=max_retries,
                    report=report,
                )
                report.disconnects += 1
                report.commands.append(("disconnect", device, in_port))

        switch_time = 0.0
        with obs.span("control.reconfigure.connect"):
            for device, in_port, out_port in to_connect:
                transport = registry.get(device)
                _with_retries(
                    transport,
                    "connect",
                    in_port,
                    out_port,
                    max_retries=max_retries,
                    report=report,
                )
                report.connects += 1
                report.commands.append(("connect", device, in_port))
                switch_time = max(switch_time, transport.device.switch_time_s)

        # Verify: every target connection must be present on the device.
        with obs.span("control.reconfigure.verify"):
            for device, in_port, out_port in to_connect:
                transport = registry.get(device)
                ok = _with_retries(
                    transport,
                    "is_connected",
                    in_port,
                    out_port,
                    max_retries=max_retries,
                    report=report,
                )
                if not ok:
                    raise ControlPlaneError(
                        f"verification failed: {device} {in_port!r} -> {out_port!r}"
                    )
        report.verified = True
        # OSSes reconfigure in parallel; the data path is back once the
        # slowest switch settles and receivers recover (50 ms, §6.2).
        report.duration_s = switch_time + SIGNAL_RECOVERY_TIME_S
        span.incr("reconfigure.connects", report.connects)
        span.incr("reconfigure.disconnects", report.disconnects)
        span.incr("reconfigure.retries", report.retries)
    return report
