"""DC-DC traffic telemetry for the controller (§5.2).

"A centralized controller gathers DC-DC traffic demands, and configures the
network components appropriately." This module is the gathering half: an
exponentially-weighted estimator over observed per-pair byte counts (e.g.
switch counters or flow records), producing the Gbps demand matrix that
:func:`repro.control.controller.compute_target` converts into circuits.

DC-DC aggregate traffic is slow-moving and predictable (§6.3), so a simple
EWMA with a safety factor suffices; the estimator also reports whether a
re-estimate differs enough from the last applied matrix to justify a
reconfiguration at all (Iris reconfigures "relatively infrequently").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ControlPlaneError
from repro.region.fibermap import pair_key

Pair = tuple[str, str]


@dataclass
class DemandEstimator:
    """EWMA estimator of per-pair offered load.

    ``alpha``
        Weight of the newest observation window (0 < alpha <= 1).
    ``safety_factor``
        Multiplier applied to estimates when emitting demands, absorbing
        bounded traffic fluctuations between reconfigurations.
    """

    alpha: float = 0.3
    safety_factor: float = 1.25
    _rates_gbps: dict[Pair, float] = field(default_factory=dict)
    _windows: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ControlPlaneError("alpha must be in (0, 1]")
        if self.safety_factor < 1.0:
            raise ControlPlaneError("safety factor must be >= 1")

    def observe_window(
        self, pair_bytes: Mapping[Pair, float], window_s: float
    ) -> None:
        """Fold one measurement window of per-pair byte counts."""
        if window_s <= 0:
            raise ControlPlaneError("window must be positive")
        rates = {
            pair_key(*pair): volume * 8.0 / window_s / 1e9
            for pair, volume in pair_bytes.items()
        }
        if self._windows == 0:
            self._rates_gbps.update(rates)
        else:
            for pair in sorted(set(self._rates_gbps) | set(rates)):
                old = self._rates_gbps.get(pair, 0.0)
                new = rates.get(pair, 0.0)
                self._rates_gbps[pair] = (
                    (1 - self.alpha) * old + self.alpha * new
                )
        self._windows += 1

    def observe_flows(
        self,
        flows: Iterable[tuple[str, str, float]],
        window_s: float,
    ) -> None:
        """Fold (src, dst, bytes) flow records from one window."""
        volumes: dict[Pair, float] = {}
        for src, dst, size_bytes in flows:
            pair = pair_key(src, dst)
            volumes[pair] = volumes.get(pair, 0.0) + size_bytes
        self.observe_window(volumes, window_s)

    def demands_gbps(self) -> dict[Pair, float]:
        """The demand matrix to hand the controller (safety included)."""
        if self._windows == 0:
            raise ControlPlaneError("no telemetry observed yet")
        return {
            pair: rate * self.safety_factor
            for pair, rate in self._rates_gbps.items()
            if rate > 0
        }

    def reconfiguration_worthwhile(
        self,
        applied_gbps: Mapping[Pair, float],
        threshold: float = 0.2,
    ) -> bool:
        """Should the controller bother reconfiguring?

        True when any pair's estimate departed from the applied matrix by
        more than ``threshold`` (relative, with an absolute floor for
        pairs appearing or vanishing).
        """
        current = self.demands_gbps()
        for pair in sorted(set(current) | set(dict(applied_gbps))):
            old = dict(applied_gbps).get(pair, 0.0)
            new = current.get(pair, 0.0)
            base = max(old, 1e-3)
            if abs(new - old) / base > threshold:
                return True
        return False
