"""The Iris control plane (§5): a centralized controller that gathers DC-DC
demands and drives simulated optical devices (OSSes, amplifiers, tunable
transceivers, channel emulators) through drain -> reconfigure -> verify."""

from repro.control.devices import (
    AmplifierDevice,
    ChannelEmulatorDevice,
    DeviceRegistry,
    FaultInjector,
    SpaceSwitchDevice,
    TransceiverDevice,
    Transport,
)
from repro.control.wavelengths import WavelengthAssignment, pack_transceivers
from repro.control.controller import CircuitTarget, IrisController, compute_target
from repro.control.reconfigure import ReconfigurationReport
from repro.control.telemetry import DemandEstimator

__all__ = [
    "AmplifierDevice",
    "ChannelEmulatorDevice",
    "DeviceRegistry",
    "FaultInjector",
    "SpaceSwitchDevice",
    "TransceiverDevice",
    "Transport",
    "WavelengthAssignment",
    "pack_transceivers",
    "CircuitTarget",
    "IrisController",
    "compute_target",
    "ReconfigurationReport",
    "DemandEstimator",
]
