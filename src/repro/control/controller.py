"""The centralized Iris controller (§5.2).

Gathers DC-DC traffic demands, translates them into per-pair fiber circuits
over the planned paths, and drives the device layer: OSS cross-connects
network-wide, then per-DC transceiver tuning and ASE channel fill. All
wavelength management stays DC-local; no amplifier is ever adjusted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.control.devices import (
    ChannelEmulatorDevice,
    DeviceRegistry,
    FaultInjector,
    PortLabel,
    SpaceSwitchDevice,
)
from repro.control.reconfigure import ReconfigurationReport, apply_reconfiguration
from repro.control.wavelengths import pack_transceivers
from repro.core.failures import Scenario
from repro.core.plan import IrisPlan, Pair
from repro.exceptions import ControlPlaneError
from repro.region.fibermap import pair_key


@dataclass(frozen=True)
class CircuitTarget:
    """Fiber-pairs to light per DC pair, with the wavelength demand behind
    them (used for per-DC transceiver packing; defaults to full fibers)."""

    fibers: Mapping[Pair, int]
    wavelengths: Mapping[Pair, int] | None = None

    def total(self) -> int:
        """Total lit fiber-pairs."""
        return sum(self.fibers.values())

    def pairs(self) -> list[Pair]:
        """Pairs with at least one lit fiber."""
        return sorted(p for p, f in self.fibers.items() if f > 0)

    def wavelengths_for(self, pair: Pair, per_fiber: int) -> int:
        """Live wavelengths toward a pair (capped by its lit fibers)."""
        fibers = self.fibers.get(pair, 0)
        if self.wavelengths is None:
            return fibers * per_fiber
        return min(self.wavelengths.get(pair, 0), fibers * per_fiber)


def compute_target(plan: IrisPlan, demands_gbps: Mapping[Pair, float]) -> CircuitTarget:
    """Translate a DC-DC traffic matrix into whole-fiber circuits.

    Demands round up to fiber granularity (§4.3); the hose constraints are
    enforced: a matrix the DCs cannot generate is rejected rather than
    silently clipped. Each pair can always afford its rounding thanks to the
    provisioned residual fiber.
    """
    region = plan.region
    per_fiber_gbps = region.wavelengths_per_fiber * region.gbps_per_wavelength
    egress: dict[str, float] = {dc: 0.0 for dc in region.dcs}
    fibers: dict[Pair, int] = {}
    wavelengths: dict[Pair, int] = {}
    for raw_pair, gbps in demands_gbps.items():
        pair = pair_key(*raw_pair)
        if gbps < 0:
            raise ControlPlaneError(f"negative demand for {pair}")
        if gbps == 0:
            continue
        a, b = pair
        if a not in egress or b not in egress:
            raise ControlPlaneError(f"unknown DC in pair {pair}")
        egress[a] += gbps
        egress[b] += gbps
        fibers[pair] = math.ceil(gbps / per_fiber_gbps)
        wavelengths[pair] = math.ceil(gbps / region.gbps_per_wavelength)
    for dc, load in egress.items():
        if load > region.capacity_gbps(dc) + 1e-6:
            raise ControlPlaneError(
                f"traffic matrix exceeds {dc}'s hose capacity: "
                f"{load:.0f} > {region.capacity_gbps(dc):.0f} Gbps"
            )
    return CircuitTarget(fibers=fibers, wavelengths=wavelengths)


class IrisController:
    """Owns the device layer for one planned region and reconciles it."""

    def __init__(
        self,
        plan: IrisPlan,
        faults: FaultInjector | None = None,
        scenario: Scenario = Scenario(),
    ) -> None:
        self.plan = plan
        self.scenario = scenario
        self.registry = DeviceRegistry()
        self._faults = faults
        self._current_target = CircuitTarget(fibers={})
        self._current_connections: dict[str, dict[PortLabel, PortLabel]] = {}
        self._failed_ducts: set = set(scenario)
        #: Per-DC transceiver packing from the last reconciliation.
        self.wavelength_assignments: dict = {}
        self._build_devices()

    # -- device construction -------------------------------------------------

    def _build_devices(self) -> None:
        nodes = self.plan.topology.used_nodes()
        for node in sorted(nodes):
            self.registry.add(SpaceSwitchDevice(f"oss:{node}"), self._faults)
        for dc in self.plan.region.dcs:
            self.registry.add(
                ChannelEmulatorDevice(
                    f"ase:{dc}",
                    channels=self.plan.region.wavelengths_per_fiber,
                ),
                self._faults,
            )

    # -- state ------------------------------------------------------------------

    @property
    def current_target(self) -> CircuitTarget:
        """The last reconciled circuit target."""
        return self._current_target

    def oss_name(self, node: str) -> str:
        """Registry name of the OSS at ``node``."""
        return f"oss:{node}"

    # -- reconciliation ------------------------------------------------------------

    def connections_for(self, target: CircuitTarget) -> dict[str, dict]:
        """Network-wide OSS cross-connect maps realizing ``target``.

        Each lit fiber of a pair is switched at every effective switching
        point of the pair's planned path, in both directions.
        """
        conns: dict[str, dict[PortLabel, PortLabel]] = {}

        def connect(device: str, in_port: PortLabel, out_port: PortLabel) -> None:
            dev = conns.setdefault(device, {})
            if in_port in dev:
                raise ControlPlaneError(
                    f"{device}: port {in_port!r} double-booked"
                )
            dev[in_port] = out_port

        for pair in target.pairs():
            count = target.fibers[pair]
            path = self.plan.effective_paths.get((self.scenario, pair))
            if path is None:
                raise ControlPlaneError(f"no planned path for {pair}")
            nodes = path.nodes
            for fiber in range(count):
                for direction, ordered in (("fwd", nodes), ("rev", tuple(reversed(nodes)))):
                    for i, node in enumerate(ordered):
                        device = self.oss_name(node)
                        if i == 0:
                            in_port = ("add", pair, fiber, direction)
                        else:
                            in_port = ("duct", ordered[i - 1], node, pair, fiber, direction)
                        if i == len(ordered) - 1:
                            out_port = ("drop", pair, fiber, direction)
                        else:
                            out_port = ("duct", node, ordered[i + 1], pair, fiber, direction)
                        if node == path.amp_node:
                            # Loopback amplification (§5.1): route the fiber
                            # through an amplifier port pair and back into
                            # the OSS before it leaves the site.
                            amp_key = (pair, fiber, direction)
                            connect(device, in_port, ("amp-in", amp_key))
                            connect(device, ("amp-out", amp_key), out_port)
                        else:
                            connect(device, in_port, out_port)
        return conns

    def reconcile(
        self, target: CircuitTarget, max_retries: int = 3
    ) -> ReconfigurationReport:
        """Drive the device layer from the current state to ``target``."""
        new_connections = self.connections_for(target)
        drained = self._pairs_with_changes(target)
        report = apply_reconfiguration(
            self.registry,
            self._current_connections,
            new_connections,
            drained_pairs=drained,
            max_retries=max_retries,
        )
        self._current_connections = new_connections
        self._current_target = target
        self._retune_dcs(target, max_retries)
        return report

    def apply_demands(
        self, demands_gbps: Mapping[Pair, float], max_retries: int = 3
    ) -> ReconfigurationReport:
        """Convenience: compute the circuit target and reconcile."""
        return self.reconcile(compute_target(self.plan, demands_gbps), max_retries)

    def _pairs_with_changes(self, target: CircuitTarget) -> tuple[Pair, ...]:
        """Pairs whose lit-fiber set changes (these get drained)."""
        current = dict(self._current_target.fibers)
        changed = []
        for pair in sorted(set(current) | set(target.fibers)):
            if current.get(pair, 0) != target.fibers.get(pair, 0):
                changed.append(pair)
        return tuple(sorted(changed))

    def _retune_dcs(self, target: CircuitTarget, max_retries: int) -> None:
        """Per-DC wavelength management (§5.1-5.2).

        Each DC independently packs its tunable transceivers into the
        fibers lit toward each destination
        (:func:`repro.control.wavelengths.pack_transceivers`) and programs
        its ASE channel emulator so every outgoing fiber carries a full
        C-band: live channels where transceivers transmit, ASE elsewhere.
        """
        lam = self.plan.region.wavelengths_per_fiber
        self.wavelength_assignments = {}
        for dc in self.plan.region.dcs:
            demands: dict[str, int] = {}
            fibers: dict[str, int] = {}
            for pair, count in target.fibers.items():
                if dc not in pair or count == 0:
                    continue
                other = pair[0] if pair[1] == dc else pair[1]
                fibers[other] = count
                demands[other] = target.wavelengths_for(pair, lam)
            # Per-pair ceilings can overshoot the DC's transceiver pool by
            # a few units (the fractional remainders ride residual fibers,
            # but transceivers are bounded by f x lambda): trim the largest
            # demands down to the pool.
            total = self.plan.region.transceivers(dc)
            while sum(demands.values()) > total:
                busiest = max(demands, key=lambda d: (demands[d], d))
                demands[busiest] -= 1
            assignment = pack_transceivers(
                demands,
                fibers,
                lam,
                total_transceivers=self.plan.region.transceivers(dc),
            )
            self.wavelength_assignments[dc] = assignment

            transport = self.registry.get(f"ase:{dc}")
            self._call_with_retries(
                transport, "clear_fibers", max_retries=max_retries
            )
            for dest, count in fibers.items():
                for fiber_index in range(count):
                    live = frozenset(
                        assignment.channels_on_fiber(dest, fiber_index)
                    )
                    self._call_with_retries(
                        transport,
                        "set_fiber_live",
                        (dest, fiber_index),
                        live,
                        max_retries=max_retries,
                    )

    @staticmethod
    def _call_with_retries(transport, method, *args, max_retries: int):
        from repro.exceptions import DeviceError

        attempts = 0
        while True:
            try:
                return transport.call(method, *args)
            except DeviceError as exc:
                if "transient" not in str(exc):
                    raise
                attempts += 1
                if attempts > max_retries:
                    raise ControlPlaneError(
                        f"device {transport.device.name} kept failing {method}"
                    ) from exc

    # -- failure handling ----------------------------------------------------------

    @property
    def failed_ducts(self) -> frozenset:
        """Ducts currently reported as cut."""
        return frozenset(self._failed_ducts)

    def report_duct_failure(self, u: str, v: str, max_retries: int = 3):
        """React to a duct cut (OC4): move circuits to surviving paths.

        Resolves the failure set to the planner's pre-enumerated scenario
        and reconciles the current circuit target onto that scenario's
        paths. Raises :class:`ControlPlaneError` when the cut count exceeds
        the planned tolerance — the network was never provisioned for it.
        """
        from repro.exceptions import PlanningError
        from repro.region.fibermap import duct_key

        self._failed_ducts.add(duct_key(u, v))
        try:
            scenario = self.plan.scenario_for_failures(self._failed_ducts)
        except PlanningError as exc:
            raise ControlPlaneError(str(exc)) from exc
        return self._switch_scenario(scenario, max_retries)

    def report_duct_repair(self, u: str, v: str, max_retries: int = 3):
        """Return to shorter paths once a duct is repaired."""
        from repro.region.fibermap import duct_key

        self._failed_ducts.discard(duct_key(u, v))
        scenario = self.plan.scenario_for_failures(self._failed_ducts)
        return self._switch_scenario(scenario, max_retries)

    def _switch_scenario(self, scenario: Scenario, max_retries: int):
        if scenario == self.scenario:
            # Paths unchanged (the cut duct carried no circuits).
            return self.reconcile(self._current_target, max_retries)
        old_paths = {
            pair: self.plan.effective_paths[(self.scenario, pair)].nodes
            for pair in self._current_target.pairs()
        }
        self.scenario = scenario
        drained = tuple(
            sorted(
                pair
                for pair in self._current_target.pairs()
                if self.plan.effective_paths[(scenario, pair)].nodes
                != old_paths[pair]
            )
        )
        new_connections = self.connections_for(self._current_target)
        report = apply_reconfiguration(
            self.registry,
            self._current_connections,
            new_connections,
            drained_pairs=drained,
            max_retries=max_retries,
        )
        self._current_connections = new_connections
        return report

    # -- audit -------------------------------------------------------------------

    def audit(self) -> list[str]:
        """Check that device state matches the intended connections (§5.2's
        'checking that the devices are in expected state')."""
        problems = []
        for device, expected in self._current_connections.items():
            actual = self._call_with_retries(
                self.registry.get(device), "connections", max_retries=5
            )
            if actual != dict(expected):
                problems.append(f"{device}: state drift")
        return problems
