"""Simulated optical devices behind a faultable transport.

The paper's testbed controller (~9K LoC of Python) talks to physical devices
over serial, HTTPS, and NetConf/REST. Here the devices are simulated, but
the control plane retains the same shape: every command goes through a
:class:`Transport` that can inject transient faults and latency, devices
validate commands and hold state, and the controller must verify that the
network converged rather than assume its commands took effect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import DeviceError

#: OSS ports are unidirectional and identified by hashable labels; the
#: controller uses structured tuples like ("duct", "A", "H1", 0, "in").
PortLabel = Any


class SpaceSwitchDevice:
    """An optical space switch: a reconfigurable bijection between ports.

    Connections are unidirectional (a Polatis-style OSS switches each fiber
    direction independently); the device rejects double-booked inputs or
    outputs, like real hardware raising a cross-connect conflict.
    """

    kind = "oss"

    def __init__(self, name: str, switch_time_s: float = 0.020) -> None:
        self.name = name
        self.switch_time_s = switch_time_s
        self._connections: dict[PortLabel, PortLabel] = {}

    def connect(self, in_port: PortLabel, out_port: PortLabel) -> None:
        """Cross-connect an input port to an output port."""
        if in_port in self._connections:
            raise DeviceError(
                f"{self.name}: input {in_port!r} already connected to "
                f"{self._connections[in_port]!r}"
            )
        if out_port in self._connections.values():
            raise DeviceError(f"{self.name}: output {out_port!r} already in use")
        self._connections[in_port] = out_port

    def disconnect(self, in_port: PortLabel) -> None:
        """Tear down the cross-connect on ``in_port``."""
        if in_port not in self._connections:
            raise DeviceError(f"{self.name}: input {in_port!r} not connected")
        del self._connections[in_port]

    def connections(self) -> dict[PortLabel, PortLabel]:
        """Snapshot of the current cross-connect map."""
        return dict(self._connections)

    def is_connected(self, in_port: PortLabel, out_port: PortLabel) -> bool:
        """Whether ``in_port`` currently feeds ``out_port``."""
        return self._connections.get(in_port) == out_port

    def reset(self) -> None:
        """Drop every cross-connect (factory state)."""
        self._connections.clear()


class AmplifierDevice:
    """A fixed-gain EDFA: enabled/disabled, gain never adjusted online (TC3)."""

    kind = "amplifier"

    def __init__(self, name: str, gain_db: float = 20.0) -> None:
        self.name = name
        self.gain_db = gain_db
        self.enabled = True

    def enable(self) -> None:
        """Turn the pump on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the pump off."""
        self.enabled = False

    def set_gain(self, gain_db: float) -> None:
        """Reject online gain changes: Iris explicitly avoids them (§5.1)."""
        raise DeviceError(
            f"{self.name}: amplifier gain is a one-time design decision; "
            "online gain management is not supported"
        )

    def status(self) -> dict[str, Any]:
        """Operational state snapshot."""
        return {"enabled": self.enabled, "gain_db": self.gain_db}


class TransceiverDevice:
    """A tunable coherent transceiver: channel index and enable state."""

    kind = "transceiver"

    def __init__(self, name: str, channels: int = 40) -> None:
        self.name = name
        self.channels = channels
        self.channel: int | None = None
        self.enabled = False

    def tune(self, channel: int) -> None:
        """Tune the laser to a DWDM channel index."""
        if not (0 <= channel < self.channels):
            raise DeviceError(
                f"{self.name}: channel {channel} outside 0..{self.channels - 1}"
            )
        self.channel = channel

    def enable(self) -> None:
        """Start transmitting (requires a tuned channel)."""
        if self.channel is None:
            raise DeviceError(f"{self.name}: cannot enable before tuning")
        self.enabled = True

    def disable(self) -> None:
        """Stop transmitting."""
        self.enabled = False

    def status(self) -> dict[str, Any]:
        """Operational state snapshot."""
        return {"channel": self.channel, "enabled": self.enabled}


class ChannelEmulatorDevice:
    """The ASE channel emulator: fills non-live channels (§5.1).

    Supports a whole-site live set (the testbed's usage) and per-fiber live
    sets (the controller's usage: each outgoing fiber carries its own mix
    of live channels and ASE fill, always summing to the full C-band).
    """

    kind = "channel_emulator"

    def __init__(self, name: str, channels: int = 40) -> None:
        self.name = name
        self.channels = channels
        self._live: frozenset[int] = frozenset()
        self._fiber_live: dict[Any, frozenset[int]] = {}

    def _check(self, live) -> frozenset[int]:
        live = frozenset(live)
        bad = sorted(c for c in live if not (0 <= c < self.channels))
        if bad:
            raise DeviceError(f"{self.name}: channels out of range: {bad}")
        return live

    def set_live(self, live: frozenset[int]) -> None:
        """Declare the site-wide live channels; the rest get ASE fill."""
        self._live = self._check(live)

    def set_fiber_live(self, fiber: Any, live: frozenset[int]) -> None:
        """Declare one outgoing fiber's live channels."""
        self._fiber_live[fiber] = self._check(live)

    def clear_fibers(self) -> None:
        """Forget all per-fiber channel plans."""
        self._fiber_live.clear()

    def emulated(self) -> frozenset[int]:
        """Channels currently filled with ASE at site level."""
        return frozenset(range(self.channels)) - self._live

    def fiber_emulated(self, fiber: Any) -> frozenset[int]:
        """Channels ASE-filled on one fiber."""
        return frozenset(range(self.channels)) - self._fiber_live.get(
            fiber, frozenset()
        )

    def fiber_status(self) -> dict[Any, dict[str, list[int]]]:
        """Live/emulated channel plan per outgoing fiber."""
        return {
            fiber: {
                "live": sorted(live),
                "emulated": sorted(self.fiber_emulated(fiber)),
            }
            for fiber, live in sorted(self._fiber_live.items())
        }

    def status(self) -> dict[str, Any]:
        """Site-level live/emulated snapshot."""
        return {"live": sorted(self._live), "emulated": sorted(self.emulated())}


@dataclass
class FaultInjector:
    """Transient-fault model for a transport.

    ``failure_rate``
        Probability that any single command attempt fails with a transient
        :class:`DeviceError` (connection reset, timeout, ...).
    ``fail_next``
        Force the next ``fail_next`` attempts to fail, regardless of rate
        (for deterministic tests of retry logic).
    """

    failure_rate: float = 0.0
    seed: int = 0
    fail_next: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.failure_rate < 1.0):
            raise DeviceError("failure rate must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def should_fail(self) -> bool:
        """Decide whether the next command attempt fails transiently."""
        if self.fail_next > 0:
            self.fail_next -= 1
            return True
        return self._rng.random() < self.failure_rate


class Transport:
    """RPC-ish access to one device, with fault injection and an op log.

    Mirrors how the real controller multiplexes serial/HTTPS/NetConf: the
    caller invokes named methods and must treat any call as able to fail
    transiently.
    """

    def __init__(self, device: Any, faults: FaultInjector | None = None) -> None:
        self.device = device
        self.faults = faults or FaultInjector()
        self.log: list[tuple[str, tuple, dict]] = []
        self.calls = 0

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a device method across the (faultable) transport."""
        self.calls += 1
        self.log.append((method, args, kwargs))
        if self.faults.should_fail():
            raise DeviceError(
                f"transient failure talking to {self.device.name} ({method})"
            )
        handler: Callable | None = getattr(self.device, method, None)
        if handler is None or not callable(handler):
            raise DeviceError(f"{self.device.name}: unknown command {method!r}")
        return handler(*args, **kwargs)


class DeviceRegistry:
    """Name -> transport directory for a whole region's devices."""

    def __init__(self) -> None:
        self._transports: dict[str, Transport] = {}

    def add(self, device: Any, faults: FaultInjector | None = None) -> Transport:
        """Register a device and return its transport."""
        if device.name in self._transports:
            raise DeviceError(f"device {device.name!r} already registered")
        transport = Transport(device, faults)
        self._transports[device.name] = transport
        return transport

    def get(self, name: str) -> Transport:
        """Look up a device's transport by name."""
        try:
            return self._transports[name]
        except KeyError:
            raise DeviceError(f"unknown device {name!r}") from None

    def names(self) -> list[str]:
        """All registered device names."""
        return sorted(self._transports)

    def by_kind(self, kind: str) -> list[Transport]:
        """All transports whose device is of ``kind``."""
        return [
            t
            for _, t in sorted(self._transports.items())
            if t.device.kind == kind
        ]

    def total_calls(self) -> int:
        """Commands issued across every device (including retries)."""
        return sum(t.calls for t in self._transports.values())
