"""Per-DC wavelength management (§5.1-5.2).

Iris keeps wavelength assignment strictly DC-local: tunable transceivers at
each DC's T2 tier are assigned colours so they pack into the outgoing fibers
chosen for each destination, with OSS1 providing any-transceiver-to-any-fiber
reachability. No network-wide graph colouring is needed — each fiber simply
carries a full, locally-consistent C-band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ControlPlaneError


@dataclass(frozen=True)
class WavelengthAssignment:
    """Where each transceiver of one DC transmits.

    ``slots`` maps transceiver index -> (destination, fiber index within the
    destination's fiber group, channel index within the fiber).
    """

    slots: Mapping[int, tuple[str, int, int]]
    wavelengths_per_fiber: int

    def channels_on_fiber(self, destination: str, fiber: int) -> list[int]:
        """Live channels on one outgoing fiber (the rest get ASE fill)."""
        return sorted(
            channel
            for (dest, fib, channel) in self.slots.values()
            if dest == destination and fib == fiber
        )

    def transceivers_toward(self, destination: str) -> list[int]:
        """Transceiver indices currently assigned to ``destination``."""
        return sorted(
            t for t, (dest, _, _) in self.slots.items() if dest == destination
        )


def pack_transceivers(
    demand_wavelengths: Mapping[str, int],
    fibers: Mapping[str, int],
    wavelengths_per_fiber: int,
    total_transceivers: int,
) -> WavelengthAssignment:
    """First-fit packing of a DC's transceivers into its outgoing fibers.

    ``demand_wavelengths``: wavelengths needed toward each destination.
    ``fibers``: fibers currently allocated toward each destination.
    Raises :class:`ControlPlaneError` when demand exceeds fiber capacity or
    the DC's transceiver pool.
    """
    if wavelengths_per_fiber <= 0:
        raise ControlPlaneError("wavelengths_per_fiber must be positive")
    total_demand = sum(demand_wavelengths.values())
    if total_demand > total_transceivers:
        raise ControlPlaneError(
            f"demand of {total_demand} wavelengths exceeds the DC's "
            f"{total_transceivers} transceivers"
        )

    slots: dict[int, tuple[str, int, int]] = {}
    transceiver = 0
    for destination in sorted(demand_wavelengths):
        need = demand_wavelengths[destination]
        if need < 0:
            raise ControlPlaneError(f"negative demand toward {destination!r}")
        available = fibers.get(destination, 0) * wavelengths_per_fiber
        if need > available:
            raise ControlPlaneError(
                f"demand of {need} wavelengths toward {destination!r} "
                f"exceeds {available} available on its fibers"
            )
        for i in range(need):
            fiber_index, channel = divmod(i, wavelengths_per_fiber)
            slots[transceiver] = (destination, fiber_index, channel)
            transceiver += 1

    assignment = WavelengthAssignment(
        slots=slots, wavelengths_per_fiber=wavelengths_per_fiber
    )
    _check_no_collisions(assignment)
    return assignment


def _check_no_collisions(assignment: WavelengthAssignment) -> None:
    """Invariant: no two transceivers share a (destination, fiber, channel)."""
    seen: set[tuple[str, int, int]] = set()
    for slot in assignment.slots.values():
        if slot in seen:
            raise ControlPlaneError(f"wavelength collision on {slot!r}")
        seen.add(slot)
