"""Does circuit switching hurt applications? The §6.3 study in miniature.

Runs paired Iris/EPS flow-level simulations across traffic-change regimes
and reconfiguration intervals, printing the 99th-percentile FCT slowdowns
that Figs 17-18 report. Expected shape: negligible (<~2%) slowdown for
bounded traffic changes or long intervals; visible degradation only under
unbounded change at second-scale intervals.

Run:  python examples/circuit_transience.py        (~1-2 minutes)
"""

from repro.simulation import ScenarioConfig, run_comparison


def run(label: str, **kwargs) -> None:
    config = ScenarioConfig(
        n_dcs=5, duration_s=12.0, seed=7, **kwargs
    )
    result = run_comparison(config)
    s = result.summary
    print(f"  {label:<38} p99={s.p99_all:5.3f}  p99(short)={s.p99_short:5.3f}  "
          f"fibers moved={result.fibers_moved}")


def main() -> None:
    print("=== Fig 17: slowdown vs change regime (Iris / EPS, 99th pct) ===")
    run("40% util, 10% changes, 5 s", utilization=0.4, max_change=0.1,
        change_interval_s=5.0)
    run("40% util, 50% changes, 5 s", utilization=0.4, max_change=0.5,
        change_interval_s=5.0)
    run("70% util, 50% changes, 1 s", utilization=0.7, max_change=0.5,
        change_interval_s=1.0)
    run("70% util, unbounded, 1 s", utilization=0.7, max_change=None,
        change_interval_s=1.0)
    run("70% util, unbounded, 10 s", utilization=0.7, max_change=None,
        change_interval_s=10.0)

    print("\n=== Fig 18: workloads at 40% util, 50% changes, 5 s ===")
    for workload in ("web1", "web2", "hadoop", "cache"):
        run(f"workload {workload}", utilization=0.4, max_change=0.5,
            change_interval_s=5.0, workload=workload)

    print("\n(paper: <2% slowdown except unbounded changes at 1 s intervals)")


if __name__ == "__main__":
    main()
