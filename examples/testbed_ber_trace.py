"""Replay the Fig 14 physical-layer experiment on the emulated testbed (§6.2).

Two receivers behind the emulated Fig 13(b) setup; the hut OSS swaps spool
pairings every minute. The script prints each receiver's OSNR/power/BER per
configuration and a text rendering of the BER-over-time trace with the
~50 ms re-lock gaps.

Run:  python examples/testbed_ber_trace.py
"""

import math

from repro.testbed import IrisTestbed, run_reconfiguration_experiment


def main() -> None:
    print("=== steady-state readings per spool configuration ===")
    testbed = IrisTestbed()
    for _ in range(2):
        conf = testbed.configuration.value
        for name, r in testbed.readings().items():
            spans = "-".join(f"{s:.0f}" for s in r.span_km)
            amp = "hut amp" if r.amplified else "unamplified"
            print(f"  config {conf} {name} ({spans} km, {amp}): "
                  f"OSNR {r.osnr_db:.1f} dB, {r.rx_power_dbm:+.1f} dBm, "
                  f"pre-FEC BER {r.prefec_ber:.1e}")
        testbed.swap()
    uniform = testbed.power_uniform_across_configurations()
    print(f"  power uniform across configurations (TC3, no gain tweaks): {uniform}")

    print("\n=== Fig 14: BER over 3 minutes, reconfiguring every 60 s ===")
    summary = run_reconfiguration_experiment(
        duration_s=180.0, reconfig_period_s=60.0, sample_interval_s=0.01
    )
    window = (59.5, 60.7)  # zoom on the first reconfiguration
    for receiver in ("DC2", "DC3"):
        line = []
        for s in summary.samples:
            if s.receiver != receiver or not (window[0] <= s.t_s < window[1]):
                continue
            if not s.locked:
                line.append("x")  # re-locking after the OSS switch
            elif s.prefec_ber < summary.fec_threshold:
                mag = -math.log10(max(s.prefec_ber, 1e-18))
                line.append(str(min(9, int(mag // 2))))
            else:
                line.append("!")
        print(f"  {receiver} @ t=[{window[0]}, {window[1]}) s: {''.join(line)}")
    print("  (digits ~ -log10(BER)/2; 'x' marks the ~50 ms re-lock gap)")

    print(f"\nreconfigurations: {summary.reconfigurations}")
    print(f"max pre-FEC BER: {summary.max_prefec_ber:.2e} "
          f"(SD-FEC threshold {summary.fec_threshold:.0e})")
    print(f"always below threshold => post-FEC error-free: "
          f"{summary.always_below_threshold}")
    print(f"signal availability: {summary.availability() * 100:.3f}%")


if __name__ == "__main__":
    main()
