"""A day in the life of an Iris region: telemetry, reconfiguration, failover.

Ties the whole system together the way §5.2 describes operations:

1. plan a region (2-cut tolerant);
2. observe traffic with the demand estimator and light circuits;
3. traffic drifts — the estimator decides a reconfiguration is worthwhile
   and the controller applies it (drain -> switch -> verify);
4. a fiber duct is cut — the controller fails over to the pre-provisioned
   scenario paths within one switch time;
5. a flow-level simulation quantifies what applications felt.

Run:  python examples/closed_loop_operations.py
"""

import random

from repro.control import DemandEstimator, IrisController
from repro.core.planner import plan_region
from repro.region.catalog import make_region
from repro.region.fibermap import duct_key
from repro.simulation.failover import FailoverConfig, run_failover


def main() -> None:
    print("=== 1. planning a 2-cut-tolerant region ===")
    instance = make_region(map_index=1, n_dcs=4, dc_fibers=8)
    region = instance.spec
    plan = plan_region(region)
    print(f"{len(plan.topology.scenario_paths)} failure scenarios "
          f"pre-planned; {plan.topology.total_fiber_pairs()} base fiber-pairs")

    controller = IrisController(plan)
    estimator = DemandEstimator(alpha=0.4, safety_factor=1.25)
    rng = random.Random(11)

    print("\n=== 2. morning telemetry -> first circuits ===")
    base_gbps = {("DC1", "DC2"): 40e3, ("DC1", "DC3"): 25e3, ("DC2", "DC4"): 10e3}
    for _ in range(5):
        window = {
            pair: gbps * rng.uniform(0.9, 1.1) * 1e9 / 8.0  # bytes over 1 s
            for pair, gbps in base_gbps.items()
        }
        estimator.observe_window(window, window_s=1.0)
    applied = estimator.demands_gbps()
    report = controller.apply_demands(applied)
    print(f"demands: { {p: round(g / 1e3, 1) for p, g in applied.items()} } Tbps")
    print(f"circuits: {dict(controller.current_target.fibers)} "
          f"(reconfig touched {report.connects} cross-connects)")

    print("\n=== 3. afternoon drift -> worthwhile reconfiguration ===")
    drifted = {("DC1", "DC2"): 10e3, ("DC1", "DC3"): 60e3, ("DC2", "DC4"): 30e3}
    for _ in range(8):
        window = {
            pair: gbps * rng.uniform(0.9, 1.1) * 1e9 / 8.0
            for pair, gbps in drifted.items()
        }
        estimator.observe_window(window, window_s=1.0)
    worthwhile = estimator.reconfiguration_worthwhile(applied)
    print(f"estimator says reconfiguration worthwhile: {worthwhile}")
    if worthwhile:
        report = controller.apply_demands(estimator.demands_gbps())
        print(f"reconfigured: drained={list(report.drained_pairs)}, "
              f"dataplane impact {report.duration_s * 1000:.0f} ms")
    print(f"audit: {controller.audit() or 'clean'}")

    print("\n=== 4. a backhoe finds a duct ===")
    lit = controller.current_target.pairs()
    path = plan.topology.base_paths[lit[0]]
    cut = duct_key(path[1], path[2]) if len(path) > 3 else duct_key(path[0], path[1])
    print(f"duct {cut} cut!")
    report = controller.report_duct_failure(*cut)
    print(f"failover: {len(report.drained_pairs)} pair(s) moved to scenario "
          f"paths in {report.duration_s * 1000:.0f} ms; "
          f"audit {controller.audit() or 'clean'}")

    print("\n=== 5. what did applications feel? ===")
    result = run_failover(FailoverConfig(duration_s=8.0, seed=11))
    print(f"worst extra FCT across the cut: "
          f"{result.max_extra_fct_s * 1000:.0f} ms")
    print(f"99th-pct FCT ratio (with cut / without): "
          f"all flows {result.p99_ratio:.3f}, "
          f"affected pairs {result.p99_affected_ratio:.3f}")
    print(f"flows stranded: {result.unfinished}")


if __name__ == "__main__":
    main()
