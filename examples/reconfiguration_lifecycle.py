"""Drive the Iris control plane through a reconfiguration lifecycle (§5).

Plans a small region, builds its simulated device layer (per-site optical
space switches, per-DC ASE channel emulators), then walks the controller
through traffic-matrix changes: circuit computation, drain, network-wide OSS
reconfiguration over a faulty transport, verification, and audit.

Run:  python examples/reconfiguration_lifecycle.py
"""

from repro import plan_region
from repro.analysis.toy import toy_region
from repro.control import FaultInjector, IrisController, compute_target


def show(report, label: str) -> None:
    print(f"  [{label}] connects={report.connects} disconnects={report.disconnects} "
          f"retries={report.retries} drained={list(report.drained_pairs)} "
          f"dataplane-impact={report.duration_s * 1000:.0f} ms")


def main() -> None:
    print("=== planning the Fig 10 toy region (4 DCs x 160 Tbps) ===")
    region = toy_region()
    plan = plan_region(region)
    print(f"base fiber-pairs: {plan.topology.total_fiber_pairs()}, "
          f"residual spans: {plan.residual_fiber_pairs()}")

    # 10% of commands fail transiently: the controller must retry + verify.
    controller = IrisController(
        plan, faults=FaultInjector(failure_rate=0.10, seed=42)
    )
    print(f"device layer: {len(controller.registry.names())} devices "
          f"({controller.registry.names()[:4]} ...)")

    print("\n=== morning: bulk replication DC1 -> DC3 ===")
    demands = {("DC1", "DC3"): 48_000.0, ("DC1", "DC2"): 16_000.0}
    target = compute_target(plan, demands)
    print(f"  circuit target (fibers/pair): {dict(target.fibers)}")
    show(controller.reconcile(target), "reconcile")
    print(f"  audit: {controller.audit() or 'clean'}")

    print("\n=== afternoon: traffic shifts to DC2 <-> DC4 ===")
    demands = {("DC2", "DC4"): 64_000.0, ("DC1", "DC2"): 16_000.0}
    show(controller.apply_demands(demands), "reconcile")
    print(f"  audit: {controller.audit() or 'clean'}")

    print("\n=== steady state: same demands, no-op reconciliation ===")
    show(controller.apply_demands(demands), "reconcile")

    print("\n=== hut OSS state (fiber-level circuits, both directions) ===")
    for name in controller.registry.by_kind("oss"):
        conns = name.device.connections()
        if conns:
            print(f"  {name.device.name}: {len(conns)} cross-connects")
    calls = controller.registry.total_calls()
    print(f"\ntotal device commands issued (incl. retries): {calls}")


if __name__ == "__main__":
    main()
