"""Quickstart: plan an Iris regional DCI and compare its cost with EPS.

Builds a synthetic Azure-like region (5 DCs, 2-cut failure tolerance), runs
the full planning pipeline of §4 — Algorithm 1 topology & capacity, Algorithm
2 amplifier placement, cut-through links, residual fibers — and prices the
resulting network against the electrical packet-switched baseline.

Run:  python examples/quickstart.py
"""

from repro import plan_region
from repro.cost import estimate_cost
from repro.designs import eps_inventory, hybridize
from repro.region import make_region


def main() -> None:
    print("=== building a synthetic region (5 DCs x 128 Tbps) ===")
    instance = make_region(map_index=0, n_dcs=5, dc_fibers=8)
    region = instance.spec
    fmap = region.fiber_map
    print(f"fiber map: {len(fmap.huts)} huts, {len(fmap.ducts)} ducts")
    for dc in region.dcs:
        print(f"  {dc}: {region.capacity_gbps(dc) / 1000:.0f} Tbps "
              f"({region.fibers(dc)} fibers x {region.wavelengths_per_fiber} waves)")

    print("\n=== planning (OC1-OC4: 120 km SLA, shortest paths, 2-cut tolerant) ===")
    plan = plan_region(region)
    topo = plan.topology
    print(f"failure scenarios: {len(topo.scenario_paths)} enumerated "
          f"(pruned from {topo.scenario_count_total})")
    print(f"base capacity: {topo.total_fiber_pairs()} fiber-pairs "
          f"over {len(topo.used_ducts)} ducts")
    print(f"residual fiber (fractional demands): "
          f"{plan.residual_fiber_pairs()} pair-spans")
    print(f"in-line amplifiers: {plan.amplifiers.total_amplifiers} "
          f"at {sorted(plan.amplifiers.site_counts)}")
    print(f"cut-through links: {len(plan.cut_throughs)}")
    print(f"constraint violations: {len(plan.validate())}")

    print("\n=== cost comparison (the paper's headline) ===")
    iris = estimate_cost(plan.inventory())
    eps = estimate_cost(eps_inventory(region, topo))
    hybrid = estimate_cost(hybridize(plan).inventory())
    width = max(len(f"{eps.total:,.0f}"), 12)
    for name, cost in (("Iris", iris), ("Hybrid", hybrid), ("EPS", eps)):
        print(f"  {name:<8}${cost.total:>{width},.0f}/yr   "
              f"(transceivers ${cost.transceivers:,.0f}, fiber ${cost.fiber:,.0f})")
    print(f"\n  EPS / Iris = {eps.total / iris.total:.1f}x  "
          f"(paper: >=5x for 80% of scenarios, Fig 12a)")
    print(f"  in-network ports: EPS {eps.inventory.in_network_ports:,} "
          f"vs Iris {iris.inventory.in_network_ports:,}")


if __name__ == "__main__":
    main()
