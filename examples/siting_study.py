"""Siting flexibility and latency: why operators want distributed DCIs (§2).

Reproduces the paper's two operational arguments on a synthetic ensemble:

* Fig 3  — latency inflation of DC-hub-DC paths over direct DC-DC routes;
* Figs 4-6 — how much more area is available for the *next* DC when the
  region is distributed (within 120 km fiber of every DC) rather than
  centralized (within 60 km fiber of both hubs).

Run:  python examples/siting_study.py
"""

from repro.analysis.flexibility import flexibility_gains
from repro.analysis.latency import (
    cdf,
    fraction_at_least,
    latency_inflation_ratios,
)
from repro.region.catalog import region_ensemble
from repro.region.siting import (
    centralized_service_area,
    distributed_service_area,
    render_service_area,
)


def main() -> None:
    print("building a 10-region synthetic ensemble...")
    instances = region_ensemble(count=10, n_dcs_range=(5, 9))

    print("\n=== Fig 3: latency inflation of hub paths ===")
    ratios = latency_inflation_ratios(instances)
    for threshold in (1.0, 1.5, 2.0, 4.0):
        frac = fraction_at_least(ratios, threshold)
        print(f"  paths with inflation >= {threshold:.1f}x: {frac * 100:5.1f}%")
    points = cdf(ratios)
    deciles = [points[int(len(points) * q) - 1] for q in (0.25, 0.5, 0.75, 0.9)]
    for value, frac in deciles:
        print(f"  CDF: {frac * 100:3.0f}% of paths inflate <= {value:.2f}x")
    print("  (paper: inflation for >=60% of paths; >2x for more than 20%)")

    print("\n=== Fig 6: siting-area gain of the distributed design ===")
    gains = flexibility_gains(instances, spacing_km=4.0)
    for name, gain in gains:
        bar = "#" * int(round(gain * 4))
        print(f"  {name:<16}{gain:5.1f}x  {bar}")
    values = sorted(g for _, g in gains)
    print(f"  median {values[len(values) // 2]:.1f}x "
          f"(paper: 2-5x across 33 regions)")

    print("\n=== Fig 5: one region's permissible areas, rendered ===")
    instance = instances[0]
    region = instance.spec
    dc_points = [region.fiber_map.position(dc) for dc in region.dcs]
    kwargs = dict(spacing_km=8.0, margin_km=48.0)
    central = centralized_service_area(
        region.fiber_map, instance.hubs, instance.extent_km, **kwargs
    )
    distributed = distributed_service_area(
        region.fiber_map, instance.extent_km, **kwargs
    )
    print(f"centralized ({central.area_km2:.0f} km^2):")
    print(render_service_area(central, dc_points))
    print(f"\ndistributed ({distributed.area_km2:.0f} km^2):")
    print(render_service_area(distributed, dc_points))
    print("('#' = permissible site for the next DC, 'D' = existing DCs)")


if __name__ == "__main__":
    main()
