"""Unit helpers and paper constants."""

import pytest

from repro import units


class TestDbHelpers:
    def test_db_round_trip(self):
        assert units.linear_to_db(units.db_to_linear(7.3)) == pytest.approx(7.3)

    def test_db_to_linear_known_values(self):
        assert units.db_to_linear(0) == pytest.approx(1.0)
        assert units.db_to_linear(10) == pytest.approx(10.0)
        assert units.db_to_linear(3) == pytest.approx(2.0, rel=1e-2)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_dbm_round_trip(self):
        assert units.mw_to_dbm(units.dbm_to_mw(-12.5)) == pytest.approx(-12.5)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)


class TestPaperConstants:
    def test_tc1_max_span_is_80km(self):
        # 20 dB gain / 0.25 dB per km (§3.2, TC1).
        assert units.MAX_SPAN_KM == pytest.approx(80.0)

    def test_amplifier_budget_allows_three_amps(self):
        # 11 dB tolerable minus 2 dB margin => 9 dB => 3 amplifiers (Fig 9).
        assert units.AMPLIFIER_OSNR_BUDGET_DB == pytest.approx(9.0)
        assert units.MAX_AMPLIFIERS_PER_PATH == 3

    def test_tc4_six_osses(self):
        # 10 dB reconfiguration budget / 1.5 dB per OSS (§3.2, TC4).
        assert units.MAX_OSS_PER_PATH == 6

    def test_sla_is_120km(self):
        assert units.SLA_MAX_FIBER_KM == 120.0


class TestLatency:
    def test_rtt_of_19km_is_about_0_2ms(self):
        # §2.1: "a direct DC-DC connection of 19 km would achieve 0.2 ms".
        assert units.rtt_ms(19.0) == pytest.approx(0.2, abs=0.02)

    def test_rtt_of_120km_is_about_1_2ms(self):
        # §2.1: 53-60 km spokes -> "maximum DC-DC roundtrip latency of 1.2 ms".
        assert units.rtt_ms(120.0) == pytest.approx(1.2, abs=0.05)

    def test_rtt_inverse(self):
        km = units.fiber_km_for_rtt_ms(units.rtt_ms(42.0))
        assert km == pytest.approx(42.0)


class TestFibersForGbps:
    def test_exact_fill(self):
        # 160 Tbps at 400G x 40 wavelengths = 10 fibers (§3.4).
        assert units.fibers_for_gbps(160_000, 40, 400) == 10

    def test_rounds_up(self):
        assert units.fibers_for_gbps(160_001, 40, 400) == 11

    def test_zero_capacity(self):
        assert units.fibers_for_gbps(0, 40, 400) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            units.fibers_for_gbps(-1, 40, 400)
        with pytest.raises(ValueError):
            units.fibers_for_gbps(100, 0, 400)
        with pytest.raises(ValueError):
            units.fibers_for_gbps(100, 40, 0)
