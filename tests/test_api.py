"""The repro.api facade: PlannerConfig, plan/sweep/simulate, deprecations."""

import warnings

import pytest

from repro import api
from repro.api import PlannerConfig, plan, simulate, sweep
from repro.core.hose import hose_cache_stats
from repro.core.plan import IrisPlan
from repro.cost.estimator import Inventory
from repro.region.catalog import make_region
from repro.serialize import plan_to_json


@pytest.fixture(scope="module")
def small_region():
    return make_region(map_index=0, n_dcs=4, dc_fibers=4).spec


class TestPlannerConfig:
    def test_keyword_only_and_frozen(self):
        with pytest.raises(TypeError):
            PlannerConfig(4)  # positional jobs rejected
        config = PlannerConfig(jobs=4)
        with pytest.raises(Exception):  # dataclasses.FrozenInstanceError
            config.jobs = 2

    def test_defaults_match_planner_defaults(self):
        config = PlannerConfig()
        assert config.jobs == 1
        assert config.backend is None
        assert config.store is None
        assert config.prune_enumeration is True
        assert config.validate is True
        assert config.trace is False
        assert config.hose_cache_maxsize is None
        assert config.hose_state_maxsize is None


class TestPlan:
    def test_default_design_returns_iris_plan(self, small_region):
        result = plan(small_region)
        assert isinstance(result, IrisPlan)
        assert result.validate() == []

    def test_matches_legacy_entry_point_bytes(self, small_region):
        from repro.core.planner import plan_region

        via_api = plan(small_region, config=PlannerConfig(jobs=1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = plan_region(small_region, jobs=1)
        assert plan_to_json(via_api) == plan_to_json(legacy)

    def test_other_designs_return_inventory(self, small_region):
        inventory = plan(small_region, design="eps")
        assert isinstance(inventory, Inventory)
        hubby = plan(small_region, design="centralized")
        assert isinstance(hubby, Inventory)

    def test_unknown_design_rejected(self, small_region):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            plan(small_region, design="quantum")

    def test_trace_captures_span_tree(self, small_region):
        result = plan(small_region, config=PlannerConfig(trace=True))
        assert result.validate() == []
        record = api.last_trace()
        assert record is not None
        assert record.name == "repro.api.plan"
        assert record.total("hose.lookups") > 0

    def test_hose_cache_bounds_applied(self, small_region):
        from repro.core.hose import clear_hose_cache

        plan(
            small_region,
            config=PlannerConfig(hose_cache_maxsize=50_000, hose_state_maxsize=9),
        )
        stats = hose_cache_stats()
        assert (stats.maxsize, stats.state_maxsize) == (50_000, 9)
        clear_hose_cache()  # restore the env/default bounds


class TestSweep:
    def test_matches_legacy_run_sweep(self):
        from repro.analysis.designspace import SweepPoint, run_sweep

        points = [SweepPoint(map_index=0, n_dcs=5, dc_fibers=8, wavelengths=40)]
        via_api = sweep(points, config=PlannerConfig(jobs=1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_sweep(points, jobs=1)
        assert via_api == legacy
        assert via_api[0].eps_over_iris > 1.0


class TestSimulate:
    def test_default_scenario_runs(self):
        from repro.simulation.scenarios import ScenarioConfig

        result = simulate(ScenarioConfig(duration_s=5.0, n_dcs=4))
        assert result.summary.iris_flows > 0


class TestDeprecationShims:
    def test_plan_region_loose_kwargs_warn(self, small_region):
        from repro.core.planner import plan_region

        with pytest.warns(DeprecationWarning, match="repro.api.plan"):
            plan_region(small_region, jobs=1)

    def test_plan_region_bare_call_is_silent(self, small_region):
        from repro.core.planner import plan_region

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            plan_region(small_region)

    def test_run_sweep_loose_kwargs_warn(self):
        from repro.analysis.designspace import SweepPoint, run_sweep

        points = [SweepPoint(map_index=0, n_dcs=5, dc_fibers=8, wavelengths=40)]
        with pytest.warns(DeprecationWarning, match="repro.api.sweep"):
            run_sweep(points, jobs=1)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_facade_exported_at_top_level(self):
        import repro

        assert repro.plan is plan
        assert repro.sweep is sweep
        assert repro.simulate is simulate
        assert repro.PlannerConfig is PlannerConfig
        assert repro.__version__ == "1.10.0"
