"""AZ-style semi-distributed designs (Fig 1(e), footnote 2)."""

import pytest

from repro.designs.centralized import CentralizedDesign
from repro.designs.semidistributed import (
    SemiDistributedDesign,
    Zone,
    cluster_zones,
)
from repro.exceptions import RegionError


class TestZonesOnToy:
    def test_two_zones_cluster_geographically(self, toy_region):
        design = cluster_zones(toy_region, 2)
        groups = sorted(tuple(sorted(z.dcs)) for z in design.zones)
        # DC1/DC2 sit left, DC3/DC4 right: geography must separate them.
        assert groups == [("DC1", "DC2"), ("DC3", "DC4")]

    def test_hubs_are_the_local_huts(self, toy_region):
        design = cluster_zones(toy_region, 2)
        hubs = {z.hub for z in design.zones}
        assert hubs == {"H1", "H2"}

    def test_single_zone_is_centralized(self, toy_region):
        design = cluster_zones(toy_region, 1)
        assert len(design.zones) == 1
        assert len(design.zones[0].dcs) == 4

    def test_zone_count_validation(self, toy_region):
        with pytest.raises(RegionError):
            cluster_zones(toy_region, 0)
        with pytest.raises(RegionError):
            cluster_zones(toy_region, 9)

    def test_partition_enforced(self, toy_region):
        with pytest.raises(RegionError, match="partition"):
            SemiDistributedDesign(
                region=toy_region,
                zones=(Zone("AZ1", ("DC1", "DC2"), "H1"),),
            )


class TestLatency:
    def test_intra_zone_beats_far_hub(self, toy_region):
        """Footnote 2: AZs alleviate the latency inflation of
        centralization — intra-zone pairs skip the cross-region detour."""
        az = cluster_zones(toy_region, 2)
        central_far = CentralizedDesign(toy_region, hubs=("H1",))
        # DC3-DC4 via their local hub H2: 20 km; via the far hub H1: 60 km.
        assert az.pair_distance_km("DC3", "DC4") == pytest.approx(20.0)
        assert central_far.pair_distance_km("DC3", "DC4") == pytest.approx(60.0)

    def test_cross_zone_path_via_both_hubs(self, toy_region):
        az = cluster_zones(toy_region, 2)
        # DC1 -> H1 -> H2 -> DC3: 10 + 20 + 10.
        assert az.pair_distance_km("DC1", "DC3") == pytest.approx(40.0)

    def test_meets_sla(self, toy_region):
        assert cluster_zones(toy_region, 2).meets_sla()


class TestProvisioning:
    def test_fig1e_duct_capacities(self, toy_region):
        """Fig 1(e): f pairs on each DC duct, 2f on the central duct."""
        az = cluster_zones(toy_region, 2)
        caps = az.duct_capacity()
        assert caps[("DC1", "H1")] == 10
        assert caps[("DC3", "H2")] == 10
        assert caps[("H1", "H2")] == 20

    def test_inventory_matches_toy_counts(self, toy_region):
        az = cluster_zones(toy_region, 2)
        inv = az.inventory()
        # Spokes: 40 pairs x 40 waves x 2 ends = 3200; trunk: 20 x 40 x 2
        # = 1600 => 4800 total transceivers, same as the §3.4 EPS build.
        assert inv.dc_transceivers + inv.innetwork_transceivers == 4800
        assert inv.fiber_pair_spans == 60

    def test_semi_distributed_between_extremes(self, small_region_instance):
        """Port counts: centralized <= AZ design <= what full-duct EPS uses."""
        region = small_region_instance.spec
        az = cluster_zones(region, 2)
        central = CentralizedDesign(region, hubs=small_region_instance.hubs)
        az_inv = az.inventory()
        central_inv = central.inventory()
        assert az_inv.total_ports >= central_inv.total_ports
