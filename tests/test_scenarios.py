"""Iris-vs-EPS scenarios (§6.3 headline behaviours)."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.scenarios import (
    ScenarioConfig,
    allocate_fibers,
    pair_loads_bps,
    run_comparison,
)
from repro.simulation.traffic import heavy_tailed_matrix

import random


def small_config(**overrides):
    defaults = dict(
        n_dcs=4,
        utilization=0.4,
        duration_s=6.0,
        change_interval_s=2.0,
        max_change=0.5,
        seed=11,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(n_dcs=1)
        with pytest.raises(SimulationError):
            ScenarioConfig(utilization=0.0)
        with pytest.raises(SimulationError):
            ScenarioConfig(workload="nope")
        with pytest.raises(SimulationError):
            ScenarioConfig(duration_s=-1)

    def test_fiber_rate(self):
        cfg = ScenarioConfig(dc_capacity_bps=8e9, fibers_per_dc=8)
        assert cfg.fiber_bps == pytest.approx(1e9)


class TestLoadsAndAllocation:
    def test_busiest_dc_hits_target_utilization(self):
        cfg = small_config()
        tm = heavy_tailed_matrix(cfg.dcs, random.Random(1))
        loads = pair_loads_bps(tm, cfg)
        dc_loads = {
            dc: sum(load for p, load in loads.items() if dc in p) for dc in cfg.dcs
        }
        busiest = max(dc_loads.values())
        assert busiest == pytest.approx(cfg.utilization * cfg.dc_capacity_bps)
        # And nobody exceeds it (hose-feasible).
        assert all(v <= busiest + 1e-6 for v in dc_loads.values())

    def test_every_pair_keeps_residual_fiber(self):
        cfg = small_config()
        tm = heavy_tailed_matrix(cfg.dcs, random.Random(1))
        alloc = allocate_fibers(pair_loads_bps(tm, cfg), cfg)
        assert all(n >= 1 for n in alloc.values())

    def test_allocation_covers_load(self):
        cfg = small_config()
        tm = heavy_tailed_matrix(cfg.dcs, random.Random(1))
        loads = pair_loads_bps(tm, cfg)
        alloc = allocate_fibers(loads, cfg)
        for pair, load in loads.items():
            assert alloc[pair] * cfg.fiber_bps >= load


class TestComparison:
    def test_paired_traces(self):
        result = run_comparison(small_config())
        # Identical flow populations on both fabrics.
        assert result.summary.iris_flows + result.summary.iris_unfinished == (
            result.summary.eps_flows + result.summary.eps_unfinished
        )

    def test_bounded_changes_are_negligible(self):
        # Fig 17 right panels: small bounded changes cost <2% at the 99th.
        result = run_comparison(
            small_config(max_change=0.10, duration_s=8.0)
        )
        assert result.summary.p99_all <= 1.05

    def test_iris_never_beats_eps_much(self):
        # EPS is a superset fabric (no pair caps): Iris can't be
        # systematically faster.
        result = run_comparison(small_config())
        assert result.summary.p99_all >= 0.98

    def test_unbounded_changes_hurt_more_than_bounded(self):
        bounded = run_comparison(
            small_config(max_change=0.01, utilization=0.7, duration_s=8.0)
        )
        unbounded = run_comparison(
            small_config(
                max_change=None,
                utilization=0.7,
                duration_s=8.0,
                change_interval_s=1.0,
            )
        )
        assert unbounded.fibers_moved > bounded.fibers_moved
        assert (
            unbounded.summary.p99_all
            >= bounded.summary.p99_all - 0.02
        )

    def test_reconfigurations_counted(self):
        result = run_comparison(
            small_config(max_change=None, change_interval_s=1.0, duration_s=6.0)
        )
        assert result.reconfigurations >= 1
        assert result.fibers_moved >= result.reconfigurations

    def test_deterministic_given_seed(self):
        a = run_comparison(small_config())
        b = run_comparison(small_config())
        assert a.summary == b.summary


class TestRepeatComparison:
    def test_across_seeds(self):
        from repro.simulation.scenarios import repeat_comparison

        results = repeat_comparison(small_config(duration_s=4.0), seeds=[1, 2, 3])
        assert len(results) == 3
        # Different seeds -> different traces.
        flows = {r.summary.iris_flows for r in results}
        assert len(flows) > 1
        # But all in the negligible-slowdown regime for bounded changes.
        assert all(r.summary.p99_all < 1.3 for r in results)

    def test_empty_seeds_rejected(self):
        from repro.exceptions import SimulationError
        from repro.simulation.scenarios import repeat_comparison

        with pytest.raises(SimulationError):
            repeat_comparison(small_config(), seeds=[])
