"""The multi-TM robust design: determinism, envelope bounds, caching."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import _plan_region
from repro.designs import available_designs, get_design
from repro.designs.robust import (
    RobustDesign,
    TrafficEnsembleSpec,
    ensemble_digest,
    pair_demand_fibers,
    plan_robust,
)
from repro.exceptions import SimulationError
from repro.serialize import plan_to_json
from repro.simulation.traffic import heavy_tailed_matrix, sample_ensemble

DCS = [f"DC{i}" for i in range(1, 6)]


class TestEnsembleSpec:
    def test_registered(self):
        assert "robust" in available_designs()
        design = get_design("robust")
        assert isinstance(design, RobustDesign)
        assert design.traffic.count == 5

    def test_build_is_deterministic(self):
        spec = TrafficEnsembleSpec(count=5, seed=42)
        a = spec.build(DCS)
        b = spec.build(DCS)
        assert len(a) == 5
        assert [tm.weights for tm in a] == [tm.weights for tm in b]

    def test_seed_changes_ensemble(self):
        a = TrafficEnsembleSpec(seed=1).build(DCS)
        b = TrafficEnsembleSpec(seed=2).build(DCS)
        assert ensemble_digest(a) != ensemble_digest(b)

    def test_digest_sensitive_to_every_member(self):
        ens = TrafficEnsembleSpec(count=3, seed=7).build(DCS)
        assert ensemble_digest(ens) != ensemble_digest(ens[:-1])
        assert ensemble_digest(ens) != ensemble_digest(list(reversed(ens)))

    def test_validation(self):
        with pytest.raises(SimulationError):
            TrafficEnsembleSpec(count=0)
        with pytest.raises(SimulationError):
            TrafficEnsembleSpec(skew=0)
        with pytest.raises(SimulationError):
            TrafficEnsembleSpec(max_change=-0.5)

    def test_sample_ensemble_is_a_perturbation_chain(self):
        ens = sample_ensemble(DCS, random.Random(3), count=4, max_change=0.2)
        assert len(ens) == 4
        # Bounded chain: consecutive members stay close, all normalized.
        for prev, cur in zip(ens, ens[1:]):
            assert set(prev.weights) == set(cur.weights)
            assert sum(cur.weights.values()) == pytest.approx(1.0)


class TestPairDemands:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_demands_respect_the_hose(self, seed):
        # The scaled TM runs as hot as the hose allows: no DC's incident
        # demand exceeds its fiber count, and at least one DC saturates.
        tm = heavy_tailed_matrix(DCS, random.Random(seed))
        fibers = {dc: 8 for dc in DCS}
        demands = pair_demand_fibers(tm, fibers)
        incident = {
            dc: sum(d for pair, d in demands.items() if dc in pair)
            for dc in DCS
        }
        assert all(load <= 8 + 1e-9 for load in incident.values())
        assert max(incident.values()) == pytest.approx(8.0)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_relabel_equivariance(self, seed):
        # Renaming DCs renames the demand table, nothing more — the
        # ensemble-invariance contract of robust planning.
        tm = heavy_tailed_matrix(DCS, random.Random(seed))
        fibers = {dc: 8 for dc in DCS}
        mapping = {dc: f"X{dc}" for dc in DCS}
        relabeled = pair_demand_fibers(
            tm.relabel(mapping), {f"X{dc}": 8 for dc in DCS}
        )
        direct = pair_demand_fibers(tm, fibers)
        assert relabeled == {
            tuple(sorted((mapping[a], mapping[b]))): d
            for (a, b), d in direct.items()
        }

    def test_unknown_dcs_rejected(self):
        tm = heavy_tailed_matrix(["A", "B"], random.Random(1))
        with pytest.raises(SimulationError):
            pair_demand_fibers(tm, {"C": 4, "D": 4})


class TestRobustPlanning:
    @pytest.fixture(scope="class")
    def plans(self, small_region_instance):
        region = small_region_instance.spec
        return (
            _plan_region(region),
            plan_robust(region),
            region,
        )

    def test_plans_against_five_tm_ensemble(self, plans):
        # Acceptance: the default spec samples >= 5 matrices.
        _, robust, region = plans
        assert TrafficEnsembleSpec().count >= 5
        assert robust.topology.edge_capacity

    def test_same_duct_set_as_iris(self, plans):
        iris, robust, _ = plans
        assert sorted(robust.topology.edge_capacity) == sorted(
            iris.topology.edge_capacity
        )

    def test_never_exceeds_the_hose_envelope(self, plans):
        # Each sampled TM is hose-feasible, so the robust need of every
        # duct is bounded by the iris (hose max-flow) capacity.
        iris, robust, _ = plans
        for duct, need in robust.topology.edge_capacity.items():
            assert 1 <= need <= iris.topology.edge_capacity[duct]

    def test_cheaper_than_iris(self, plans):
        from repro.cost.estimator import estimate_cost

        iris, robust, _ = plans
        assert (
            robust.topology.total_fiber_pairs()
            <= iris.topology.total_fiber_pairs()
        )
        assert (
            estimate_cost(robust.inventory()).total
            <= estimate_cost(iris.inventory()).total
        )

    def test_validates_clean(self, plans):
        _, robust, _ = plans
        assert robust.validate() == []

    def test_deterministic_replan(self, plans):
        _, robust, region = plans
        assert plan_to_json(plan_robust(region)) == plan_to_json(robust)

    def test_jobs_parity(self, plans):
        # Acceptance: jobs=1 and jobs=4 plans are byte-identical.
        _, robust, region = plans
        parallel = plan_robust(region, jobs=4)
        assert plan_to_json(parallel) == plan_to_json(robust)

    def test_explicit_ensemble_changes_plan_key_not_shape(self, plans):
        _, robust, region = plans
        other = plan_robust(
            region, traffic=TrafficEnsembleSpec(count=6, seed=1)
        )
        assert sorted(other.topology.edge_capacity) == sorted(
            robust.topology.edge_capacity
        )

    def test_empty_ensemble_rejected(self, plans):
        *_, region = plans
        with pytest.raises(SimulationError):
            plan_robust(region, ensemble=[])

    def test_robust_counters_recorded(self, small_region_instance):
        from repro import obs
        from repro.designs.robust import robust_topology

        region = small_region_instance.spec
        ensemble = TrafficEnsembleSpec(count=3).build(region.dcs)
        with obs.tracing("test") as tracer:
            robust_topology(region, ensemble)
        record = tracer.record()
        totals = record.counter_totals()
        assert totals["robust.tms"] == 3
        assert totals["robust.duct_evals"] > 0
        assert totals["scenarios.evaluated"] > 0


class TestStoreCaching:
    def test_cache_hit_on_replan(self, small_region_instance, tmp_path):
        from repro.store import PlanStore

        region = small_region_instance.spec
        store = PlanStore(tmp_path)
        fresh = plan_robust(region, store=store)
        assert (store.hits, store.misses, store.puts) == (0, 1, 1)
        cached = plan_robust(region, store=store)
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)
        assert plan_to_json(cached) == plan_to_json(fresh)

    def test_different_ensemble_misses(self, small_region_instance, tmp_path):
        from repro.store import PlanStore

        region = small_region_instance.spec
        store = PlanStore(tmp_path)
        plan_robust(region, store=store)
        plan_robust(
            region, traffic=TrafficEnsembleSpec(seed=999), store=store
        )
        assert store.misses == 2
        assert store.puts == 2


class TestApiIntegration:
    def test_api_plan_returns_full_plan(self, small_region_instance):
        from repro.api import PlannerConfig, plan
        from repro.core.plan import IrisPlan

        region = small_region_instance.spec
        result = plan(
            region,
            design="robust",
            config=PlannerConfig(traffic=TrafficEnsembleSpec(count=3)),
        )
        assert isinstance(result, IrisPlan)
        assert result.topology.edge_capacity

    def test_registry_plan_returns_inventory(self, small_region_instance):
        region = small_region_instance.spec
        inventory = get_design(
            "robust", traffic=TrafficEnsembleSpec(count=3)
        ).plan(region)
        assert inventory.fiber_pair_spans > 0
