"""Region catalog: determinism and ensemble shape."""

import pytest

from repro.exceptions import RegionError
from repro.region.catalog import fiber_map_ensemble, make_region, region_ensemble


class TestFiberMapEnsemble:
    def test_count_and_determinism(self):
        a = fiber_map_ensemble(count=3, seed=2020)
        b = fiber_map_ensemble(count=3, seed=2020)
        assert len(a) == 3
        for (ma, ea), (mb, eb) in zip(a, b):
            assert ea == eb
            assert ma.ducts == mb.ducts
            assert [ma.duct_length(u, v) for u, v in ma.ducts] == [
                mb.duct_length(u, v) for u, v in mb.ducts
            ]

    def test_different_seeds_differ(self):
        a = fiber_map_ensemble(count=1, seed=1)[0][0]
        b = fiber_map_ensemble(count=1, seed=2)[0][0]
        assert a.ducts != b.ducts or [
            a.duct_length(u, v) for u, v in a.ducts
        ] != [b.duct_length(u, v) for u, v in b.ducts]

    def test_maps_have_no_dcs(self):
        for fmap, _ in fiber_map_ensemble(count=2):
            assert fmap.dcs == []
            assert len(fmap.huts) >= 9

    def test_empty_ensemble_rejected(self):
        with pytest.raises(RegionError):
            fiber_map_ensemble(count=0)


class TestMakeRegion:
    def test_deterministic(self):
        a = make_region(map_index=0, n_dcs=4)
        b = make_region(map_index=0, n_dcs=4)
        assert a.spec.fiber_map.ducts == b.spec.fiber_map.ducts
        assert a.hubs == b.hubs
        assert a.spec.dc_fibers == b.spec.dc_fibers

    def test_parameters_respected(self):
        instance = make_region(
            map_index=1,
            n_dcs=3,
            dc_fibers=16,
            wavelengths_per_fiber=64,
            failure_tolerance=1,
        )
        spec = instance.spec
        assert len(spec.dcs) == 3
        assert all(spec.fibers(dc) == 16 for dc in spec.dcs)
        assert spec.wavelengths_per_fiber == 64
        assert spec.constraints.failure_tolerance == 1

    def test_dcs_within_sla_of_each_other(self):
        instance = make_region(map_index=2, n_dcs=6)
        fmap = instance.spec.fiber_map
        sla = instance.spec.constraints.sla_fiber_km
        for a, b in instance.spec.iter_pairs():
            assert fmap.fiber_distance(a, b) <= sla + 1e-6


class TestRegionEnsemble:
    def test_dc_counts_cycle_through_range(self):
        instances = region_ensemble(count=6, n_dcs_range=(4, 6))
        counts = [len(i.spec.dcs) for i in instances]
        assert counts == [4, 5, 6, 4, 5, 6]

    def test_names_unique(self):
        instances = region_ensemble(count=5, n_dcs_range=(4, 5))
        names = [i.name for i in instances]
        assert len(set(names)) == 5

    def test_invalid_range_rejected(self):
        with pytest.raises(RegionError):
            region_ensemble(count=2, n_dcs_range=(5, 4))
