"""The observability layer: span trees, counter merges, exporters, no-op path.

The property-based tests pin the three contracts everything else builds on:
span nesting always yields a well-formed tree, counter merges are
associative/commutative (so worker shards can arrive in any order), and
the disabled fast path leaves plan outputs bit-identical to traced runs.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.obs import ObsError, SpanRecord, Tracer, merge_counters
from repro.obs.tracer import NULL_SPAN, _NullSpan


# -- strategies -------------------------------------------------------------

span_names = st.sampled_from(
    ["plan.topology", "plan.enumerate", "plan.capacity", "engine.chunk",
     "hose.maxflow", "flowsim.run", "a", "b"]
)

# A nested span program: each node is (name, counter increments, children).
span_programs = st.recursive(
    st.tuples(
        span_names,
        st.lists(
            st.tuples(span_names, st.integers(min_value=0, max_value=50)),
            max_size=3,
        ),
        st.just([]),
    ),
    lambda children: st.tuples(
        span_names,
        st.lists(
            st.tuples(span_names, st.integers(min_value=0, max_value=50)),
            max_size=3,
        ),
        st.lists(children, max_size=3),
    ),
    max_leaves=12,
)

counter_shards = st.lists(
    st.dictionaries(
        st.sampled_from(["hits", "misses", "scenarios", "flows"]),
        st.integers(min_value=0, max_value=10_000),
        max_size=4,
    ),
    max_size=6,
)


def _execute(tracer: Tracer, program) -> int:
    """Run a span program; returns how many spans were opened."""
    name, incrs, children = program
    opened = 1
    with tracer.span(name) as span:
        for counter, n in incrs:
            span.incr(counter, n)
        for child in children:
            opened += _execute(tracer, child)
    return opened


def _program_counters(program) -> dict[str, int]:
    name, incrs, children = program
    totals: dict[str, int] = {}
    for counter, n in incrs:
        totals[counter] = totals.get(counter, 0) + n
    for child in children:
        merge_counters(totals, _program_counters(child))
    return totals


class TestSpanTreeProperties:
    @given(program=span_programs)
    @settings(max_examples=60, deadline=None)
    def test_nesting_always_forms_a_tree(self, program):
        """Every opened span appears exactly once, under its opener."""
        tracer = Tracer("root")
        opened = _execute(tracer, program)
        record = tracer.record()
        # +1 for the root; walk() visits each node exactly once.
        assert record.n_spans() == opened + 1
        # Well-formed: every child list belongs to exactly one parent
        # (no node reachable twice => ids are unique along the walk).
        ids = [id(rec) for rec in record.walk()]
        assert len(ids) == len(set(ids))
        # Durations nest: a child closed before its parent.
        for rec in record.walk():
            for child in rec.children:
                assert child.duration_s <= rec.duration_s + 1e-6

    @given(program=span_programs)
    @settings(max_examples=60, deadline=None)
    def test_counter_totals_match_the_program(self, program):
        """Tree-wide totals equal the increments the program issued."""
        tracer = Tracer("root")
        _execute(tracer, program)
        record = tracer.record()
        for counter, expected in _program_counters(program).items():
            assert record.total(counter) == expected

    def test_out_of_order_close_rejected(self):
        tracer = Tracer("root")
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObsError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_finish_with_open_span_rejected(self):
        tracer = Tracer("root")
        tracer.span("open").__enter__()
        with pytest.raises(ObsError, match="open span"):
            tracer.finish()


class TestCounterProperties:
    @given(shards=counter_shards)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative_and_commutative(self, shards):
        """Any merge order/grouping of worker shards gives the same totals."""
        left_fold: dict[str, float] = {}
        for shard in shards:
            merge_counters(left_fold, shard)

        right_fold: dict[str, float] = {}
        for shard in reversed(shards):
            merge_counters(right_fold, shard)

        shuffled = list(shards)
        random.Random(0).shuffle(shuffled)
        pairwise: dict[str, float] = {}
        # Merge in arbitrary binary groupings: ((s0+s1)+(s2+...)).
        mid = len(shuffled) // 2
        lo: dict[str, float] = {}
        hi: dict[str, float] = {}
        for shard in shuffled[:mid]:
            merge_counters(lo, shard)
        for shard in shuffled[mid:]:
            merge_counters(hi, shard)
        merge_counters(pairwise, lo)
        merge_counters(pairwise, hi)

        assert left_fold == right_fold == pairwise

    @given(shards=counter_shards)
    @settings(max_examples=40, deadline=None)
    def test_merged_counters_stay_non_negative(self, shards):
        merged: dict[str, float] = {}
        for shard in shards:
            merge_counters(merged, shard)
        assert all(value >= 0 for value in merged.values())

    def test_negative_increment_rejected(self):
        tracer = Tracer("root")
        with pytest.raises(ObsError, match=">= 0"):
            tracer.incr("c", -1)
        with tracer.span("s") as span:
            with pytest.raises(ObsError, match=">= 0"):
                span.incr("c", -3)


class TestGlobalFacade:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None
        assert obs.span("anything") is NULL_SPAN
        obs.incr("anything")  # silently dropped
        obs.attach(SpanRecord("shard"))  # silently dropped

    def test_null_span_is_inert(self):
        with obs.span("nothing") as span:
            assert isinstance(span, _NullSpan)
            span.incr("c", 5)

    def test_tracing_installs_and_restores(self):
        assert not obs.enabled()
        with obs.tracing("outer") as tracer:
            assert obs.enabled()
            assert obs.current() is tracer
            with obs.span("child") as span:
                span.incr("c", 2)
        assert not obs.enabled()
        record = tracer.record()
        assert [rec.name for rec in record.walk()] == ["outer", "child"]
        assert record.total("c") == 2

    def test_nested_tracing_stacks(self):
        with obs.tracing("outer") as outer:
            with obs.tracing("inner") as inner:
                obs.incr("c")
            obs.incr("c")
        assert inner.record().total("c") == 1
        assert outer.record().total("c") == 1

    def test_capture_and_attach_graft_shards(self):
        with obs.capture("worker") as worker:
            obs.incr("done", 3)
        shard = worker.record()
        with obs.tracing("parent") as tracer:
            with obs.span("fanout"):
                obs.attach(shard)
        record = tracer.record()
        assert record.total("done") == 3
        fanout = record.child("fanout")
        assert fanout is not None and fanout.child("worker") is shard


class TestBucketLabel:
    @given(value=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_every_value_lands_in_exactly_one_bounded_bucket(self, value):
        label = obs.bucket_label(value)
        assert label.startswith(("le_", "gt_"))
        # The namespace is bounded regardless of value magnitude.
        assert label in {
            "le_1", "le_2", "le_4", "le_8", "le_16", "le_32", "le_64",
            "le_128", "le_256", "gt_256",
        }

    def test_buckets_are_monotonic(self):
        labels = [obs.bucket_label(v) for v in (1, 2, 3, 8, 100, 999)]
        assert labels == ["le_1", "le_2", "le_4", "le_8", "le_128", "gt_256"]


class TestExporters:
    def _sample_record(self) -> SpanRecord:
        tracer = Tracer("root")
        with tracer.span("phase.a") as span:
            span.incr("items", 3)
            with tracer.span("phase.b") as inner:
                inner.incr("items", 2)
        with tracer.span("phase.a") as span:
            span.incr("hits", 7)
        return tracer.record()

    def test_dict_round_trip(self):
        record = self._sample_record()
        data = obs.record_to_dict(record)
        restored = obs.record_from_dict(data)
        assert obs.record_to_dict(restored) == data

    def test_dict_without_durations_is_deterministic(self):
        a = obs.record_to_dict(self._sample_record(), include_durations=False)
        b = obs.record_to_dict(self._sample_record(), include_durations=False)
        assert a == b  # durations are the only run-varying content

    def test_render_tree_shape(self):
        text = obs.render_tree(self._sample_record())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert any("phase.b" in line and line.startswith("    ") for line in lines)
        assert "items=3" in text and "hits=7" in text

    def test_json_lines_are_valid_json_with_paths(self):
        rows = [
            json.loads(line)
            for line in obs.to_json_lines(self._sample_record()).splitlines()
        ]
        assert [row["path"] for row in rows] == [
            "root", "root/phase.a", "root/phase.a/phase.b", "root/phase.a",
        ]

    def test_aggregate_collapses_by_name(self):
        rows = obs.aggregate(self._sample_record())
        by_name = {row.name: row for row in rows}
        assert by_name["phase.a"].count == 2
        assert by_name["phase.a"].counters == {"items": 3, "hits": 7}
        assert by_name["phase.b"].counters == {"items": 2}

    def test_csv_rows_are_rectangular(self):
        rows = obs.to_csv_rows(self._sample_record())
        assert all(len(row) == len(rows[0]) for row in rows)
        assert rows[0][:3] == ["phase", "total_s", "count"]

    def test_malformed_record_dict_rejected(self):
        with pytest.raises(Exception, match="malformed span record"):
            obs.record_from_dict({"children": "nope"})


class TestSpanRecordQueries:
    def test_child_find_total(self):
        root = SpanRecord("root", counters={"n": 1}, children=[
            SpanRecord("a", counters={"n": 2}),
            SpanRecord("b", children=[SpanRecord("a", counters={"n": 4})]),
        ])
        assert root.child("a").counters == {"n": 2}
        assert root.child("missing") is None
        assert len(root.find("a")) == 2
        assert root.total("n") == 7
        assert root.counter_totals() == {"n": 7}
        assert root.n_spans() == 4

    def test_records_are_picklable(self):
        import pickle

        root = SpanRecord("root", children=[SpanRecord("a", counters={"n": 2})])
        clone = pickle.loads(pickle.dumps(root))
        assert clone.name == "root"
        assert clone.children[0].counters == {"n": 2}
