"""The shipped examples run end to end (fast ones only).

``circuit_transience.py`` and ``siting_study.py`` run minutes of
simulation/analysis; their machinery is covered by the scenario and
analysis tests, so here we exercise the quick ones as real subprocesses.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "EPS / Iris" in out
        assert "constraint violations: 0" in out

    def test_reconfiguration_lifecycle(self):
        out = run_example("reconfiguration_lifecycle.py")
        assert "audit: clean" in out
        assert "no-op reconciliation" in out

    def test_testbed_ber_trace(self):
        out = run_example("testbed_ber_trace.py")
        assert "post-FEC error-free: True" in out
        assert "xxxxx" in out  # the re-lock gap is visible in the trace

    def test_closed_loop_operations(self):
        out = run_example("closed_loop_operations.py")
        assert "reconfiguration worthwhile: True" in out
        assert "flows stranded: 0" in out
