"""Algorithm 2: amplifier placement."""

from repro.core.amplifiers import place_amplifiers
from repro.core.failures import Scenario
from repro.core.topology import plan_topology
from repro.region.fibermap import (
    FiberMap,
    OperationalConstraints,
    RegionSpec,
)


def line_region(*duct_lengths: float, tolerance: int = 0) -> RegionSpec:
    """Two DCs joined by a chain of huts with the given duct lengths."""
    fmap = FiberMap()
    fmap.add_dc("A", 0, 0)
    prev = "A"
    x = 0.0
    for i, length in enumerate(duct_lengths[:-1]):
        x += length
        name = f"M{i}"
        fmap.add_hut(name, x, 0)
        fmap.add_duct(prev, name, length_km=length)
        prev = name
    fmap.add_dc("B", x + duct_lengths[-1], 0)
    fmap.add_duct(prev, "B", length_km=duct_lengths[-1])
    return RegionSpec(
        fiber_map=fmap,
        dc_fibers={"A": 4, "B": 4},
        constraints=OperationalConstraints(failure_tolerance=tolerance),
    )


class TestDistanceDriven:
    def test_short_path_needs_no_amp(self):
        region = line_region(30.0, 30.0)
        topology = plan_topology(region)
        plan, effective = place_amplifiers(region, topology)
        assert plan.total_amplifiers == 0
        assert all(p.amp_node is None for p in effective.values())

    def test_long_path_gets_one_amp(self):
        region = line_region(55.0, 55.0)
        topology = plan_topology(region)
        plan, effective = place_amplifiers(region, topology)
        assert plan.site_counts == {"M0": 4}  # one amp per worst-case fiber
        path = effective[(Scenario(), ("A", "B"))]
        assert path.amp_node == "M0"
        # The amplified profile now meets every run budget.
        assert all(run.fits() for run in path.profile().runs())

    def test_amp_site_respects_run_budgets(self):
        # 60 + 45: an amp at the junction gives runs whose fiber + OSS
        # losses (18 dB and 14.25 dB) both fit the 20 dB budget.
        region = line_region(60.0, 45.0)
        topology = plan_topology(region)
        plan, effective = place_amplifiers(region, topology)
        path = effective[(Scenario(), ("A", "B"))]
        assert path.amp_node == "M0"

    def test_amp_shared_across_paths(self):
        # Y-shape: A and C both reach B over the same long middle hut.
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("C", 0, 10)
        fmap.add_hut("M", 50, 5)
        fmap.add_dc("B", 105, 5)
        fmap.add_duct("A", "M", length_km=50.0)
        fmap.add_duct("C", "M", length_km=50.0)
        fmap.add_duct("M", "B", length_km=55.0)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={"A": 4, "B": 4, "C": 4},
            constraints=OperationalConstraints(failure_tolerance=0),
        )
        topology = plan_topology(region)
        plan, effective = place_amplifiers(region, topology)
        # A-B and B-C both amplify at M. The hose worst case lights both
        # circuits at full rate simultaneously (B can send to C while
        # receiving from A), so 8 fiber-pairs need amplification at M.
        assert plan.site_counts == {"M": 8}
        assert plan.site_for(Scenario(), ("A", "B")) == "M"
        assert plan.site_for(Scenario(), ("B", "C")) == "M"


class TestScenarioCoverage:
    def test_amps_cover_failure_paths(self):
        # Square: A - H1 - B short, A - H2 - B long detour used on failure.
        fmap = FiberMap()
        fmap.add_dc("A", 0, 0)
        fmap.add_dc("B", 60, 0)
        fmap.add_hut("H1", 30, 5)
        fmap.add_hut("H2", 30, -40)
        fmap.add_duct("A", "H1", length_km=31.0)
        fmap.add_duct("H1", "B", length_km=31.0)
        fmap.add_duct("A", "H2", length_km=50.0)
        fmap.add_duct("H2", "B", length_km=50.0)
        region = RegionSpec(
            fiber_map=fmap,
            dc_fibers={"A": 4, "B": 4},
            constraints=OperationalConstraints(failure_tolerance=1),
        )
        topology = plan_topology(region)
        plan, effective = place_amplifiers(region, topology)
        # The 100 km detour (used when an H1 duct fails) needs an amp at H2.
        assert plan.site_counts.get("H2") == 4
        # The base path does not.
        assert plan.site_for(Scenario(), ("A", "B")) is None
